"""Tests for the startup-latency experiment."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.startup import (
    PAPER_ERA_DISK_MBPS,
    StartupPoint,
    model_startup,
    run,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=0.05)


class TestStartupModel:
    def test_points_cover_sweep(self, context):
        points = model_startup(context, name="gcc", disk_sweep=(1.0, 10.0))
        assert [p.disk_mbps for p in points] == [1.0, 10.0]

    def test_ssd_wins_on_slow_disks(self, context):
        points = model_startup(context, name="gcc", disk_sweep=(0.5,))
        assert points[0].speedup_pct > 0

    def test_native_wins_on_fast_disks(self, context):
        points = model_startup(context, name="gcc", disk_sweep=(500.0,))
        assert points[0].speedup_pct < 0

    def test_speedup_monotone_in_disk_speed(self, context):
        points = model_startup(context, name="gcc",
                               disk_sweep=(1.0, 4.0, 16.0, 64.0))
        speedups = [p.speedup_pct for p in points]
        assert speedups == sorted(speedups, reverse=True)

    def test_bigger_startup_set_costs_more(self, context):
        small = model_startup(context, name="gcc", startup_fraction=0.2,
                              disk_sweep=(2.5,))[0]
        large = model_startup(context, name="gcc", startup_fraction=0.8,
                              disk_sweep=(2.5,))[0]
        assert large.ssd_seconds > small.ssd_seconds
        assert large.native_seconds > small.native_seconds

    def test_bad_fraction_rejected(self, context):
        with pytest.raises(ValueError):
            model_startup(context, name="gcc", startup_fraction=0)

    def test_render_mentions_paper_claim(self, context):
        out = run(context, name="gcc")
        assert "14" in out
        assert str(PAPER_ERA_DISK_MBPS) in out

    def test_point_speedup_math(self):
        point = StartupPoint(disk_mbps=1.0, native_seconds=2.0, ssd_seconds=1.0)
        assert point.speedup_pct == 50.0
