"""Graceful JIT degradation: quarantine instead of crash, correct output."""

import pytest

from repro.core import compress, open_container
from repro.errors import BufferCapacityError, CorruptContainer
from repro.faults import AllocationFaults
from repro.isa import assemble
from repro.jit import ResilientRuntime, TranslationBuffer, Translator
from repro.vm import run_program

SOURCE = """
func main
    li r2, 6
    call double
    call triple
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
func triple
    add r3, r2, r2
    add r1, r3, r2
    ret
end
"""


@pytest.fixture(scope="module")
def container():
    return compress(assemble(SOURCE)).data


@pytest.fixture()
def expected_output():
    return run_program(assemble(SOURCE)).output


class TestHealthyPath:
    def test_no_quarantine_on_clean_container(self, container):
        runtime = ResilientRuntime(container).prepare()
        assert not runtime.degraded
        assert runtime.quarantined == []
        assert all(runtime.execution_mode(f) == "native"
                   for f in range(runtime.reader.function_count))

    def test_run_matches_interpreter(self, container, expected_output):
        assert ResilientRuntime(container).run().output == expected_output

    def test_accepts_open_reader(self, container):
        runtime = ResilientRuntime(open_container(container)).prepare()
        assert not runtime.degraded


class TestAllocationFaultQuarantine:
    def test_injected_failure_quarantines_only_that_function(self, container):
        faults = AllocationFaults(fail_findexes={1})
        buffer = TranslationBuffer(1 << 16, alloc_hook=faults)
        runtime = ResilientRuntime(container, buffer=buffer).prepare()
        assert faults.injected == 1
        assert runtime.degraded
        assert runtime.execution_mode(1) == "interpreter"
        assert runtime.execution_mode(0) == "native"
        assert runtime.execution_mode(2) == "native"
        [record] = runtime.quarantined
        assert record.findex == 1 and record.stage == "buffer"
        assert "injected allocation failure" in record.error

    def test_quarantined_program_still_runs_correctly(self, container,
                                                      expected_output):
        buffer = TranslationBuffer(
            1 << 16, alloc_hook=AllocationFaults(fail_findexes={1}))
        runtime = ResilientRuntime(container, buffer=buffer)
        result = runtime.run()
        assert runtime.degraded
        assert result.output == expected_output

    def test_all_functions_quarantined_still_runs(self, container,
                                                  expected_output):
        everything = AllocationFaults(fail_findexes={0, 1, 2})
        buffer = TranslationBuffer(1 << 16, alloc_hook=everything)
        runtime = ResilientRuntime(container, buffer=buffer)
        result = runtime.run()
        assert len(runtime.quarantined) == 3
        assert result.output == expected_output

    def test_oversized_function_quarantines_without_injection(self, container):
        # A 1-byte buffer cannot hold any function: every translation
        # fails with a real (non-injected) BufferCapacityError.
        runtime = ResilientRuntime(container,
                                   buffer=TranslationBuffer(1)).prepare()
        assert all(record.stage == "buffer" for record in runtime.quarantined)
        assert len(runtime.quarantined) == runtime.reader.function_count

    def test_rate_based_faults_are_seeded(self):
        a = AllocationFaults(seed=3, rate=0.5)
        b = AllocationFaults(seed=3, rate=0.5)
        pattern_a = [self_call(a, i) for i in range(50)]
        pattern_b = [self_call(b, i) for i in range(50)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)


def self_call(faults: AllocationFaults, findex: int) -> bool:
    try:
        faults(findex, 64)
    except BufferCapacityError:
        return True
    return False


class TestTranslateStageQuarantine:
    def test_translate_failure_quarantines(self, container, monkeypatch):
        runtime = ResilientRuntime(container)

        original = Translator.translate_function

        def failing(self, findex):
            if findex == 2:
                raise CorruptContainer("item stream fails copy phase")
            return original(self, findex)

        monkeypatch.setattr(Translator, "translate_function", failing)
        runtime.prepare()
        [record] = runtime.quarantined
        assert record.findex == 2 and record.stage == "translate"
        assert runtime.execution_mode(2) == "interpreter"

    def test_report_mentions_quarantine(self, container):
        buffer = TranslationBuffer(
            1 << 16, alloc_hook=AllocationFaults(fail_findexes={0}))
        runtime = ResilientRuntime(container, buffer=buffer).prepare()
        report = runtime.report()
        assert "1 quarantined" in report
        assert "function 0 [buffer]" in report
