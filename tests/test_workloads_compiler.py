"""Tests for repro.workloads.ast and repro.workloads.compiler."""

import pytest

from repro.isa import Op, validate_program
from repro.vm import run_program
from repro.workloads import ast, compile_module
from repro.workloads.compiler import CompileError, GLOBALS_BASE, compile_function


def _module(*functions, globals_count=4):
    return ast.Module(name="t", functions=list(functions), globals_count=globals_count)


def _main(body, locals_count=4, params=0):
    return ast.FunctionDef(name="main", params=params, locals_count=locals_count,
                           body=tuple(body))


def run_module(module, fuel=100_000):
    program = compile_module(module)
    validate_program(program)
    return run_program(program, fuel=fuel)


class TestExpressions:
    def test_constant(self):
        module = _module(_main([ast.Print(ast.Const(42)), ast.Return(ast.Const(0))]))
        assert run_module(module).output == [42]

    def test_binop_arithmetic(self):
        expr = ast.BinOp(ast.BinOpKind.ADD,
                         ast.BinOp(ast.BinOpKind.MUL, ast.Const(6), ast.Const(7)),
                         ast.Const(8))
        module = _module(_main([ast.Print(expr), ast.Return(ast.Const(0))]))
        assert run_module(module).output == [50]

    def test_subtraction_constant_becomes_addi(self):
        fn = _main([ast.Print(ast.BinOp(ast.BinOpKind.SUB, ast.Const(10), ast.Const(3))),
                    ast.Return(ast.Const(0))])
        program = compile_module(_module(fn))
        ops = [insn.op for insn in program.functions[0].insns]
        assert Op.ADDI in ops
        assert Op.SUB not in ops

    def test_local_read_write(self):
        body = [
            ast.Assign(ast.Local(0), ast.Const(5)),
            ast.Assign(ast.Local(1), ast.BinOp(ast.BinOpKind.ADD,
                                               ast.Local(0), ast.Const(2))),
            ast.Print(ast.Local(1)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [7]

    def test_global_read_write(self):
        body = [
            ast.Assign(ast.Global(2), ast.Const(99)),
            ast.Print(ast.Global(2)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [99]

    def test_globals_use_absolute_addressing(self):
        body = [ast.Print(ast.Global(1)), ast.Return(ast.Const(0))]
        program = compile_module(_module(_main(body)))
        loads = [insn for insn in program.functions[0].insns if insn.op is Op.LW]
        globals_loads = [insn for insn in loads if insn.rs1 == 0]
        assert globals_loads
        assert globals_loads[0].imm == GLOBALS_BASE + 4

    def test_global_out_of_range_rejected(self):
        body = [ast.Print(ast.Global(9)), ast.Return(ast.Const(0))]
        with pytest.raises(CompileError, match="global"):
            compile_module(_module(_main(body), globals_count=2))

    def test_expression_too_deep_rejected(self):
        expr = ast.Const(1)
        for _ in range(10):
            expr = ast.BinOp(ast.BinOpKind.DIV, expr, expr)  # DIV has no imm form
        with pytest.raises(CompileError, match="too deep"):
            compile_module(_module(_main([ast.Print(expr), ast.Return(ast.Const(0))])))


class TestControlFlow:
    def test_if_then(self):
        body = [
            ast.If(ast.Cmp(ast.CmpKind.LT, ast.Const(1), ast.Const(2)),
                   (ast.Print(ast.Const(1)),)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [1]

    def test_if_else_taken(self):
        body = [
            ast.If(ast.Cmp(ast.CmpKind.LT, ast.Const(5), ast.Const(2)),
                   (ast.Print(ast.Const(1)),),
                   (ast.Print(ast.Const(2)),)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [2]

    @pytest.mark.parametrize("kind,left,right,expected", [
        (ast.CmpKind.EQ, 3, 3, True),
        (ast.CmpKind.EQ, 3, 4, False),
        (ast.CmpKind.NE, 3, 4, True),
        (ast.CmpKind.LT, -1, 1, True),
        (ast.CmpKind.GE, 1, 1, True),
        (ast.CmpKind.GE, 0, 1, False),
        (ast.CmpKind.LTU, -1, 1, False),  # -1 unsigned is huge
        (ast.CmpKind.GEU, -1, 1, True),
    ])
    def test_comparison_kinds(self, kind, left, right, expected):
        body = [
            ast.If(ast.Cmp(kind, ast.Const(left), ast.Const(right)),
                   (ast.Print(ast.Const(1)),),
                   (ast.Print(ast.Const(0)),)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [1 if expected else 0]

    def test_counted_loop(self):
        body = [
            ast.Assign(ast.Local(1), ast.Const(0)),
            ast.CountedLoop(ast.Local(0), ast.Const(5),
                            (ast.Assign(ast.Local(1),
                                        ast.BinOp(ast.BinOpKind.ADD, ast.Local(1),
                                                  ast.Local(0))),)),
            ast.Print(ast.Local(1)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [0 + 1 + 2 + 3 + 4]

    def test_counted_loop_zero_iterations(self):
        body = [
            ast.Assign(ast.Local(1), ast.Const(7)),
            ast.CountedLoop(ast.Local(0), ast.Const(0),
                            (ast.Assign(ast.Local(1), ast.Const(0)),)),
            ast.Print(ast.Local(1)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [7]

    def test_while_loop(self):
        counter = ast.Local(0)
        body = [
            ast.Assign(counter, ast.Const(3)),
            ast.Assign(ast.Local(1), ast.Const(0)),
            ast.While(ast.Cmp(ast.CmpKind.NE, counter, ast.Const(0)),
                      (ast.Assign(ast.Local(1),
                                  ast.BinOp(ast.BinOpKind.ADD, ast.Local(1),
                                            ast.Const(10))),
                       ast.Assign(counter,
                                  ast.BinOp(ast.BinOpKind.SUB, counter,
                                            ast.Const(1))))),
            ast.Print(ast.Local(1)),
            ast.Return(ast.Const(0)),
        ]
        assert run_module(_module(_main(body))).output == [30]

    def test_slt_branch_idiom_emitted(self):
        body = [
            ast.If(ast.Cmp(ast.CmpKind.LT, ast.Local(0), ast.Const(5)),
                   (ast.Print(ast.Const(1)),)),
            ast.Return(ast.Const(0)),
        ]
        program = compile_module(_module(_main(body)))
        ops = [insn.op for insn in program.functions[0].insns]
        assert Op.SLT in ops  # the fusible MIPS idiom

    def test_return_mid_function(self):
        body = [
            ast.If(ast.Cmp(ast.CmpKind.EQ, ast.Const(1), ast.Const(1)),
                   (ast.Return(ast.Const(11)),)),
            ast.Return(ast.Const(22)),
        ]
        main = _main([
            ast.CallAssign(ast.Local(0), 1, ()),
            ast.Print(ast.Local(0)),
            ast.Return(ast.Const(0)),
        ])
        helper = ast.FunctionDef(name="h", params=0, locals_count=2, body=tuple(body))
        assert run_module(_module(main, helper)).output == [11]


class TestCalls:
    def test_call_with_arguments(self):
        add2 = ast.FunctionDef(
            name="add2", params=2, locals_count=1,
            body=(ast.Return(ast.BinOp(ast.BinOpKind.ADD, ast.Param(0),
                                       ast.Param(1))),))
        main = _main([
            ast.CallAssign(ast.Local(0), 1, (ast.Const(30), ast.Const(12))),
            ast.Print(ast.Local(0)),
            ast.Return(ast.Const(0)),
        ])
        assert run_module(_module(main, add2)).output == [42]

    def test_nested_calls_preserve_frames(self):
        # g(x) = x + 1; f(x) = g(x) * 2 + x  — x must survive the call to g.
        g = ast.FunctionDef(
            name="g", params=1, locals_count=1,
            body=(ast.Return(ast.BinOp(ast.BinOpKind.ADD, ast.Param(0),
                                       ast.Const(1))),))
        f = ast.FunctionDef(
            name="f", params=1, locals_count=2,
            body=(
                ast.CallAssign(ast.Local(1), 2, (ast.Param(0),)),
                ast.Return(ast.BinOp(ast.BinOpKind.ADD,
                                     ast.BinOp(ast.BinOpKind.MUL, ast.Local(1),
                                               ast.Const(2)),
                                     ast.Param(0))),
            ))
        main = _main([
            ast.CallAssign(ast.Local(0), 1, (ast.Const(10),)),
            ast.Print(ast.Local(0)),
            ast.Return(ast.Const(0)),
        ])
        assert run_module(_module(main, f, g)).output == [10 * 0 + 22 + 10]

    def test_too_many_params_rejected(self):
        fn = ast.FunctionDef(name="f", params=9, locals_count=0,
                             body=(ast.Return(ast.Const(0)),))
        with pytest.raises(CompileError, match="parameters"):
            compile_function(fn, _module(fn))

    def test_params_spilled_to_frame(self):
        fn = ast.FunctionDef(name="f", params=2, locals_count=0,
                             body=(ast.Return(ast.Param(1)),))
        compiled = compile_function(fn, _module(fn))
        stores = [insn for insn in compiled.insns if insn.op is Op.SW]
        # old fp + 2 params
        assert len(stores) >= 3


class TestFunctionShape:
    def test_prologue_epilogue_balance(self):
        fn = ast.FunctionDef(name="f", params=0, locals_count=3,
                             body=(ast.Return(ast.Const(1)),))
        compiled = compile_function(fn, _module(fn))
        first, last = compiled.insns[0], compiled.insns[-1]
        assert first.op is Op.ADDI and first.imm < 0  # sp down
        assert last.op is Op.RET
        sp_up = [insn for insn in compiled.insns
                 if insn.op is Op.ADDI and insn.imm == -first.imm]
        assert sp_up  # frame released

    def test_compiled_program_validates(self):
        module = _module(_main([ast.Return(ast.Const(0))]))
        validate_program(compile_module(module))
