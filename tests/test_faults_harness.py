"""Fault-injection harness: determinism, coverage, and the escape sweep.

The acceptance property for the robustness work: a ≥500-case seeded
corruption sweep over a real container yields zero exceptions outside
the ``repro.errors`` taxonomy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, decompress, parse, serialize
from repro.errors import FaultInjectionError, ReproError
from repro.faults import KINDS, ContainerCorruptor, sweep
from repro.isa import Program, assemble

SOURCE = """
func main
    li r2, 9
    call helper
loop:
    addi r2, r2, -1
    bnez r2, loop
    trap 1
    ret
end
func helper
    li r1, 5
    mul r1, r1, r2
    ret
end
"""


@pytest.fixture(scope="module")
def container():
    return compress(assemble(SOURCE)).data


class TestCorruptor:
    def test_deterministic_per_seed(self, container):
        first = ContainerCorruptor(container, seed=42)
        second = ContainerCorruptor(container, seed=42)
        for index in range(40):
            assert first.corruption(index) == second.corruption(index)

    def test_order_independent(self, container):
        corruptor = ContainerCorruptor(container, seed=7)
        forward = [corruptor.corruption(i) for i in range(20)]
        backward = [corruptor.corruption(i) for i in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_seeds_differ(self, container):
        a = ContainerCorruptor(container, seed=1).corruption(0)
        b = ContainerCorruptor(container, seed=2).corruption(0)
        assert a.data != b.data

    def test_every_kind_produced(self, container):
        corruptor = ContainerCorruptor(container, seed=0)
        kinds = {corruptor.corruption(i).kind for i in range(len(KINDS) * 4)}
        # blob_swap/length_lie may degrade to bitflip on degenerate draws,
        # but over 4 rounds every kind should appear at least once.
        assert kinds == set(KINDS)

    def test_every_case_differs_from_original(self, container):
        corruptor = ContainerCorruptor(container, seed=3)
        for index in range(60):
            assert corruptor.corruption(index).data != container

    def test_tiny_input_rejected(self):
        with pytest.raises(FaultInjectionError):
            ContainerCorruptor(b"SSD", seed=0)

    def test_unknown_kind_rejected(self, container):
        with pytest.raises(FaultInjectionError):
            ContainerCorruptor(container, kinds=("bitflip", "gamma_ray"))


class TestSweep:
    def test_acceptance_500_cases_no_escapes(self, container):
        report = sweep(container, cases=500, seed=0)
        assert report.total == 500
        assert report.ok, report.format()
        # v2 CRCs: corruption is always *detected*, never silently decoded.
        assert report.typed_errors == 500

    def test_legacy_container_sweep_no_escapes(self, container):
        legacy = serialize(parse(container), version=1)
        report = sweep(legacy, cases=250, seed=0)
        assert report.ok, report.format()
        # v1 has no checksums, so some corruptions may decode; all others
        # must be typed errors.
        assert report.typed_errors + report.decoded == 250

    def test_sweep_is_deterministic(self, container):
        assert sweep(container, cases=50, seed=9).cases == \
            sweep(container, cases=50, seed=9).cases

    def test_format_summary(self, container):
        report = sweep(container, cases=30, seed=1)
        text = report.format()
        assert "30 cases" in text and "result: OK" in text

    def test_escape_detection(self, container):
        # A decoder that raises outside the taxonomy must be flagged.
        def broken_decode(data):
            raise IndexError("list index out of range")

        report = sweep(container, cases=10, seed=0, decode=broken_decode)
        assert not report.ok
        assert len(report.unexpected) == 10
        assert report.unexpected[0].error_type == "IndexError"
        assert "FINDING" in report.format()


class TestPristine:
    def test_uncorrupted_round_trip_is_byte_identical(self, container):
        assert serialize(parse(container)) == container

    def test_uncorrupted_container_decodes(self, container):
        assert isinstance(decompress(container), Program)


@given(position=st.integers(min_value=0), kind=st.sampled_from(KINDS))
@settings(max_examples=120, deadline=None)
def test_property_single_site_corruption_is_typed(position, kind):
    # Any single corruption of a valid container either decodes to a
    # Program or raises a ReproError subtype — no internal exceptions.
    container = test_property_single_site_corruption_is_typed.container
    corruptor = ContainerCorruptor(container, seed=position, kinds=(kind,))
    case = corruptor.corruption(position % 1000)
    try:
        result = decompress(case.data)
    except ReproError:
        pass
    else:
        assert isinstance(result, Program)


test_property_single_site_corruption_is_typed.container = \
    compress(assemble(SOURCE)).data
