"""Error-path tests for the decompressor and container internals."""

import pytest

from repro.core import (
    ContainerError,
    DecompressionError,
    compress,
    open_container,
    parse,
    serialize,
)
from repro.core.container import ContainerSections, SegmentSections
from repro.isa import assemble

SOURCE = """
func main
    li r1, 5
    trap 1
    ret
end
func helper
    ret
end
"""


@pytest.fixture()
def container_bytes():
    return compress(assemble(SOURCE)).data


class TestContainerErrors:
    def test_segment_past_function_count_rejected(self, container_bytes):
        sections = parse(container_bytes)
        sections.segments[0] = SegmentSections(
            first_function=0,
            function_count=99,
            base_blob=sections.segments[0].base_blob,
            tree_blob=sections.segments[0].tree_blob,
        )
        with pytest.raises(DecompressionError, match="covers function"):
            open_container(serialize(sections))

    def test_item_stream_count_mismatch_rejected(self):
        sections = ContainerSections(
            program_name="x", entry=0, function_names=["a", "b"],
            common_base_blob=b"", common_tree_blob=b"",
            segments=[], item_streams=[b""])  # 2 names, 1 stream
        with pytest.raises(ContainerError, match="one item stream per function"):
            serialize(sections)

    def test_name_count_mismatch_rejected(self, container_bytes):
        # Rewrite the name blob to hold a different number of names.
        from repro.lz import lz77
        from repro.lz.varint import ByteWriter

        sections = parse(container_bytes)
        sections.function_names.append("ghost")
        # serialize() derives the blob from the names; parse must then
        # notice the count disagreement against the stored count... so
        # instead patch bytes directly: easiest is to assert the parse of
        # a serialize with mismatched count data fails.  Build manually:
        writer = ByteWriter()
        writer.write_bytes(b"SSD1")
        writer.write_uvarint(1)
        writer.write_bytes(b"x")
        writer.write_uvarint(0)
        writer.write_uvarint(2)  # claim 2 functions
        name_blob = lz77.compress(b"only_one")
        writer.write_uvarint(len(name_blob))
        writer.write_bytes(name_blob)
        with pytest.raises((ContainerError, EOFError)):
            parse(writer.getvalue())


class TestReaderAccessors:
    def test_layout_for_function(self, container_bytes):
        reader = open_container(container_bytes)
        assert reader.layout_for_function(0) is reader.layouts[0]
        assert reader.function_count == 2
        assert reader.entry == 0

    def test_decoded_items_lengths_cover_function(self, container_bytes):
        reader = open_container(container_bytes)
        program = assemble(SOURCE)
        for findex, fn in enumerate(program.functions):
            decoded = reader.decoded_items(findex)
            assert sum(item.length for item in decoded) == len(fn.insns)
