"""Unit tests for the consistent-hash ring (repro.serve.ring).

The properties the cluster depends on: deterministic placement, distinct
replicas, bounded load skew, and minimal key movement when a shard
leaves the ring.
"""

import hashlib

import pytest

from repro.serve.ring import DEFAULT_VNODES, HashRing

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3", "shard-4"]


def _keys(count):
    return [hashlib.sha256(f"key:{i}".encode()).hexdigest()
            for i in range(count)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            HashRing(["a", "b", "a"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_len_is_shard_count(self):
        assert len(HashRing(SHARDS)) == len(SHARDS)

    def test_point_count(self):
        ring = HashRing(SHARDS, vnodes=16)
        assert len(ring._points) == 16 * len(SHARDS)


class TestPlacement:
    def test_deterministic(self):
        a, b = HashRing(SHARDS), HashRing(SHARDS)
        for key in _keys(100):
            assert a.primary_for(key) == b.primary_for(key)
            assert a.replicas_for(key, 3) == b.replicas_for(key, 3)

    def test_replicas_distinct(self):
        ring = HashRing(SHARDS)
        for key in _keys(200):
            replicas = ring.replicas_for(key, 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_primary_is_first_replica(self):
        ring = HashRing(SHARDS)
        for key in _keys(50):
            assert ring.primary_for(key) == ring.replicas_for(key, 3)[0]

    def test_count_clamped_to_population(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.replicas_for("k", 5)) == ["a", "b"]

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(SHARDS).replicas_for("k", 0)

    def test_insertion_order_irrelevant(self):
        forward = HashRing(SHARDS)
        backward = HashRing(list(reversed(SHARDS)))
        for key in _keys(100):
            assert forward.replicas_for(key, 2) == \
                backward.replicas_for(key, 2)


class TestLoadAndMovement:
    def test_load_split_is_roughly_uniform(self):
        split = HashRing(SHARDS, vnodes=DEFAULT_VNODES).load_split()
        assert abs(sum(split.values()) - 1.0) < 1e-9
        for shard, fraction in split.items():
            # 5 shards -> ideal 0.20; vnodes keep skew well bounded
            assert 0.08 < fraction < 0.36, (shard, fraction)

    def test_without_removes_only_that_shards_keys(self):
        ring = HashRing(SHARDS)
        smaller = ring.without("shard-2")
        assert "shard-2" not in smaller.shard_ids
        moved = 0
        keys = _keys(500)
        for key in keys:
            before = ring.primary_for(key)
            after = smaller.primary_for(key)
            if before == "shard-2":
                assert after != "shard-2"
            elif before != after:
                moved += 1
        # consistent hashing: keys not owned by the removed shard stay put
        assert moved == 0

    def test_survivor_replica_set_still_covers_key(self):
        ring = HashRing(SHARDS)
        for key in _keys(100):
            replicas = ring.replicas_for(key, 2)
            # kill the primary: the secondary must still be a placement
            # replica in the survivor topology's view of the key
            survivor = ring.without(replicas[0])
            assert survivor.primary_for(key) == replicas[1]
