"""End-to-end tests for the delta update path through repro.serve.

Covers the new wire surface (GET_CONTAINER / GET_DELTA / E_NO_BASE),
the store's patch synthesis + LRU, the client's verified
``update_container`` swap-in with clean full-transfer fallback, and the
``ssd-delta`` codec seam that ships standalone patches through the v3
envelope.
"""

import hashlib

import pytest

from repro.codecs import get_codec, open_any
from repro.codecs.container import unwrap
from repro.core import compress
from repro.delta import apply_patch, make_patch
from repro.errors import DeltaError, NoBaseError, RemoteError
from repro.isa import assemble
from repro.serve import ServeClient, protocol, serve_in_thread
from repro.serve.store import PATCH_CACHE_ENTRIES, ContainerStore

ASM = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


def _container(value: int) -> bytes:
    return compress(assemble(ASM.format(value=value))).data


def _cid(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@pytest.fixture()
def server():
    with serve_in_thread() as handle:
        with ServeClient(*handle.address) as client:
            yield handle, client


class TestStoreDelta:
    def test_make_delta_synthesizes_a_valid_patch(self):
        store = ContainerStore()
        base, target = _container(3), _container(9)
        store.put(base)
        store.put(target)
        patch = store.make_delta(_cid(base), _cid(target))
        assert apply_patch(base, patch) == target

    def test_unknown_target_is_not_found(self):
        store = ContainerStore()
        base = _container(3)
        store.put(base)
        with pytest.raises(KeyError):
            store.make_delta(_cid(base), "ff" * 32)

    def test_unknown_base_raises_no_base(self):
        store = ContainerStore()
        target = _container(9)
        store.put(target)
        with pytest.raises(NoBaseError):
            store.make_delta("ff" * 32, _cid(target))

    def test_patch_cache_hits_and_evicts(self):
        store = ContainerStore()
        containers = [_container(value) for value in range(1, 4)]
        for data in containers:
            store.put(data)
        first = store.make_delta(_cid(containers[0]), _cid(containers[1]))
        assert store.make_delta(_cid(containers[0]),
                                _cid(containers[1])) == first
        assert len(store._patches) == 1
        # Fill past the LRU budget; the cache must stay bounded.
        for index in range(PATCH_CACHE_ENTRIES + 8):
            base = containers[index % 3]
            target = containers[(index + 1) % 3]
            store._patches[(f"k{index}", _cid(target))] = b"x"
        store.make_delta(_cid(containers[1]), _cid(containers[2]))
        assert len(store._patches) <= PATCH_CACHE_ENTRIES


class TestServeWire:
    def test_get_container_roundtrips(self, server):
        _handle, client = server
        data = _container(5)
        container_id, _, _ = client.put(data)
        assert client.get_container(container_id) == data

    def test_get_container_unknown_is_not_found(self, server):
        _handle, client = server
        with pytest.raises(RemoteError) as excinfo:
            client.get_container("ee" * 32)
        assert excinfo.value.code == protocol.E_NOT_FOUND

    def test_get_delta_applies_to_the_base(self, server):
        _handle, client = server
        base, target = _container(3), _container(9)
        client.put(base)
        target_id, _, _ = client.put(target)
        patch = client.get_delta(target_id, _cid(base))
        assert apply_patch(base, patch) == target

    def test_missing_base_answers_e_no_base(self, server):
        _handle, client = server
        target_id, _, _ = client.put(_container(9))
        with pytest.raises(RemoteError) as excinfo:
            client.get_delta(target_id, "ee" * 32)
        assert excinfo.value.code == protocol.E_NO_BASE

    def test_meta_carries_codec_wire_id_and_version(self, server):
        _handle, client = server
        container_id, _, _ = client.put(_container(5))
        meta = client.meta(container_id)
        assert meta.codec_id == "ssd"
        assert meta.codec_wire_id == get_codec("ssd").wire_id
        assert meta.container_version == 2

    def test_server_counts_delta_traffic(self, server):
        handle, client = server
        base, target = _container(3), _container(9)
        client.put(base)
        target_id, _, _ = client.put(target)
        client.get_delta(target_id, _cid(base))
        with pytest.raises(RemoteError):
            client.get_delta(target_id, "ee" * 32)
        snapshot = handle.server.metrics.snapshot()
        assert snapshot["delta"]["patches"] == 1
        assert snapshot["delta"]["no_base"] == 1
        assert snapshot["delta"]["bytes_saved"] > 0


class TestClientUpdate:
    def test_update_uses_the_delta_path(self, server):
        _handle, client = server
        base, target = _container(3), _container(9)
        client.put(base)
        target_id, _, _ = client.put(target)
        rebuilt, delta_used = client.update_container(base, target_id)
        assert delta_used
        assert rebuilt == target

    def test_update_with_current_container_is_a_noop(self, server):
        _handle, client = server
        data = _container(5)
        container_id, _, _ = client.put(data)
        rebuilt, delta_used = client.update_container(data, container_id)
        assert delta_used and rebuilt == data

    def test_unknown_base_falls_back_to_full_transfer(self, server):
        _handle, client = server
        target = _container(9)
        target_id, _, _ = client.put(target)
        rebuilt, delta_used = client.update_container(_container(3),
                                                      target_id)
        assert not delta_used
        assert rebuilt == target

    def test_poisoned_patch_falls_back_never_swaps_in(self, server):
        # A server handing out a corrupt patch must not be able to make
        # the client install wrong bytes: apply fails typed, the client
        # re-fetches the full container and verifies its digest.
        handle, client = server
        base, target = _container(3), _container(9)
        base_id, _, _ = client.put(base)
        target_id, _, _ = client.put(target)
        truth = make_patch(base, target)
        poisoned = bytearray(truth)
        poisoned[33] ^= 0xFF                     # lie about the target
        handle.server.store._patches[(base_id, target_id)] = bytes(poisoned)
        rebuilt, delta_used = client.update_container(base, target_id)
        assert not delta_used
        assert rebuilt == target


class TestDeltaCodec:
    def test_registered_with_wire_id_4(self):
        codec = get_codec("ssd-delta")
        assert codec.wire_id == 4

    def test_standalone_container_roundtrips_via_open_any(self):
        program = assemble(ASM.format(value=6))
        compressed = get_codec("ssd-delta").compress(program)
        reader = open_any(compressed.data)
        assert reader.codec_id == "ssd-delta"
        assert reader.program() == program

    def test_envelope_payload_is_a_standalone_patch(self):
        program = assemble(ASM.format(value=6))
        compressed = get_codec("ssd-delta").compress(program)
        wire_id, patch = unwrap(compressed.data)
        assert wire_id == 4
        from repro.delta import patch_info

        assert patch_info(patch).standalone

    def test_based_patch_refuses_direct_open(self):
        program = assemble(ASM.format(value=6))
        base = _container(3)
        compressed = get_codec("ssd-delta").compress(program, base=base)
        with pytest.raises(DeltaError, match="base container"):
            open_any(compressed.data)
