"""Tests for the ``build_tables`` per-container-hash memo (re-translation
after buffer eviction must skip the dictionary phase)."""

import dataclasses

import pytest

from repro.core import compress, open_container
from repro.jit import build_tables
from repro.jit.instruction_table import _TABLE_CACHE, _TABLE_CACHE_LIMIT
from repro.workloads import benchmark_program


@pytest.fixture(autouse=True)
def clean_cache():
    _TABLE_CACHE.clear()
    yield
    _TABLE_CACHE.clear()


@pytest.fixture(scope="module")
def container_bytes():
    return compress(benchmark_program("go", scale=0.02)).data


class TestBuildTablesMemo:
    def test_same_container_hits_cache(self, container_bytes):
        first = build_tables(open_container(container_bytes))
        second = build_tables(open_container(container_bytes))
        assert second is first  # two readers, one hash, one build

    def test_mutated_container_rebuilds(self, container_bytes):
        other = compress(benchmark_program("go", scale=0.03)).data
        assert other != container_bytes
        a = build_tables(open_container(container_bytes))
        b = build_tables(open_container(other))
        assert b is not a

    def test_use_cache_false_builds_fresh(self, container_bytes):
        reader = open_container(container_bytes)
        cached = build_tables(reader)
        fresh = build_tables(reader, use_cache=False)
        assert fresh is not cached
        assert fresh.total_bytes == cached.total_bytes
        # A bypassing build must not disturb the memo either.
        assert build_tables(reader) is cached

    def test_reader_without_hash_never_cached(self, container_bytes):
        reader = open_container(container_bytes)
        bare = dataclasses.replace(reader, container_hash=None)
        a = build_tables(bare)
        b = build_tables(bare)
        assert a is not b
        assert not _TABLE_CACHE

    def test_cache_is_bounded(self, container_bytes):
        reader = open_container(container_bytes)
        first = build_tables(reader)
        # Fill the cache past its limit with distinct fake hashes.
        for index in range(_TABLE_CACHE_LIMIT + 2):
            fake = dataclasses.replace(reader, container_hash=f"fake-{index}")
            build_tables(fake)
        assert len(_TABLE_CACHE) <= _TABLE_CACHE_LIMIT
        # The oldest entry (the real container) was evicted.
        assert build_tables(open_container(container_bytes)) is not first

    def test_lru_order_refreshes_on_hit(self, container_bytes):
        reader = open_container(container_bytes)
        kept = build_tables(reader)
        for index in range(_TABLE_CACHE_LIMIT - 1):
            fake = dataclasses.replace(reader, container_hash=f"fake-{index}")
            build_tables(fake)
        # Touch the original, then overflow by one: the original survives.
        assert build_tables(reader) is kept
        build_tables(dataclasses.replace(reader, container_hash="overflow"))
        assert build_tables(reader) is kept
