"""Failure-injection tests: corrupt containers must fail cleanly.

Version-2 containers carry per-section CRC32s, so any single-site
corruption must be *detected* — decode raises a ``repro.errors`` type,
never an internal exception (KeyError/IndexError/UnboundLocalError), an
infinite loop, or a segfault-style failure.  Legacy version-1 containers
carry no checksums; there a flipped bit may decode to a *different valid
program* — that is acceptable, and the semantic-safety tests pin that
any such program is still structurally checkable and runnable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, decompress, parse, serialize
from repro.errors import ReproError
from repro.isa import Program, assemble, validation_issues
from repro.vm import run_program

#: exceptions the library is allowed to raise on corrupt input
ACCEPTABLE = (ValueError, EOFError)

SOURCE = """
func main
    li r2, 9
    call helper
loop:
    addi r2, r2, -1
    bnez r2, loop
    trap 1
    ret
end
func helper
    li r1, 5
    mul r1, r1, r2
    ret
end
"""


@pytest.fixture(scope="module")
def container():
    return compress(assemble(SOURCE)).data


@pytest.fixture(scope="module")
def legacy_container(container):
    """The same program re-serialized in the checksum-free v1 format."""
    return serialize(parse(container), version=1)


def _attempt(data: bytes):
    """Decode corrupt bytes; return ('ok', program) or ('error', exc)."""
    try:
        return "ok", decompress(data)
    except ACCEPTABLE as exc:
        return "error", exc


class TestSingleByteFlips:
    def test_every_position_fails_cleanly(self, container):
        # Exhaustive single-byte corruption over the whole container.
        for position in range(len(container)):
            corrupted = bytearray(container)
            corrupted[position] ^= 0xFF
            outcome, value = _attempt(bytes(corrupted))
            if outcome == "ok":
                assert isinstance(value, Program)
            else:
                # Typed taxonomy, not just any acceptable builtin.
                assert isinstance(value, ReproError), value

    def test_v2_flips_always_detected(self, container):
        # The CRCs make single-byte corruption of a v2 container
        # *detectable*, not merely survivable.
        rng = random.Random(99)
        for _ in range(200):
            corrupted = bytearray(container)
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
            outcome, value = _attempt(bytes(corrupted))
            assert outcome == "error", "corruption decoded despite CRCs"
            assert isinstance(value, ReproError)

    def test_legacy_bit_flips_fail_cleanly(self, legacy_container):
        rng = random.Random(99)
        for _ in range(200):
            corrupted = bytearray(legacy_container)
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
            outcome, value = _attempt(bytes(corrupted))
            if outcome == "ok":
                assert isinstance(value, Program)


class TestTruncationAndExtension:
    def test_every_truncation_fails_cleanly(self, container):
        for length in range(len(container)):
            outcome, value = _attempt(container[:length])
            # A strict prefix can never parse: the container checks for
            # trailing bytes and section lengths.
            assert outcome == "error", f"truncation to {length} decoded?!"
            assert isinstance(value, ReproError)

    def test_appended_garbage_rejected(self, container):
        outcome, value = _attempt(container + b"\xAB\xCD")
        assert outcome == "error"

    def test_empty_input_rejected(self):
        outcome, _ = _attempt(b"")
        assert outcome == "error"


class TestSemanticSafety:
    def test_surviving_corruptions_produce_runnable_or_invalid_programs(
            self, legacy_container):
        # Checksum-free v1 containers may decode after a flip.  When a
        # corruption decodes, the result is a structurally checkable
        # program: either validation rejects it, or it runs (possibly to
        # a VM fault or out-of-fuel, both clean errors).
        from repro.vm import VMError

        rng = random.Random(7)
        decoded = 0
        for _ in range(300):
            corrupted = bytearray(legacy_container)
            corrupted[rng.randrange(len(corrupted))] ^= 0xFF
            outcome, value = _attempt(bytes(corrupted))
            if outcome != "ok":
                continue
            decoded += 1
            if validation_issues(value):
                continue  # structurally rejected; fine
            try:
                run_program(value, fuel=50_000)
            except VMError:
                pass  # clean runtime fault; fine
        # The exercise is vacuous if nothing ever decodes; most flips in
        # the item stream should still parse.
        assert decoded > 0


@given(st.binary(max_size=400))
@settings(max_examples=100, deadline=None)
def test_property_arbitrary_bytes_never_crash(data):
    outcome, value = _attempt(data)
    if outcome == "ok":
        assert isinstance(value, Program)
