"""Failure-injection tests: corrupt containers must fail cleanly.

The container format carries no checksums (neither did 2000-era program
loaders), so a flipped bit may decode to a *different valid program* —
that is acceptable.  What is not acceptable is a crash with an internal
exception (KeyError/IndexError/UnboundLocalError), an infinite loop, or a
segfault-style failure.  These tests flip, truncate and extend container
bytes and assert every outcome is either a clean decode or a library
error (ValueError subclass / EOFError).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, decompress
from repro.isa import Program, assemble, validation_issues
from repro.vm import run_program

#: exceptions the library is allowed to raise on corrupt input
ACCEPTABLE = (ValueError, EOFError)

SOURCE = """
func main
    li r2, 9
    call helper
loop:
    addi r2, r2, -1
    bnez r2, loop
    trap 1
    ret
end
func helper
    li r1, 5
    mul r1, r1, r2
    ret
end
"""


@pytest.fixture(scope="module")
def container():
    return compress(assemble(SOURCE)).data


def _attempt(data: bytes):
    """Decode corrupt bytes; return ('ok', program) or ('error', exc)."""
    try:
        return "ok", decompress(data)
    except ACCEPTABLE as exc:
        return "error", exc


class TestSingleByteFlips:
    def test_every_position_fails_cleanly(self, container):
        # Exhaustive single-byte corruption over the whole container.
        for position in range(len(container)):
            corrupted = bytearray(container)
            corrupted[position] ^= 0xFF
            outcome, value = _attempt(bytes(corrupted))
            if outcome == "ok":
                assert isinstance(value, Program)

    def test_bit_flips_at_random_positions(self, container):
        rng = random.Random(99)
        for _ in range(200):
            corrupted = bytearray(container)
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
            outcome, value = _attempt(bytes(corrupted))
            if outcome == "ok":
                assert isinstance(value, Program)


class TestTruncationAndExtension:
    def test_every_truncation_fails_cleanly(self, container):
        for length in range(len(container)):
            outcome, value = _attempt(container[:length])
            # A strict prefix can never parse: the container checks for
            # trailing bytes and section lengths.
            assert outcome == "error", f"truncation to {length} decoded?!"

    def test_appended_garbage_rejected(self, container):
        outcome, value = _attempt(container + b"\xAB\xCD")
        assert outcome == "error"

    def test_empty_input_rejected(self):
        outcome, _ = _attempt(b"")
        assert outcome == "error"


class TestSemanticSafety:
    def test_surviving_corruptions_produce_runnable_or_invalid_programs(self, container):
        # When a corruption decodes, the result is a structurally
        # checkable program: either validation rejects it, or it runs
        # (possibly to a VM fault or out-of-fuel, both clean errors).
        from repro.vm import VMError

        rng = random.Random(7)
        decoded = 0
        for _ in range(300):
            corrupted = bytearray(container)
            corrupted[rng.randrange(len(corrupted))] ^= 0xFF
            outcome, value = _attempt(bytes(corrupted))
            if outcome != "ok":
                continue
            decoded += 1
            if validation_issues(value):
                continue  # structurally rejected; fine
            try:
                run_program(value, fuel=50_000)
            except VMError:
                pass  # clean runtime fault; fine
        # The exercise is vacuous if nothing ever decodes; most flips in
        # the item stream should still parse.
        assert decoded > 0


@given(st.binary(max_size=400))
@settings(max_examples=100, deadline=None)
def test_property_arbitrary_bytes_never_crash(data):
    outcome, value = _attempt(data)
    if outcome == "ok":
        assert isinstance(value, Program)
