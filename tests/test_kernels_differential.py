"""Differential properties: vectorized kernels vs the scalar reference.

Every speculative kernel must be *observationally identical* to the
scalar decoder it accelerates: same decoded values on well-formed input,
and — because the kernels bail to the scalar path on any anomaly — the
same ``repro.errors`` exception type, message, and offset on corrupt
input.  These properties are what let the format layers pick a backend
purely on speed.

Each property runs the operation under both backends (skipping the numpy
half when numpy is unavailable) and compares outcomes, where an outcome
is either the returned value or ``(type, message, offset)`` of the
raised exception.  The batch-size gates (``_ITEM_KERNEL_MIN_BYTES`` and
friends) are lowered for the whole module so hypothesis-sized inputs
actually exercise the vectorized paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core import compress, decompress
import repro.core.items as items_mod
from repro.core.items import (
    DecodedItem,
    EntryInfo,
    decode_item_planes,
    planes_to_items,
    resolve_plane_targets,
)
from repro.errors import ReproError
from repro.faults.injector import ContainerCorruptor
from repro.lz import lz77
import repro.lz.varint as varint_mod
from repro.lz.varint import ByteReader, ByteWriter, decode_uvarint

from .strategies import programs

needs_numpy = pytest.mark.skipif(not kernels.has_numpy(),
                                 reason="numpy not installed")

_BACKENDS = ("python", "numpy") if kernels.has_numpy() else ("python",)


@pytest.fixture(autouse=True, scope="module")
def _force_kernel_paths():
    """Lower the size gates so small test inputs hit the bulk kernels."""
    saved = (items_mod._ITEM_KERNEL_MIN_BYTES, varint_mod._RUN_KERNEL_MIN,
             lz77.TABLE_MIN_BYTES)
    items_mod._ITEM_KERNEL_MIN_BYTES = 0
    varint_mod._RUN_KERNEL_MIN = 1
    lz77.TABLE_MIN_BYTES = 0
    yield
    (items_mod._ITEM_KERNEL_MIN_BYTES, varint_mod._RUN_KERNEL_MIN,
     lz77.TABLE_MIN_BYTES) = saved


def outcomes(fn):
    """Run ``fn`` once per backend; return ``{backend: outcome}``.

    An outcome is ``("ok", value)`` or ``("err", type, message, offset)``.
    Exceptions must belong to the ``repro.errors`` taxonomy — anything
    else (IndexError, numpy errors escaping a kernel) fails the test
    outright.
    """
    results = {}
    for name in _BACKENDS:
        previous = kernels.set_backend(name)
        try:
            try:
                results[name] = ("ok", fn())
            except ReproError as exc:
                results[name] = ("err", type(exc), str(exc),
                                 getattr(exc, "offset", None))
        finally:
            kernels.set_backend(previous)
    return results


def assert_identical(fn):
    results = outcomes(fn)
    distinct = set()
    for name, outcome in results.items():
        distinct.add(repr(outcome))
    assert len(distinct) == 1, f"backends disagree: {results}"
    return next(iter(results.values()))


# -- item streams ------------------------------------------------------------

@st.composite
def entry_tables(draw):
    """A random dictionary-index table: index -> EntryInfo."""
    count = draw(st.integers(min_value=1, max_value=12))
    table = {}
    for index in range(count):
        shape = draw(st.sampled_from(["plain", "plain", "branch", "call"]))
        length = draw(st.integers(min_value=1, max_value=5))
        if shape == "plain":
            table[index] = EntryInfo(length=length)
        else:
            size = draw(st.sampled_from([1, 2, 4]))
            table[index] = EntryInfo(length=length,
                                     is_branch=shape == "branch",
                                     is_call=shape == "call",
                                     target_size=size)
    return table


@st.composite
def item_streams(draw):
    """A structurally valid item stream over a random table.

    Target *bytes* are arbitrary, so displacements may leave the
    function — that is exactly what ``resolve_plane_targets`` must
    reject identically on both backends.
    """
    table = draw(entry_tables())
    count = draw(st.integers(min_value=0, max_value=40))
    writer = ByteWriter()
    for _ in range(count):
        index = draw(st.sampled_from(sorted(table)))
        writer.write_u16(index)
        entry = table[index]
        if entry.target_size:
            writer.write_bytes(draw(st.binary(min_size=entry.target_size,
                                              max_size=entry.target_size)))
    return table, writer.getvalue()


@given(item_streams())
def test_item_planes_identical_on_valid_streams(stream):
    table, blob = stream
    outcome = assert_identical(lambda: decode_item_planes(blob, table))
    assert outcome[0] == "ok"
    planes = outcome[1]
    assert planes.count == len(planes.kinds) == len(planes.values)
    items = planes_to_items(planes)
    assert all(isinstance(item, DecodedItem) for item in items)


@given(item_streams())
def test_target_resolution_identical(stream):
    table, blob = stream

    def resolve():
        planes = decode_item_planes(blob, table)
        return resolve_plane_targets(planes)

    assert_identical(resolve)


@given(item_streams(), st.data())
def test_corrupt_item_streams_fail_identically(stream, data):
    table, blob = stream
    corrupted = bytearray(blob)
    action = data.draw(st.sampled_from(["flip", "truncate", "extend"]),
                       label="corruption")
    if action == "flip" and corrupted:
        position = data.draw(
            st.integers(min_value=0, max_value=len(corrupted) - 1))
        corrupted[position] ^= data.draw(st.integers(min_value=1,
                                                     max_value=255))
    elif action == "truncate" and corrupted:
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(corrupted) - 1))
        del corrupted[cut:]
    else:
        corrupted += data.draw(st.binary(min_size=1, max_size=7))
    corrupted = bytes(corrupted)

    def decode():
        planes = decode_item_planes(corrupted, table)
        return planes_to_items(planes), resolve_plane_targets(planes)

    assert_identical(decode)


# -- varint runs -------------------------------------------------------------

_U64 = st.integers(min_value=0, max_value=2**63 - 1)
_S64 = st.integers(min_value=-(2**62), max_value=2**62 - 1)


@given(st.lists(_U64, max_size=30), st.integers(min_value=0, max_value=4))
def test_uvarint_run_identical(values, extra):
    writer = ByteWriter()
    for value in values:
        writer.write_uvarint(value)
    data = writer.getvalue()
    count = len(values) + extra  # extra > 0 runs off the end: truncation

    def decode():
        reader = ByteReader(data)
        decoded = reader.read_uvarint_run(count)
        return decoded, reader.position

    outcome = assert_identical(decode)
    if extra == 0:
        assert outcome == ("ok", (values, len(data)))


@given(st.lists(_S64, max_size=30), st.integers(min_value=0, max_value=4))
def test_svarint_run_identical(values, extra):
    writer = ByteWriter()
    for value in values:
        writer.write_svarint(value)
    data = writer.getvalue()
    count = len(values) + extra

    def decode():
        reader = ByteReader(data)
        decoded = reader.read_svarint_run(count)
        return decoded, reader.position

    outcome = assert_identical(decode)
    if extra == 0:
        assert outcome == ("ok", (values, len(data)))


@given(st.binary(max_size=120), st.integers(min_value=1, max_value=24))
def test_varint_runs_identical_on_random_bytes(data, count):
    """Arbitrary bytes: overlong varints, truncation — same errors."""
    def decode():
        reader = ByteReader(data)
        decoded = reader.read_uvarint_run(count)
        return decoded, reader.position

    assert_identical(decode)


@needs_numpy
@given(st.binary(min_size=1, max_size=300))
def test_uvarint_table_matches_scalar(data):
    from repro.kernels.varints import uvarint_table

    values, nexts = uvarint_table(data)
    assert len(values) == len(nexts) == len(data)
    for offset in range(len(data)):
        if nexts[offset] >= 0:
            assert decode_uvarint(data, offset) == (values[offset],
                                                    nexts[offset])
        else:
            # Undecodable marker: the scalar varint here is truncated,
            # or longer than the table's five-byte reach.
            try:
                _, end = decode_uvarint(data, offset)
            except ReproError:
                continue
            assert end - offset > 5


# -- LZ77 --------------------------------------------------------------------

@given(st.binary(max_size=4096))
def test_lz77_roundtrip_identical(payload):
    compressed = lz77.compress(payload)
    outcome = assert_identical(lambda: lz77.decompress(compressed))
    assert outcome == ("ok", payload)


@given(st.binary(min_size=1, max_size=1024), st.data())
def test_lz77_corrupt_streams_fail_identically(payload, data):
    compressed = bytearray(lz77.compress(payload))
    position = data.draw(
        st.integers(min_value=0, max_value=len(compressed) - 1))
    mask = data.draw(st.integers(min_value=1, max_value=255))
    compressed[position] ^= mask
    blob = bytes(compressed)
    assert_identical(lambda: lz77.decompress(blob))


@given(st.binary(max_size=512))
def test_lz77_random_bytes_fail_identically(data):
    assert_identical(lambda: lz77.decompress(data))


# -- whole containers --------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(programs(max_functions=4, max_function_size=25))
def test_decompress_identical_across_backends(program):
    container = compress(program).data
    outcome = assert_identical(lambda: decompress(container))
    assert outcome == ("ok", program)


def test_corrupted_containers_fail_identically():
    """Structure-aware fault sweep: every corruption decodes to the same
    program or raises the same taxonomy error on both backends."""
    program = compress_target_program()
    container = compress(program).data
    corruptor = ContainerCorruptor(container, seed=1234)
    for corruption in corruptor.corruptions(56):
        blob = corruption.data
        assert_identical(lambda: decompress(blob))


def compress_target_program():
    from repro.workloads import benchmark_program

    return benchmark_program("compress", scale=0.2)
