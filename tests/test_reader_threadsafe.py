"""Thread-safety regression tests for SSDReader's function cache.

Satellite 1: the decode memo inside :class:`SSDReader` is shared by the
server's worker threads; this suite decodes one reader from 8 threads
concurrently and asserts byte-identical results and single-decode
memoisation.
"""

import threading

from repro.core import compress, open_container
from repro.isa import assemble
from repro.isa.encoding import encode_function

ASM = """
func main
    li r2, 6
    call double
    call triple
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
func triple
    add r1, r2, r2
    add r1, r1, r2
    ret
end
func fib
    li r3, 10
    li r1, 0
    li r2, 1
loop:
    add r4, r1, r2
    add r1, r2, r0
    add r2, r4, r0
    addi r3, r3, -1
    bnez r3, loop
    ret
end
"""


def function_bytes(function) -> bytes:
    return encode_function(function)


def test_eight_threads_decode_byte_identical():
    program = assemble(ASM)
    container = compress(program).data
    reader = open_container(container)
    findices = list(range(reader.function_count))
    barrier = threading.Barrier(8)
    results = [None] * 8
    errors = []

    def worker(tid: int) -> None:
        try:
            barrier.wait(timeout=10)
            # Each thread walks the functions in a different order so the
            # racing first-decodes land on different indices.
            order = findices[tid % len(findices):] + \
                findices[:tid % len(findices)]
            decoded = {}
            for _ in range(20):
                for findex in order:
                    decoded[findex] = function_bytes(reader.function(findex))
            results[tid] = decoded
        except Exception as exc:  # noqa: BLE001
            errors.append(f"thread {tid}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors

    # Byte-identical across all threads, and identical to a fresh
    # single-threaded decode of the same container.
    fresh = open_container(container)
    expected = {findex: function_bytes(fresh.function(findex))
                for findex in findices}
    for tid, decoded in enumerate(results):
        assert decoded == expected, f"thread {tid} diverged"


def test_memo_returns_the_same_object_to_all_threads():
    program = assemble(ASM)
    reader = open_container(compress(program).data)
    barrier = threading.Barrier(8)
    seen = [None] * 8

    def worker(tid: int) -> None:
        barrier.wait(timeout=10)
        seen[tid] = reader.function(0)

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    first = seen[0]
    assert first is not None
    assert all(function is first for function in seen)
    assert reader.cached_function_indices == [0]


def test_function_decode_matches_source_program():
    program = assemble(ASM)
    reader = open_container(compress(program).data)
    for findex, function in enumerate(program.functions):
        decoded = reader.function(findex)
        assert decoded.name == function.name
        assert decoded.insns == function.insns
