"""Property and fault tests for repro.lz.delta (the escape-coded
delta codec of section 2.2.1).

The round-trip property covers the encoder's whole input space; the
fault tests pin the escape boundary at ±127 and assert the decoder's
hostile-input contract — truncated or mangled streams raise the
``repro.errors`` taxonomy, never a bare ``IndexError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TruncatedStream
from repro.lz.delta import _BIAS, _ESCAPE, decode_deltas, encode_deltas
from repro.lz.varint import encode_svarint, encode_uvarint


class TestRoundTrip:
    @given(st.lists(st.integers(min_value=-2**40, max_value=2**40)))
    @settings(max_examples=200, deadline=None)
    def test_any_sequence_roundtrips(self, values):
        assert decode_deltas(encode_deltas(values)) == values

    @given(st.lists(st.integers(min_value=-2**40, max_value=2**40),
                    min_size=2))
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_deterministic(self, values):
        assert encode_deltas(values) == encode_deltas(values)

    def test_empty_sequence(self):
        encoded = encode_deltas([])
        assert encoded == b"\x00"
        assert decode_deltas(encoded) == []

    def test_single_value_has_no_delta_bytes(self):
        assert decode_deltas(encode_deltas([-2**40])) == [-2**40]

    def test_iterable_input_accepted(self):
        assert decode_deltas(encode_deltas(range(5))) == [0, 1, 2, 3, 4]


class TestEscapeBoundary:
    @pytest.mark.parametrize("delta", [-127, -1, 0, 1, 127])
    def test_small_deltas_are_one_byte(self, delta):
        # count varint + first-value varint + exactly one delta byte
        encoded = encode_deltas([0, delta])
        assert len(encoded) == 3
        assert encoded[-1] == delta + _BIAS
        assert _ESCAPE not in encoded[2:]

    @pytest.mark.parametrize("delta", [-128, 128, 10**9, -(10**9)])
    def test_large_deltas_take_the_escape_path(self, delta):
        encoded = encode_deltas([0, delta])
        assert encoded[2] == _ESCAPE
        assert encoded[3:] == encode_svarint(delta)
        assert decode_deltas(encoded) == [0, delta]

    def test_boundary_values_roundtrip_exactly(self):
        values = [0, 127, 0, -127, 1, 128, 0, -128, 0]
        assert decode_deltas(encode_deltas(values)) == values


class TestHostileInput:
    def test_every_truncation_raises_taxonomy_error(self):
        # A stream with both small and escaped deltas: every strict
        # prefix must fail typed, at any cut point.
        encoded = encode_deltas([0, 5, 10**9, -7, -(10**9)])
        for cut in range(len(encoded)):
            with pytest.raises(ReproError):
                decode_deltas(encoded[:cut])

    def test_truncated_escape_varint_is_typed_not_indexerror(self):
        encoded = encode_deltas([0, 10**9])
        assert encoded[2] == _ESCAPE
        with pytest.raises(TruncatedStream):
            decode_deltas(encoded[:3])          # escape byte, no varint
        with pytest.raises(TruncatedStream):
            decode_deltas(encoded[:-1])         # varint cut mid-byte

    def test_count_lie_raises_truncated(self):
        body = encode_deltas([1, 2, 3])[1:]
        with pytest.raises(TruncatedStream):
            decode_deltas(encode_uvarint(100) + body)

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_decode_or_raise_typed(self, blob):
        try:
            values = decode_deltas(blob)
        except ReproError:
            return
        assert isinstance(values, list)
