"""Documentation consistency checks.

Cheap guards that keep the written story in sync with the code: the
deliverable docs exist, reference real modules, and the recorded
full-scale results cover every exhibit.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name):
    path = ROOT / name
    assert path.exists(), f"{name} missing"
    return path.read_text(encoding="utf-8")


class TestDeliverableDocs:
    def test_readme_covers_all_packages(self):
        readme = _read("README.md")
        for package in ("repro.core", "repro.isa", "repro.vm", "repro.brisc",
                        "repro.jit", "repro.workloads", "repro.lz",
                        "repro.delta"):
            assert package in readme

    def test_design_has_experiment_index(self):
        design = _read("DESIGN.md")
        for exhibit in ("table1", "table5", "table6", "figure3",
                        "throughput", "ablation-branch", "startup"):
            assert exhibit in design, exhibit

    def test_experiments_covers_every_exhibit(self):
        experiments = _read("EXPERIMENTS.md")
        for heading in ("Table 1", "Table 5", "Table 6", "Figure 3",
                        "Throughput", "Startup", "Ablations"):
            assert heading in experiments, heading

    def test_format_doc_matches_magic(self):
        from repro.core.container import MAGIC

        assert MAGIC.decode() in _read("docs/FORMAT.md")

    def test_algorithms_doc_references_real_modules(self):
        import importlib

        doc = _read("docs/ALGORITHMS.md")
        for reference in set(re.findall(r"`(repro\.[a-z_.]+)`", doc)):
            parts = reference.split(".")
            # The reference may be a module or module.attribute.
            for split in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:split]))
                except ModuleNotFoundError:
                    continue
                for attribute in parts[split:]:
                    obj = getattr(obj, attribute)
                break
            else:
                pytest.fail(f"dangling reference {reference!r}")


class TestCodecDocs:
    """docs/CODECS.md stays in lock-step with the codec registry."""

    def test_codecs_doc_lists_every_registered_codec(self):
        from repro.codecs import codec_ids

        doc = _read("docs/CODECS.md")
        for codec_id in codec_ids():
            assert f"`{codec_id}`" in doc, codec_id

    def test_codecs_doc_wire_ids_match_registry(self):
        from repro.codecs import codec_ids, get_codec

        doc = _read("docs/CODECS.md")
        table_rows = re.findall(r"^\| `([a-z0-9-]+)` \| (\d+) \|", doc,
                                flags=re.MULTILINE)
        assert table_rows, "built-in codec table missing"
        assert {row[0] for row in table_rows} == set(codec_ids())
        for codec_id, wire_id in table_rows:
            assert get_codec(codec_id).wire_id == int(wire_id), codec_id

    def test_format_doc_covers_v3_envelope(self):
        from repro.codecs.container import MAGIC_V3

        doc = _read("docs/FORMAT.md")
        assert MAGIC_V3.decode() in doc
        assert "codec wire id" in doc

    def test_readme_and_design_link_codecs_doc(self):
        assert "docs/CODECS.md" in _read("README.md")
        assert "repro.codecs" in _read("DESIGN.md")


class TestRecordedResults:
    def test_full_scale_results_exist(self):
        results = _read("results/full_scale.txt")
        for marker in ("Table 1", "Table 5", "Table 6", "Figure 3",
                       "Throughput", "Startup"):
            assert marker in results, marker

    def test_full_scale_ablations_exist(self):
        results = _read("results/full_scale_ablations.txt")
        for marker in ("branch targets", "base-entry codec",
                       "sequence-entry length", "optimal matching",
                       "hybrid re-optimization", "replacement policy",
                       "Compression landscape", "Validation"):
            assert marker in results, marker

    def test_no_failed_exhibits_recorded(self):
        assert "FAILED" not in _read("results/full_scale.txt")
        assert "Traceback" not in _read("results/full_scale_ablations.txt")


class TestPaperConstantsTranscription:
    def test_table6_rows_match_paper(self):
        from repro.workloads import PAPER_TABLE6

        assert len(PAPER_TABLE6) == 9
        assert PAPER_TABLE6[0] == (0.200, 208.0, 91.31)
        assert PAPER_TABLE6[-1] == (0.500, 5.3, 99.96)

    def test_average_row_consistency(self):
        # Paper's Table 5 average row: 0.47 / 0.61 / 6.6%.
        from repro.workloads import (
            PAPER_AVERAGE_BRISC_RATIO,
            PAPER_AVERAGE_EXEC_OVERHEAD_PCT,
            PAPER_AVERAGE_SSD_RATIO,
            PROFILES,
        )

        ssd = sum(p.table5.ssd_ratio for p in PROFILES) / len(PROFILES)
        brisc = sum(p.table5.brisc_ratio for p in PROFILES) / len(PROFILES)
        overhead = sum(p.table5.exec_overhead_pct for p in PROFILES) / len(PROFILES)
        assert ssd == pytest.approx(PAPER_AVERAGE_SSD_RATIO, abs=0.01)
        assert brisc == pytest.approx(PAPER_AVERAGE_BRISC_RATIO, abs=0.01)
        assert overhead == pytest.approx(PAPER_AVERAGE_EXEC_OVERHEAD_PCT, abs=0.1)


class TestProtocolDoc:
    def test_protocol_doc_exists_and_is_linked(self):
        doc = _read("docs/PROTOCOL.md")
        assert "repro.serve" in doc
        assert "docs/PROTOCOL.md" in _read("README.md")
        assert "docs/PROTOCOL.md" in _read("DESIGN.md")

    def test_protocol_doc_matches_message_types(self):
        from repro.serve import protocol

        doc = _read("docs/PROTOCOL.md")
        for value, name in protocol.TYPE_NAMES.items():
            assert f"`{name}`" in doc, name
            assert f"0x{value:02X}" in doc or f"0x{value:02x}" in doc, name

    def test_protocol_doc_matches_error_codes(self):
        from repro.serve import protocol

        doc = _read("docs/PROTOCOL.md")
        for value, name in protocol.ERROR_NAMES.items():
            assert f"`{name}`" in doc, name

    def test_protocol_doc_matches_constants(self):
        from repro.serve import protocol

        doc = _read("docs/PROTOCOL.md")
        assert f"version {protocol.PROTOCOL_VERSION}" in doc
        assert "SHA-256" in doc


class TestDeltaDoc:
    """docs/DELTA.md stays in lock-step with the repro.delta subsystem."""

    def test_delta_doc_exists_and_is_linked(self):
        doc = _read("docs/DELTA.md")
        assert "repro.delta" in doc
        assert "docs/DELTA.md" in _read("README.md")
        assert "docs/DELTA.md" in _read("DESIGN.md")

    def test_delta_doc_matches_code_constants(self):
        from repro.codecs import get_codec
        from repro.experiments.delta import MAX_MEDIAN_UPDATE_RATIO

        doc = _read("docs/DELTA.md")
        assert f"wire id {get_codec('ssd-delta').wire_id}" in doc
        assert f"{MAX_MEDIAN_UPDATE_RATIO:.0%}" in doc

    def test_delta_doc_references_real_api(self):
        import repro.delta as delta_module

        doc = _read("docs/DELTA.md")
        for name in ("make_patch", "apply_patch", "apply_chain",
                     "patch_info", "train_shared_base", "EMPTY_BASE_HASH"):
            assert hasattr(delta_module, name), name
            assert name in doc, name
        from repro.serve import ServeClient

        assert hasattr(ServeClient, "update_container")
        assert "update_container" in doc

    def test_format_doc_covers_patch_layout(self):
        doc = _read("docs/FORMAT.md")
        assert "ssd-delta" in doc
        assert "base SHA-256" in doc and "target SHA-256" in doc

    def test_protocol_doc_covers_delta_negotiation(self):
        doc = _read("docs/PROTOCOL.md")
        assert "`GET_DELTA`" in doc and "`GET_CONTAINER`" in doc
        assert "`E_NO_BASE`" in doc
        assert "DELTA.md" in doc


class TestObservabilityDoc:
    def _doc(self):
        return _read("docs/OBSERVABILITY.md")

    def test_doc_exists_and_is_linked(self):
        doc = self._doc()
        assert "repro.obs" in doc
        assert "docs/OBSERVABILITY.md" in _read("README.md")
        assert "docs/OBSERVABILITY.md" in _read("DESIGN.md")

    def _documented_families(self):
        # Metric families appear as the first cell of table rows:
        # "| `name_total` | counter | ... |".
        return re.findall(r"^\| `([a-z_]+)` \|", self._doc(), re.MULTILINE)

    def test_documented_metrics_exist(self):
        # Import every instrumented subsystem so registration runs.
        import repro.core.compressor  # noqa: F401
        import repro.core.decompressor  # noqa: F401
        import repro.jit.buffer  # noqa: F401
        import repro.jit.instruction_table  # noqa: F401
        import repro.jit.resilience  # noqa: F401
        import repro.jit.translator  # noqa: F401
        import repro.lz.arith  # noqa: F401
        import repro.lz.lz77  # noqa: F401
        from repro.obs import REGISTRY
        from repro.serve.metrics import RouterMetrics, ServerMetrics

        families = self._documented_families()
        assert len(families) >= 25, "metric tables went missing"
        serve_registry = ServerMetrics().registry
        cluster_registry = RouterMetrics().registry
        for name in families:
            if name.startswith("serve_"):
                registry = serve_registry
            elif name.startswith(("cluster_", "router_")):
                registry = cluster_registry
            else:
                registry = REGISTRY
            assert name in registry, f"documented family {name} not registered"

    def test_registered_metrics_are_documented(self):
        # The reverse direction: nothing registers a family the doc
        # does not list.
        import repro.core.compressor  # noqa: F401
        import repro.core.decompressor  # noqa: F401
        import repro.jit.buffer  # noqa: F401
        import repro.jit.resilience  # noqa: F401
        from repro.obs import REGISTRY
        from repro.serve.metrics import RouterMetrics, ServerMetrics

        documented = set(self._documented_families())
        live = (set(REGISTRY.names())
                | set(ServerMetrics().registry.names())
                | set(RouterMetrics().registry.names()))
        assert live <= documented, sorted(live - documented)

    def test_documented_spans_exist_in_source(self):
        doc = self._doc()
        spans = set(re.findall(r"`((?:[a-z_]+\.)+[a-z_]+)`", doc))
        spans = {name for name in spans if not name.startswith("repro.")}
        spans -= {"time.perf_counter", "asyncio.to_thread", "trace.json",
                  "PhaseProfile.phase", "Span.to_dict", "ServerMetrics.registry",
                  "ServerMetrics.expose_text", "REGISTRY.expose_text",
                  "MetricsRegistry.expose_text", "TRACER.find_roots",
                  "Span.find", "threading.Thread", "contextvars.copy_context"}
        assert "serve.decode" in spans and "jit.translate" in spans
        src = ROOT / "src" / "repro"
        source_text = "\n".join(path.read_text(encoding="utf-8")
                                for path in src.rglob("*.py"))
        for name in sorted(spans):
            # Spans open either directly (TRACER.span("x")) or through
            # the profile adapter (profile.phase("x") -> a span).
            opened = (f'span("{name}"' in source_text
                      or f'phase("{name}"' in source_text)
            assert opened, (
                f"documented span {name!r} not opened anywhere in src/repro")
