"""Tests for repro.isa.program, repro.isa.cfg and repro.isa.validate."""

import pytest
from hypothesis import given

from repro.isa import (
    BasicBlock,
    Function,
    Instruction,
    Op,
    Program,
    ValidationError,
    basic_blocks,
    block_id_map,
    concatenate,
    leaders,
    validate_program,
    validation_issues,
)

from .strategies import programs


def _ret():
    return Instruction(op=Op.RET)


def _addi(rd=1, rs1=1, imm=1):
    return Instruction(op=Op.ADDI, rd=rd, rs1=rs1, imm=imm)


def _make_program(*fns, entry=0):
    return Program(name="t", functions=list(fns), entry=entry)


class TestFunction:
    def test_len_and_iter(self):
        fn = Function(name="f", insns=[_addi(), _ret()])
        assert len(fn) == 2
        assert list(fn) == fn.insns

    def test_target_sizes_for_branches(self):
        # Branch at index 0 to index 1: displacement 0 -> 1 byte.
        fn = Function(name="f", insns=[
            Instruction(op=Op.JMP, target=1),
            _ret(),
        ])
        assert fn.target_sizes() == [1, None]

    def test_target_sizes_large_displacement(self):
        insns = [Instruction(op=Op.BEQZ, rs1=1, target=200)]
        insns += [_addi() for _ in range(200)]
        insns.append(_ret())
        fn = Function(name="f", insns=insns)
        assert fn.target_sizes()[0] == 2

    def test_call_target_size_by_function_index(self):
        fn = Function(name="f", insns=[
            Instruction(op=Op.CALL, target=5),
            Instruction(op=Op.CALL, target=300),
            _ret(),
        ])
        assert fn.target_sizes()[:2] == [1, 2]

    def test_validate_targets_rejects_out_of_range(self):
        fn = Function(name="f", insns=[Instruction(op=Op.JMP, target=9)])
        with pytest.raises(ValueError):
            fn.validate_targets()

    def test_match_keys_parallel_to_insns(self):
        fn = Function(name="f", insns=[_addi(), Instruction(op=Op.JMP, target=0), _ret()])
        keys = fn.match_keys()
        assert len(keys) == 3


class TestProgram:
    def test_instruction_count(self):
        p = _make_program(Function(name="a", insns=[_ret()]),
                          Function(name="b", insns=[_addi(), _ret()]))
        assert p.instruction_count == 3

    def test_function_lookup(self):
        p = _make_program(Function(name="a", insns=[_ret()]),
                          Function(name="b", insns=[_ret()]))
        assert p.function_named("b").name == "b"
        assert p.function_index("b") == 1
        with pytest.raises(KeyError):
            p.function_named("zzz")

    def test_entry_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _make_program(Function(name="a", insns=[_ret()]), entry=5)

    def test_iter_instructions_coordinates(self):
        p = _make_program(Function(name="a", insns=[_addi(), _ret()]))
        coords = [(f, i) for f, i, _ in p.iter_instructions()]
        assert coords == [(0, 0), (0, 1)]

    def test_opcode_histogram(self):
        p = _make_program(Function(name="a", insns=[_addi(), _addi(), _ret()]))
        hist = p.opcode_histogram()
        assert hist[Op.ADDI] == 2
        assert hist[Op.RET] == 1

    def test_concatenate_rebases_calls(self):
        p1 = _make_program(Function(name="a", insns=[Instruction(op=Op.CALL, target=0), _ret()]))
        p2 = _make_program(Function(name="b", insns=[Instruction(op=Op.CALL, target=0), _ret()]))
        merged = concatenate([p1, p2])
        assert merged.functions[1].insns[0].target == 1
        assert merged.functions[0].insns[0].target == 0


class TestCfg:
    def test_straight_line_is_one_block(self):
        fn = Function(name="f", insns=[_addi(), _addi(), _ret()])
        assert basic_blocks(fn) == [BasicBlock(0, 3)]

    def test_branch_splits_blocks(self):
        # 0: beqz -> 2 ; 1: addi ; 2: ret
        fn = Function(name="f", insns=[
            Instruction(op=Op.BEQZ, rs1=1, target=2),
            _addi(),
            _ret(),
        ])
        assert basic_blocks(fn) == [BasicBlock(0, 1), BasicBlock(1, 2), BasicBlock(2, 3)]

    def test_backward_branch_target_is_leader(self):
        # 0: addi ; 1: addi ; 2: bnez -> 1
        fn = Function(name="f", insns=[
            _addi(),
            _addi(),
            Instruction(op=Op.BNEZ, rs1=1, target=1),
            _ret(),
        ])
        assert leaders(fn) == [0, 1, 3]

    def test_call_terminates_block(self):
        fn = Function(name="f", insns=[
            Instruction(op=Op.CALL, target=0),
            _addi(),
            _ret(),
        ])
        assert leaders(fn) == [0, 1]

    def test_empty_function_has_no_blocks(self):
        assert basic_blocks(Function(name="f", insns=[])) == []

    def test_block_id_map_covers_every_instruction(self):
        fn = Function(name="f", insns=[
            Instruction(op=Op.BEQZ, rs1=1, target=2),
            _addi(),
            _ret(),
        ])
        assert block_id_map(fn) == [0, 1, 2]

    def test_blocks_partition_function(self):
        fn = Function(name="f", insns=[
            _addi(),
            Instruction(op=Op.BNEZ, rs1=1, target=0),
            _addi(),
            Instruction(op=Op.JMP, target=4),
            _ret(),
        ])
        blocks = basic_blocks(fn)
        covered = [i for b in blocks for i in range(b.start, b.end)]
        assert covered == list(range(len(fn.insns)))


class TestValidate:
    def test_valid_program_passes(self):
        validate_program(_make_program(Function(name="a", insns=[_addi(), _ret()])))

    def test_empty_program_rejected(self):
        with pytest.raises(ValidationError):
            validate_program(Program(name="t", functions=[]))

    def test_empty_function_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            validate_program(_make_program(Function(name="a", insns=[])))

    def test_fallthrough_end_rejected(self):
        with pytest.raises(ValidationError, match="falls off"):
            validate_program(_make_program(Function(name="a", insns=[_addi()])))

    def test_branch_out_of_range_rejected(self):
        fn = Function(name="a", insns=[Instruction(op=Op.BEQZ, rs1=1, target=10), _ret()])
        with pytest.raises(ValidationError, match="branch target"):
            validate_program(_make_program(fn))

    def test_call_out_of_range_rejected(self):
        fn = Function(name="a", insns=[Instruction(op=Op.CALL, target=9), _ret()])
        with pytest.raises(ValidationError, match="call target"):
            validate_program(_make_program(fn))

    def test_validation_issues_collects_multiple(self):
        fn1 = Function(name="a", insns=[_addi()])
        fn2 = Function(name="b", insns=[Instruction(op=Op.CALL, target=9), _ret()])
        issues = validation_issues(_make_program(fn1, fn2))
        assert len(issues) == 2


@given(programs())
def test_property_generated_programs_validate(program):
    validate_program(program)


@given(programs())
def test_property_blocks_partition_and_terminators_end_blocks(program):
    for fn in program.functions:
        blocks = basic_blocks(fn)
        covered = [i for b in blocks for i in range(b.start, b.end)]
        assert covered == list(range(len(fn.insns)))
        for block in blocks:
            # No terminator may appear before the last slot of its block.
            for index in range(block.start, block.end - 1):
                assert not fn.insns[index].is_terminator
