"""End-to-end observability tests.

The acceptance test drives the full stack — compress a program, serve
it, execute it remotely (decoding server-side), then JIT-translate the
container locally — and asserts the shared tracer captured every leg
with stable span names and nonzero monotonic durations.  A second test
pins the ``ssd compress --profile`` report so the perf->obs adapter
cannot silently change the CLI contract.
"""

import re

from repro.core import compress
from repro.core.decompressor import open_container
from repro.isa import assemble
from repro.jit import Translator
from repro.obs import REGISTRY, TRACER
from repro.perf.profile import PhaseProfile
from repro.serve import RemoteProgram, ServeClient, serve_in_thread
from repro.tools import main
from repro.vm import run_program

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
"""

COMPRESS_PHASES = [
    "dictionary.base_entries",
    "dictionary.ngrams",
    "dictionary.segmentation",
    "dictionary.rewrite",
    "partition",
    "layout",
    "items",
    "serialize",
]


class TestEndToEndTrace:
    def test_trace_spans_compress_serve_and_jit(self):
        TRACER.clear()
        program = assemble(ASM)
        compressed = compress(program, profile=PhaseProfile())
        container = compressed.data

        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                remote = RemoteProgram(client, container)
                result = run_program(remote)
                stats = client.stats()
        assert result.output == run_program(program).output
        assert stats["decodes_total"] >= 1

        reader = open_container(container)
        Translator(reader).translate_function(0)

        # Compressor leg: one "compress" root whose children are the
        # documented phase spans, each with a real duration.
        (compress_root,) = TRACER.find_roots("compress")
        phase_names = [child.name for child in compress_root.children]
        assert phase_names == COMPRESS_PHASES
        for child in compress_root.children:
            assert child.duration is not None and child.duration > 0
        assert compress_root.duration > 0

        # Server leg: GET_FUNCTION requests carry a serve.decode child
        # that inherits the request's trace id (context propagation
        # across asyncio.to_thread).
        fetches = [
            root
            for root in TRACER.find_roots("serve.request")
            if root.attrs.get("type") == "GET_FUNCTION"
        ]
        assert fetches, "remote run produced no GET_FUNCTION spans"
        decodes = [
            (root, decode)
            for root in fetches
            for decode in root.find("serve.decode")
        ]
        assert decodes, "no serve.decode span under any request"
        for root, decode in decodes:
            assert decode.trace_id == root.trace_id
            assert decode.parent_id is not None
            assert decode.duration is not None and decode.duration > 0

        # JIT leg: translate_function opens its own jit.translate span.
        (jit_root,) = TRACER.find_roots("jit.translate")
        assert jit_root.attrs == {"findex": 0}
        assert jit_root.duration is not None and jit_root.duration > 0

        # The shared registry saw all three subsystems.
        assert REGISTRY.get("compress_programs_total").total() >= 1
        assert REGISTRY.get("jit_translate_total").total() >= 1

    def test_request_ids_distinguish_requests(self):
        TRACER.clear()
        container = compress(assemble(ASM)).data
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                RemoteProgram(client, container)
        roots = TRACER.find_roots("serve.request")
        request_ids = [root.attrs.get("request_id") for root in roots]
        assert len(request_ids) >= 2
        assert len(set(request_ids)) == len(request_ids)


PHASE_LINE = re.compile(r"^  (?P<name>\S+) +(?P<ms>\d+\.\d{2}) ms +\d+\.\d%$")
TOTAL_LINE = re.compile(r"^  total +\d+\.\d{2} ms$")


class TestProfileOutputRegression:
    """``ssd compress --profile`` must keep its exact report shape."""

    def test_profile_keys_and_layout_unchanged(self, tmp_path, capsys):
        out = tmp_path / "bench.ssd"
        rc = main(
            [
                "compress",
                "bench:compress@0.2",
                "-o",
                str(out),
                "--profile",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        report = [
            line
            for line in err.splitlines()
            if line.startswith(("compress phases", "  "))
        ]
        assert report[0] == "compress phases:"
        assert TOTAL_LINE.match(report[-1]), report[-1]
        names = []
        for line in report[1:-1]:
            match = PHASE_LINE.match(line)
            assert match, f"malformed profile line: {line!r}"
            names.append(match.group("name"))
        assert names == COMPRESS_PHASES
