"""Tests for base-entry compression, sequence trees, and item streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EntryInfo,
    ItemStreamError,
    build_dictionary,
    decode_base_entries,
    decode_items,
    decode_sequence_tree,
    encode_base_entries,
    encode_items,
    encode_sequence_tree,
    order_base_entries,
    resolve_branch_targets,
    sequence_index_map,
)
from repro.core.dictionary import BaseEntry
from repro.isa import Instruction, Op, assemble

from .strategies import programs


def _entries_from(text):
    return build_dictionary(assemble(text)).base_entries


SAMPLE = """
func main
    li r1, 100
    li r2, -5
    addi r1, r1, 1
    lw r3, 8(r29)
    sw r3, 12(r29)
    bnez r1, out
    call helper
out:
    ret
end
func helper
    mul r4, r1, r2
    ret
end
"""


class TestBaseEntryCodec:
    def test_roundtrip_preserves_entries(self):
        ordered = order_base_entries(_entries_from(SAMPLE))
        decoded = decode_base_entries(encode_base_entries(ordered))
        assert decoded == ordered

    def test_delta_codec_roundtrip(self):
        ordered = order_base_entries(_entries_from(SAMPLE))
        decoded = decode_base_entries(encode_base_entries(ordered, codec="delta"))
        assert decoded == ordered

    def test_delta_lz_codec_roundtrip(self):
        ordered = order_base_entries(_entries_from(SAMPLE))
        decoded = decode_base_entries(encode_base_entries(ordered, codec="delta+lz"))
        assert decoded == ordered

    def test_order_groups_by_opcode(self):
        ordered = order_base_entries(_entries_from(SAMPLE))
        codes = [e.instruction.meta.code for e in ordered]
        assert codes == sorted(codes)

    def test_order_sorts_by_immediate_within_group(self):
        ordered = order_base_entries(_entries_from(SAMPLE))
        li_imms = [e.instruction.imm for e in ordered if e.instruction.op is Op.LI]
        assert li_imms == sorted(li_imms)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            encode_base_entries([], codec="zstd")

    def test_empty_blob_rejected(self):
        with pytest.raises(ValueError):
            decode_base_entries(b"")

    def test_bad_codec_tag_rejected(self):
        with pytest.raises(ValueError, match="codec tag"):
            decode_base_entries(b"\x07rest")

    def test_sorted_immediates_compress_well(self):
        # Many LIs with clustered immediates: the sorted+LZ form should be
        # far below the naive 5+ bytes/instruction encoding.
        entries = order_base_entries([
            BaseEntry(key=("li", i), instruction=Instruction(op=Op.LI, rd=1, imm=1000 + i))
            for i in range(500)
        ])
        blob = encode_base_entries(entries)
        assert len(blob) < 500 * 3

    def test_displacement_roundtrip(self):
        entries = order_base_entries(
            build_dictionary(assemble(SAMPLE), absolute_targets=True).base_entries)
        decoded = decode_base_entries(encode_base_entries(entries))
        assert decoded == entries


class TestSequenceTree:
    def _roundtrip(self, sequences, base_space):
        blob = encode_sequence_tree(sequences, base_space)
        return decode_sequence_tree(blob)

    def test_single_sequence(self):
        ranks = self._roundtrip([(1, 2, 3)], base_space=10)
        assert ranks == {(1, 2): 0, (1, 2, 3): 1}

    def test_shared_prefix_shares_nodes(self):
        ranks = self._roundtrip([(1, 2, 3), (1, 2, 4)], base_space=10)
        assert len(ranks) == 3  # (1,2), (1,2,3), (1,2,4)

    def test_figure2_forest(self):
        # Figure 2 of the paper: trees for A1 and A2.
        a1, b1, c1, a2, b2, c2, d2, e2 = range(8)
        sequences = [(a1, b1), (a1, c1), (a2, b2, c2), (a2, b2, d2, e2)]
        ranks = self._roundtrip(sequences, base_space=8)
        # nodes: (a1,b1),(a1,c1),(a2,b2),(a2,b2,c2),(a2,b2,d2),(a2,b2,d2,e2)
        assert len(ranks) == 6
        for sequence in sequences:
            assert tuple(sequence) in ranks

    def test_dfs_order_is_deterministic(self):
        sequences = [(3, 1), (2, 5), (2, 4), (3, 1, 2)]
        a = self._roundtrip(sequences, base_space=8)
        b = self._roundtrip(list(reversed(sequences)), base_space=8)
        assert a == b

    def test_high_bit_encoding_used_for_small_spaces(self):
        from repro.lz import lz77

        blob = encode_sequence_tree([(1, 2)], base_space=100)
        assert lz77.decompress(blob)[0] == 1  # high-bit flag

    def test_reserved_pop_encoding_for_large_spaces(self):
        from repro.lz import lz77

        blob = encode_sequence_tree([(40000, 2)], base_space=60000)
        assert lz77.decompress(blob)[0] == 0
        ranks = decode_sequence_tree(blob)
        assert (40000, 2) in ranks

    def test_base_id_out_of_space_rejected(self):
        with pytest.raises(ValueError, match="outside base space"):
            encode_sequence_tree([(1, 200)], base_space=100)

    def test_full_capacity_base_space_works(self):
        # Capacity already excludes 0xFFFF, so the largest legal id is
        # 65534 and never collides with the reserved pop token.
        ranks = decode_sequence_tree(
            encode_sequence_tree([(65534, 1)], base_space=65535))
        assert (65534, 1) in ranks

    def test_space_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_sequence_tree([(1, 2)], base_space=1 << 17)

    def test_short_sequence_rejected(self):
        with pytest.raises(ValueError, match="length >= 2"):
            encode_sequence_tree([(1,)], base_space=10)

    def test_sequence_index_map_offsets_by_base_count(self):
        mapping = sequence_index_map([(1, 2)], base_count=50)
        assert mapping[(1, 2)] == 50


class TestItemCodec:
    def _simple_setup(self):
        # entries: 0 = one plain instruction, 1 = branch (1-byte target),
        # 2 = 3-instruction sequence, 3 = call (1-byte target)
        info = {
            0: EntryInfo(length=1),
            1: EntryInfo(length=1, is_branch=True, target_size=1),
            2: EntryInfo(length=3),
            3: EntryInfo(length=1, is_call=True, target_size=1),
        }
        return info

    def test_roundtrip_plain_items(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        refs = [EntryRef(base_ids=(10,)), EntryRef(base_ids=(11, 12, 13))]
        index_of = {(10,): 0, (11, 12, 13): 2}
        blob = encode_items(refs, index_of, info)
        items = decode_items(blob, info)
        assert [i.dict_index for i in items] == [0, 2]
        assert [i.length for i in items] == [1, 3]

    def test_branch_displacement_roundtrip(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        # item 0: branch to instruction 4 (start of item 2); item 1: a
        # 3-insn sequence; item 2: plain.
        refs = [
            EntryRef(base_ids=(20,), branch_target=4),
            EntryRef(base_ids=(11, 12, 13)),
            EntryRef(base_ids=(10,)),
        ]
        index_of = {(20,): 1, (11, 12, 13): 2, (10,): 0}
        blob = encode_items(refs, index_of, info)
        items = decode_items(blob, info)
        targets = resolve_branch_targets(items)
        assert targets == [4, None, None]

    def test_backward_branch(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        refs = [
            EntryRef(base_ids=(10,)),
            EntryRef(base_ids=(20,), branch_target=0),
        ]
        index_of = {(10,): 0, (20,): 1}
        items = decode_items(encode_items(refs, index_of, info), info)
        assert resolve_branch_targets(items) == [None, 0]

    def test_call_target_roundtrip(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        refs = [EntryRef(base_ids=(30,), call_target=7)]
        index_of = {(30,): 3}
        items = decode_items(encode_items(refs, index_of, info), info)
        assert items[0].call_target == 7

    def test_misaligned_branch_target_rejected(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        # Branch into the middle of the 3-instruction sequence item.
        refs = [
            EntryRef(base_ids=(20,), branch_target=2),
            EntryRef(base_ids=(11, 12, 13)),
        ]
        index_of = {(20,): 1, (11, 12, 13): 2}
        with pytest.raises(ItemStreamError, match="not item-aligned"):
            encode_items(refs, index_of, info)

    def test_unknown_entry_rejected(self):
        from repro.core.dictionary import EntryRef

        info = self._simple_setup()
        refs = [EntryRef(base_ids=(99,))]
        with pytest.raises(ItemStreamError, match="no dictionary index"):
            encode_items(refs, {}, info)

    def test_unknown_index_on_decode_rejected(self):
        info = self._simple_setup()
        with pytest.raises(ItemStreamError, match="unknown index"):
            decode_items(b"\x63\x00", info)  # index 99

    def test_out_of_range_displacement_rejected(self):
        info = {1: EntryInfo(length=1, is_branch=True, target_size=1)}
        # displacement +100 with only 1 item
        blob = b"\x01\x00\x64"
        items = decode_items(blob, info)
        with pytest.raises(ItemStreamError, match="leaves the function"):
            resolve_branch_targets(items)


@given(programs(max_functions=4, max_function_size=40))
@settings(max_examples=30, deadline=None)
def test_property_base_entry_codec_roundtrip(program):
    ordered = order_base_entries(build_dictionary(program).base_entries)
    for codec in ("lz", "delta", "delta+lz"):
        assert decode_base_entries(encode_base_entries(ordered, codec=codec)) == ordered


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 200),
                          st.integers(0, 200)).map(tuple),
                min_size=1, max_size=60))
@settings(max_examples=50)
def test_property_tree_roundtrip(sequences):
    from repro.core import assign_sequence_indices

    blob = encode_sequence_tree(sequences, base_space=201)
    assert decode_sequence_tree(blob) == assign_sequence_indices(sequences)
