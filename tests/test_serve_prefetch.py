"""Server-side markov prefetch + admission wiring (repro.serve.server).

A profiled container seeds the server's predictor from its hint
section; GET_FUNCTION traffic teaches it per-connection transitions;
predicted successors are decoded in the background so the next request
hits the cache.  These tests drive a real server over a socket and
assert on the ``prefetch`` / ``cache_admission`` blocks STATS exposes.
"""

import time

import pytest

from repro.core import compress
from repro.isa import assemble
from repro.profile import AccessProfile, build_plan
from repro.serve import (
    RemoteProgram,
    ServeClient,
    ServerConfig,
    serve_in_thread,
)

FUNCTION_COUNT = 12

SOURCE = "func main\n    li r2, 1\n    call f1\n    trap 1\n    ret\nend\n"
for _i in range(1, FUNCTION_COUNT):
    SOURCE += f"func f{_i}\n    add r1, r2, r2\n    ret\nend\n"


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE)


@pytest.fixture(scope="module")
def chain_plan(program):
    # A strictly sequential walk: 0 -> 1 -> ... -> n-1, repeated, so
    # the hint edges predict "next index" with full confidence.
    count = len(program.functions)
    trace = [i % count for i in range(6 * count)]
    return build_plan(AccessProfile.from_trace(trace), count)


@pytest.fixture(scope="module")
def profiled_container(program, chain_plan):
    return compress(program, layout_plan=chain_plan).data


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestServerPrefetch:
    def test_hint_seeded_prefetch_hits(self, profiled_container):
        config = ServerConfig(prefetch_depth=2, request_timeout=10.0)
        with serve_in_thread(config=config) as handle:
            with ServeClient(*handle.address) as client:
                cid, count, _ = client.put(profiled_container)
                for findex in range(count):
                    client.function(cid, findex)
                stats = client.stats()
                assert "prefetch" in stats
                issued = stats["prefetch"]["issued"]
                assert issued > 0
                # The background decodes land asynchronously; a second
                # sequential pass must find prefetched entries.
                _wait_for(lambda: client.stats()["prefetch"]["issued"] >= issued)
                for findex in range(count):
                    client.function(cid, findex)
                assert _wait_for(
                    lambda: client.stats()["prefetch"]["hits"] > 0
                ), client.stats()["prefetch"]

    def test_prefetch_off_by_default(self, profiled_container):
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                cid, count, _ = client.put(profiled_container)
                for findex in range(count):
                    client.function(cid, findex)
                stats = client.stats()
                assert stats["prefetch"] == {"issued": 0, "hits": 0}

    def test_learned_transitions_without_hints(self, program):
        """No hint section at all: the predictor still learns from the
        request stream and prefetches on later passes."""
        plain = compress(program).data
        # A one-byte cache keeps nothing resident, so predicted
        # successors are always worth issuing (a full cache would skip
        # them as already-cached).
        config = ServerConfig(
            prefetch_depth=2, request_timeout=10.0, cache_bytes=1
        )
        with serve_in_thread(config=config) as handle:
            with ServeClient(*handle.address) as client:
                cid, count, _ = client.put(plain)
                for _ in range(3):
                    for findex in range(count):
                        client.function(cid, findex)
                assert _wait_for(
                    lambda: client.stats()["prefetch"]["issued"] > 0
                ), client.stats()["prefetch"]

    def test_admission_stats_exposed_when_enabled(self, profiled_container):
        config = ServerConfig(cache_admission=True)
        with serve_in_thread(config=config) as handle:
            with ServeClient(*handle.address) as client:
                client.put(profiled_container)
                stats = client.stats()
                assert set(stats["cache_admission"]) == {
                    "rejects",
                    "ghost_readmits",
                    "ghost_entries",
                    "tracked_keys",
                }

    def test_admission_stats_absent_by_default(self, profiled_container):
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                client.put(profiled_container)
                assert "cache_admission" not in client.stats()

    def test_prefetch_metrics_in_exposition(self, profiled_container):
        config = ServerConfig(prefetch_depth=2, request_timeout=10.0)
        with serve_in_thread(config=config) as handle:
            with ServeClient(*handle.address) as client:
                cid, count, _ = client.put(profiled_container)
                for findex in range(count):
                    client.function(cid, findex)
                text = client.metrics_text()
                assert "serve_prefetch_issued_total" in text
                assert "serve_prefetch_hits_total" in text


class TestRemoteProgramPrefetch:
    def test_hot_set_prefetch_from_bytes(self, profiled_container, program):
        from repro.profile import MarkovPredictor

        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                remote = RemoteProgram(
                    client, profiled_container, predictor=MarkovPredictor()
                )
                assert remote.hints is not None
                fetched = remote.prefetch_hot()
                assert fetched == len(remote.hints.hot)
                assert remote.decompressed_count == fetched

    def test_predicted_prefetch_follows_chain(self, profiled_container):
        from repro.profile import MarkovPredictor

        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                remote = RemoteProgram(
                    client, profiled_container, predictor=MarkovPredictor()
                )
                remote.functions[0]
                fetched = remote.prefetch_predicted(depth=2)
                assert fetched > 0
                # The hint chain predicts the sequential successors.
                assert 1 in remote.decompressed_functions

    def test_id_only_program_has_no_hints(self, profiled_container):
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                cid, _, _ = client.put(profiled_container)
                remote = RemoteProgram(client, cid)
                assert remote.hints is None
                assert remote.prefetch_hot() == 0
