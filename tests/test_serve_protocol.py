"""Tests for the repro.serve wire protocol (framing, bodies, CRCs)."""

import io

import pytest

from repro.errors import ProtocolError, TruncatedStream
from repro.isa import assemble
from repro.serve import protocol

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
"""

CID = "ab" * 32


def roundtrip(message):
    frame = protocol.encode_frame(message)
    return protocol.read_frame(io.BytesIO(frame))


class TestFraming:
    def test_roundtrip(self):
        message = protocol.Message(type=protocol.STATS, request_id=7,
                                   body=b"xyz")
        restored = roundtrip(message)
        assert restored == message

    def test_empty_body(self):
        assert roundtrip(protocol.Message(type=protocol.STATS,
                                          request_id=0)).body == b""

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_truncated_payload_raises(self):
        frame = protocol.encode_frame(
            protocol.Message(type=protocol.STATS, request_id=1, body=b"abc"))
        with pytest.raises(ProtocolError, match="mid frame"):
            protocol.read_frame(io.BytesIO(frame[:-6]))

    def test_corrupt_byte_fails_crc(self):
        frame = bytearray(protocol.encode_frame(
            protocol.Message(type=protocol.STATS, request_id=1,
                             body=b"abcdef")))
        frame[3] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC32"):
            protocol.read_frame(io.BytesIO(bytes(frame)))

    def test_version_mismatch_rejected(self):
        frame = protocol.encode_frame(
            protocol.Message(type=protocol.STATS, request_id=1, version=9))
        with pytest.raises(ProtocolError, match="version 9"):
            protocol.read_frame(io.BytesIO(frame))

    def test_oversized_frame_rejected_before_read(self):
        frame = protocol.encode_frame(
            protocol.Message(type=protocol.STATS, request_id=1,
                             body=b"x" * 100))
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_frame(io.BytesIO(frame), max_frame=10)

    def test_request_id_survives(self):
        assert roundtrip(protocol.Message(
            type=protocol.GET_META, request_id=123456789,
            body=bytes.fromhex(CID))).request_id == 123456789


class TestBodies:
    def test_put_roundtrip(self):
        assert protocol.parse_put(protocol.build_put(b"container")) == \
            b"container"

    def test_get_meta_roundtrip(self):
        assert protocol.parse_get_meta(protocol.build_get_meta(CID)) == CID

    def test_get_function_roundtrip(self):
        body = protocol.build_get_function(CID, 42)
        assert protocol.parse_get_function(body) == (CID, 42)

    def test_get_block_roundtrip(self):
        body = protocol.build_get_block(CID, 3, 10, 64)
        assert protocol.parse_get_block(body) == (CID, 3, 10, 64)

    def test_bad_container_id_rejected(self):
        with pytest.raises(ProtocolError, match="not hex"):
            protocol.build_get_meta("zz" * 32)
        with pytest.raises(ProtocolError, match="32 bytes"):
            protocol.build_get_meta("ab" * 4)

    def test_trailing_bytes_rejected(self):
        body = protocol.build_get_meta(CID) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            protocol.parse_get_meta(body)

    def test_truncated_body_raises_taxonomy_error(self):
        with pytest.raises(TruncatedStream):
            protocol.parse_get_function(protocol.build_get_meta(CID)[:10])

    def test_ok_put_roundtrip(self):
        body = protocol.build_ok_put(CID, 9, 2)
        assert protocol.parse_ok_put(body) == (CID, 9, 2)

    def test_ok_meta_roundtrip(self):
        body = protocol.build_ok_meta("prog", 1, ["main", "helper"], "brisc",
                                      codec_wire_id=2, container_version=3)
        assert protocol.parse_ok_meta(body) == \
            ("prog", 1, ["main", "helper"], "brisc", 2, 3)

    def test_ok_meta_default_codec_is_ssd(self):
        body = protocol.build_ok_meta("prog", 1, ["main"])
        assert protocol.parse_ok_meta(body)[3] == "ssd"

    def test_ok_meta_carries_wire_id_and_version(self):
        parsed = protocol.parse_ok_meta(protocol.build_ok_meta("p", 0, []))
        assert parsed[4] == 1 and parsed[5] == 2

    def test_ok_meta_no_functions(self):
        assert protocol.parse_ok_meta(protocol.build_ok_meta("p", 0, [])) == \
            ("p", 0, [], "ssd", 1, 2)

    def test_error_roundtrip(self):
        body = protocol.build_error(protocol.E_NOT_FOUND, "no such container")
        assert protocol.parse_error(body) == (protocol.E_NOT_FOUND,
                                              "no such container")

    def test_ok_stats_roundtrip(self):
        assert protocol.parse_ok_stats(
            protocol.build_ok_stats(b'{"a": 1}')) == b'{"a": 1}'

    def test_sync_state_roundtrip(self):
        entries = [("shard-0", "up", 1.0), ("shard-1", "draining", 0.5),
                   ("shard-2", "down", 2.25)]
        epoch, parsed = protocol.parse_sync_state(
            protocol.build_sync_state(17, entries))
        assert epoch == 17
        assert parsed == entries

    def test_ok_sync_roundtrip(self):
        entries = [("shard-0", "suspect", 1.0)]
        assert protocol.parse_ok_sync(
            protocol.build_ok_sync(0, entries)) == (0, entries)

    def test_sync_weight_survives_ppm_quantization(self):
        weight = 1.2345678   # below-ppm digits are rounded away
        _epoch, [(_sid, _state, parsed)] = protocol.parse_sync_state(
            protocol.build_sync_state(1, [("s", "up", weight)]))
        assert parsed == pytest.approx(weight, abs=1e-6)

    def test_sync_rejects_unknown_state(self):
        with pytest.raises(ProtocolError):
            protocol.build_sync_state(1, [("shard-0", "sideways", 1.0)])
        body = bytearray(protocol.build_sync_state(1, [("s", "up", 1.0)]))
        # layout: epoch(1) count(1) idlen(1) id(1) state(1) weight...
        body[4] = 9
        with pytest.raises(ProtocolError):
            protocol.parse_sync_state(bytes(body))

    def test_sync_rejects_zero_weight(self):
        with pytest.raises(ProtocolError):
            protocol.build_sync_state(1, [("shard-0", "up", 0.0)])


class TestInstructionTransport:
    @pytest.fixture()
    def program(self):
        return assemble(ASM)

    def test_function_roundtrip(self, program):
        function = program.functions[0]
        body = protocol.build_ok_function(0, function.name, function.insns)
        restored = protocol.parse_ok_function(body)
        assert restored.name == function.name
        assert restored.insns == function.insns

    def test_block_roundtrip_preserves_branch_targets(self, program):
        # Slices must encode with their true indices or pc-relative
        # targets shift; exercise a non-zero start.
        function = program.functions[0]
        insns = function.insns[1:3]
        body = protocol.build_ok_block(0, 1, len(function.insns), insns)
        findex, start, total, restored = protocol.parse_ok_block(body)
        assert (findex, start, total) == (0, 1, len(function.insns))
        assert restored == insns

    def test_slice_helpers_roundtrip(self, program):
        insns = program.functions[0].insns
        blob = protocol.encode_instruction_slice(insns, 0)
        assert protocol.decode_instruction_slice(blob, 0) == insns
