"""Tests for greedy vs optimal matching (repro.core.dictionary modes)."""

import pytest
from hypothesis import given, settings

from repro.core import build_dictionary, compress, decompress
from repro.core.dictionary import (
    BaseEntry,
    _greedy_segmentation,
    _optimal_segmentation,
)
from repro.isa import Instruction, Op, assemble

from .strategies import programs


def _bases(count):
    return [BaseEntry(key=(i,), instruction=Instruction(op=Op.NOP))
            for i in range(count)]


def _item_costs(bases):
    # Mirrors build_dictionary's optimal-mode cost table.
    return [2.0 + (entry.target_size or 0)
            if entry.has_target and not entry.target_in_entry else 2.0
            for entry in bases]


def _packed(counts, num_bases, max_len):
    """Pack tuple-keyed window counts into the kernels' integer keys."""
    key_bits = max(1, (num_bases - 1).bit_length())
    marks = [1 << (length * key_bits) for length in range(max_len + 1)]
    packed = {}
    for window, count in counts.items():
        key = 0
        for offset, base_id in enumerate(window):
            key |= base_id << (offset * key_bits)
        packed[key | marks[len(window)]] = count
    return packed, key_bits, marks


class TestSegmentationUnits:
    def test_greedy_takes_longest(self):
        ids = [0, 1, 2, 3]
        ends = [4, 4, 4, 4]
        counts, key_bits, marks = _packed({(0, 1, 2): 2, (0, 1): 5}, 4, 4)
        assert _greedy_segmentation(ids, ends, counts, 4,
                                    key_bits, marks) == [3, 1]

    def test_greedy_respects_block_ends(self):
        ids = [0, 1, 2, 3]
        ends = [2, 2, 4, 4]
        counts, key_bits, marks = _packed(
            {(0, 1): 2, (2, 3): 2, (0, 1, 2, 3): 9}, 4, 4)
        # The 4-window crosses a block boundary, so only the pairs match.
        assert _greedy_segmentation(ids, ends, counts, 4,
                                    key_bits, marks) == [2, 2]

    def test_optimal_beats_greedy_on_non_factor_closed_oracle(self):
        # (0,1) and (1,2,3,4) marked repeated, but no sub-window of the
        # latter — impossible for real occurrence counts (factor-closed),
        # but exactly the case where greedy loses.
        ids = [0, 1, 2, 3, 4]
        ends = [5] * 5
        counts, key_bits, marks = _packed({(0, 1): 2, (1, 2, 3, 4): 2}, 5, 4)
        greedy = _greedy_segmentation(ids, ends, counts, 4, key_bits, marks)
        optimal = _optimal_segmentation(ids, ends, counts, 4, key_bits, marks,
                                        _item_costs(_bases(5)))
        assert len(greedy) == 4
        assert optimal == [1, 4]

    def test_optimal_accounts_for_branch_target_bytes(self):
        # Entry 2 is a branch with a 4-byte target: a segmentation that
        # uses it as its own item pays 6 bytes either way, so the DP
        # still prefers fewer items.
        insn = Instruction(op=Op.JMP, target=0)
        bases = _bases(3)
        bases[2] = BaseEntry(key=(2,), instruction=insn, target_size=4)
        ids = [0, 1, 2]
        ends = [3, 3, 3]
        counts, key_bits, marks = _packed({(0, 1, 2): 2}, 3, 4)
        optimal = _optimal_segmentation(ids, ends, counts, 4, key_bits, marks,
                                        _item_costs(bases))
        assert optimal == [3]

    def test_segmentations_cover_input(self):
        ids = list(range(10))
        ends = [10] * 10
        counts, key_bits, marks = _packed({}, 10, 4)
        for mode in (_greedy_segmentation(ids, ends, counts, 4,
                                          key_bits, marks),
                     _optimal_segmentation(ids, ends, counts, 4,
                                           key_bits, marks,
                                           _item_costs(_bases(10)))):
            assert sum(mode) == 10


class TestMatchModes:
    SOURCE = """
func main
    li r1, 1
    li r2, 2
    li r3, 3
    li r1, 1
    li r2, 2
    li r3, 3
    ret
end
"""

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="match_mode"):
            build_dictionary(assemble(self.SOURCE), match_mode="psychic")

    def test_optimal_roundtrip(self):
        program = assemble(self.SOURCE)
        restored = decompress(compress(program, match_mode="optimal").data)
        assert [f.insns for f in restored.functions] == \
            [f.insns for f in program.functions]

    def test_greedy_matches_optimal_on_real_programs(self):
        # The factor-closure argument: real occurrence counts make greedy
        # optimal, so item counts agree.
        program = assemble(self.SOURCE)
        greedy = build_dictionary(program, match_mode="greedy")
        optimal = build_dictionary(program, match_mode="optimal")
        greedy_items = sum(len(refs) for refs in greedy.function_refs)
        optimal_items = sum(len(refs) for refs in optimal.function_refs)
        assert greedy_items == optimal_items


@given(programs(max_functions=3, max_function_size=30))
@settings(max_examples=25, deadline=None)
def test_property_optimal_never_worse_and_roundtrips(program):
    greedy = compress(program, match_mode="greedy")
    optimal = compress(program, match_mode="optimal")
    greedy_items = greedy.dictionary_stats["items"]
    optimal_items = optimal.dictionary_stats["items"]
    assert optimal_items <= greedy_items
    restored = decompress(optimal.data)
    assert [f.insns for f in restored.functions] == \
        [f.insns for f in program.functions]
