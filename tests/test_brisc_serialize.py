"""Tests for BRISC external-dictionary serialization."""

import pytest
from hypothesis import given, settings

from repro.brisc import (
    BriscDictionaryError,
    compress,
    decompress,
    deserialize_dictionary,
    serialize_dictionary,
    serialized_size,
    train,
)
from repro.isa import assemble

from .strategies import programs

TRAINING = """
func a
    li r1, 0
    addi r1, r1, 1
    lw r2, 0(r29)
    addi r1, r1, 1
    lw r2, 0(r29)
    sw r2, 4(r29)
    ret
end
"""


@pytest.fixture(scope="module")
def dictionary():
    return train([assemble(TRAINING)], budget=200)


class TestSerialization:
    def test_roundtrip(self, dictionary):
        blob = serialize_dictionary(dictionary)
        restored = deserialize_dictionary(blob)
        assert restored.patterns == dictionary.patterns
        assert restored.reg_ranks == dictionary.reg_ranks

    def test_restored_dictionary_decompresses(self, dictionary):
        program = assemble(TRAINING)
        compressed = compress(program, dictionary)
        restored_dict = deserialize_dictionary(serialize_dictionary(dictionary))
        result = decompress(compressed, restored_dict)
        assert [f.insns for f in result.functions] == \
            [f.insns for f in program.functions]

    def test_serialized_size_positive(self, dictionary):
        assert serialized_size(dictionary) == len(serialize_dictionary(dictionary))

    def test_bad_magic_rejected(self):
        with pytest.raises(BriscDictionaryError, match="magic"):
            deserialize_dictionary(b"NOPE" + b"\x00" * 40)

    def test_truncated_rejected(self, dictionary):
        blob = serialize_dictionary(dictionary)
        with pytest.raises((BriscDictionaryError, EOFError)):
            deserialize_dictionary(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self, dictionary):
        blob = serialize_dictionary(dictionary) + b"\x00"
        with pytest.raises(BriscDictionaryError, match="trailing"):
            deserialize_dictionary(blob)

    def test_bad_register_ranking_rejected(self, dictionary):
        blob = bytearray(serialize_dictionary(dictionary))
        blob[4] = blob[5]  # duplicate a rank entry
        with pytest.raises(BriscDictionaryError, match="permutation"):
            deserialize_dictionary(bytes(blob))

    def test_corruption_fails_cleanly(self, dictionary):
        import random

        blob = serialize_dictionary(dictionary)
        rng = random.Random(5)
        for _ in range(150):
            corrupted = bytearray(blob)
            corrupted[rng.randrange(len(corrupted))] ^= 0xFF
            try:
                deserialize_dictionary(bytes(corrupted))
            except (BriscDictionaryError, ValueError, EOFError):
                pass  # clean library errors only


@given(programs(max_functions=3, max_function_size=25))
@settings(max_examples=15, deadline=None)
def test_property_trained_dictionaries_roundtrip(program):
    dictionary = train([program], budget=150)
    restored = deserialize_dictionary(serialize_dictionary(dictionary))
    assert restored.patterns == dictionary.patterns
