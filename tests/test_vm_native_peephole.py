"""Tests for repro.vm.liveness, repro.vm.peephole and repro.vm.native."""

import pytest
from hypothesis import given, settings

from repro.isa import Function, Instruction, Op, assemble, validate_program
from repro.vm import (
    CALL_HOLE_SIZE,
    FusionKind,
    live_out,
    lower_function,
    lower_instruction,
    native_size,
    plan_function,
    rewritten_consumer,
    run_program,
    uses_defs,
)

from .strategies import programs


def _fn(text):
    return assemble(text).functions[0]


class TestLiveness:
    def test_uses_defs_alu(self):
        uses, defs = uses_defs(Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3))
        assert uses == {2, 3}
        assert defs == {1}

    def test_register_zero_excluded(self):
        uses, defs = uses_defs(Instruction(op=Op.ADD, rd=0, rs1=0, rs2=3))
        assert uses == {3}
        assert defs == set()

    def test_dead_temp_not_live(self):
        fn = _fn("""
func f
    li r5, 1
    add r2, r2, r5
    ret
end
""")
        lo = live_out(fn)
        assert 5 not in lo[1]  # r5 dead after its only use

    def test_live_across_branch(self):
        fn = _fn("""
func f
    li r5, 1
    beqz r2, skip
    add r2, r2, r5
skip:
    add r3, r3, r5
    ret
end
""")
        lo = live_out(fn)
        assert 5 in lo[1]  # r5 still needed on both paths
        assert 5 in lo[2]

    def test_loop_keeps_counter_live(self):
        fn = _fn("""
func f
    li r4, 10
loop:
    addi r4, r4, -1
    bnez r4, loop
    ret
end
""")
        lo = live_out(fn)
        assert 4 in lo[1]
        assert 4 in lo[2]  # live around the back edge

    def test_call_keeps_everything_live(self):
        fn = _fn("""
func f
    li r9, 7
    call f
    add r2, r2, r9
    ret
end
""")
        lo = live_out(fn)
        assert 9 in lo[0]

    def test_empty_function(self):
        assert live_out(Function(name="f", insns=[])) == []


class TestPeephole:
    def test_cmp_fuse_found(self):
        fn = _fn("""
func f
    slt r5, r2, r3
    bnez r5, out
    addi r2, r2, 1
out:
    ret
end
""")
        plan = plan_function(fn)
        assert len(plan.fusions) == 1
        assert plan.fusions[0].kind is FusionKind.CMP_BRANCH

    def test_cmp_fuse_blocked_by_live_temp(self):
        fn = _fn("""
func f
    slt r5, r2, r3
    bnez r5, out
    addi r2, r2, 1
out:
    add r2, r2, r5
    ret
end
""")
        assert plan_function(fn).fusions == []

    def test_addr_fold_found(self):
        fn = _fn("""
func f
    addi r5, r29, 16
    lw r2, 4(r5)
    ret
end
""")
        plan = plan_function(fn)
        assert len(plan.fusions) == 1
        assert plan.fusions[0].kind is FusionKind.ADDR_FOLD

    def test_addr_fold_blocked_when_store_value_is_temp(self):
        fn = _fn("""
func f
    addi r5, r29, 16
    sw r5, 4(r5)
    ret
end
""")
        assert plan_function(fn).fusions == []

    def test_li_fold_found(self):
        fn = _fn("""
func f
    li r5, 40
    add r2, r2, r5
    ret
end
""")
        plan = plan_function(fn)
        assert plan.fusions[0].kind is FusionKind.LI_FOLD

    def test_li_fold_commutative_rs1(self):
        fn = _fn("""
func f
    li r5, 40
    add r2, r5, r3
    ret
end
""")
        assert plan_function(fn).fusions[0].kind is FusionKind.LI_FOLD

    def test_mov_fold_found(self):
        fn = _fn("""
func f
    mov r5, r2
    add r3, r5, r4
    ret
end
""")
        assert plan_function(fn).fusions[0].kind is FusionKind.MOV_FOLD

    def test_no_fusion_across_block_boundary(self):
        fn = _fn("""
func f
    li r5, 40
target:
    add r2, r2, r5
    bnez r2, target
    ret
end
""")
        # 'target:' is a leader; li and add are in different blocks.
        assert plan_function(fn).fusions == []

    def test_fusion_chains_do_not_overlap(self):
        fn = _fn("""
func f
    mov r5, r2
    mov r6, r5
    add r3, r6, r6
    ret
end
""")
        plan = plan_function(fn)
        # Each instruction participates in at most one fusion.
        seen = set()
        for fusion in plan.fusions:
            assert fusion.producer not in seen
            assert fusion.consumer not in seen
            seen.update((fusion.producer, fusion.consumer))


class TestRewrittenConsumer:
    def test_cmp_fuse_slt_bnez_is_blt(self):
        producer = Instruction(op=Op.SLT, rd=5, rs1=2, rs2=3)
        consumer = Instruction(op=Op.BNEZ, rs1=5, target=9)
        merged = rewritten_consumer(producer, consumer, FusionKind.CMP_BRANCH)
        assert merged.op is Op.BLT
        assert (merged.rs1, merged.rs2, merged.target) == (2, 3, 9)

    def test_cmp_fuse_slt_beqz_is_bge(self):
        producer = Instruction(op=Op.SLT, rd=5, rs1=2, rs2=3)
        consumer = Instruction(op=Op.BEQZ, rs1=5, target=9)
        assert rewritten_consumer(producer, consumer, FusionKind.CMP_BRANCH).op is Op.BGE

    def test_addr_fold_sums_offsets(self):
        producer = Instruction(op=Op.ADDI, rd=5, rs1=29, imm=16)
        consumer = Instruction(op=Op.LW, rd=2, rs1=5, imm=4)
        merged = rewritten_consumer(producer, consumer, FusionKind.ADDR_FOLD)
        assert (merged.rs1, merged.imm) == (29, 20)

    def test_li_fold_uses_imm_form(self):
        producer = Instruction(op=Op.LI, rd=5, imm=40)
        consumer = Instruction(op=Op.ADD, rd=2, rs1=2, rs2=5)
        merged = rewritten_consumer(producer, consumer, FusionKind.LI_FOLD)
        assert merged.op is Op.ADDI
        assert merged.imm == 40

    def test_mov_fold_renames(self):
        producer = Instruction(op=Op.MOV, rd=5, rs1=2)
        consumer = Instruction(op=Op.ADD, rd=3, rs1=5, rs2=5)
        merged = rewritten_consumer(producer, consumer, FusionKind.MOV_FOLD)
        assert (merged.rs1, merged.rs2) == (2, 2)


class TestNativeLowering:
    def test_branch_has_hole_at_end(self):
        chunk = lower_instruction(Instruction(op=Op.BNE, rs1=1, rs2=2, target=0), 1)
        assert chunk.is_branch
        assert chunk.hole_size == 1
        assert chunk.data[chunk.hole_offset:] == b"\x00"

    def test_wider_target_wider_hole(self):
        short = lower_instruction(Instruction(op=Op.JMP, target=0), 1)
        wide = lower_instruction(Instruction(op=Op.JMP, target=0), 4)
        assert wide.hole_size == 4
        assert wide.size > short.size

    def test_branch_requires_target_size(self):
        with pytest.raises(ValueError):
            lower_instruction(Instruction(op=Op.JMP, target=0))

    def test_call_hole_is_rel32(self):
        chunk = lower_instruction(Instruction(op=Op.CALL, target=3))
        assert chunk.is_call
        assert chunk.hole_size == CALL_HOLE_SIZE

    def test_two_address_penalty(self):
        same = lower_instruction(Instruction(op=Op.ADD, rd=1, rs1=1, rs2=2))
        diff = lower_instruction(Instruction(op=Op.ADD, rd=3, rs1=1, rs2=2))
        assert diff.size > same.size
        assert diff.cycles > same.cycles

    def test_wide_immediate_costs_bytes(self):
        small = lower_instruction(Instruction(op=Op.LI, rd=1, imm=5))
        wide = lower_instruction(Instruction(op=Op.LI, rd=1, imm=1 << 20))
        assert wide.size > small.size

    def test_div_is_expensive(self):
        div = lower_instruction(Instruction(op=Op.DIVS, rd=1, rs1=1, rs2=2))
        add = lower_instruction(Instruction(op=Op.ADD, rd=1, rs1=1, rs2=2))
        assert div.cycles > 5 * add.cycles

    def test_ret_is_one_byte(self):
        assert lower_instruction(Instruction(op=Op.RET)).size == 1


class TestLowerFunction:
    def test_chunks_parallel_to_insns(self):
        fn = _fn("""
func f
    li r1, 5
    addi r1, r1, 1
    ret
end
""")
        lowered = lower_function(fn)
        assert len(lowered.chunks) == len(fn.insns)
        assert lowered.size == sum(c.size for c in lowered.chunks)

    def test_optimized_never_larger(self):
        fn = _fn("""
func f
    li r5, 40
    add r2, r2, r5
    slt r6, r2, r3
    bnez r6, out
    addi r7, r29, 8
    lw r2, 0(r7)
out:
    ret
end
""")
        plain = lower_function(fn, optimize=False)
        optimized = lower_function(fn, optimize=True)
        assert optimized.size < plain.size

    def test_absorbed_chunks_are_empty(self):
        fn = _fn("""
func f
    li r5, 40
    add r2, r2, r5
    ret
end
""")
        lowered = lower_function(fn, optimize=True)
        assert lowered.chunks[0].size == 0
        assert lowered.chunks[0].cycles == 0.0

    def test_byte_offsets_monotone(self):
        fn = _fn("""
func f
    li r1, 5
    addi r1, r1, 1
    ret
end
""")
        offsets = lower_function(fn).byte_offsets()
        assert offsets == sorted(offsets)

    def test_native_size_positive(self):
        program = assemble("func main\n    li r1, 1\n    ret\nend\n")
        assert native_size(program) > 0
        assert native_size(program, optimize=False) >= native_size(program, optimize=True)


class TestFusionSemantics:
    """Fused programs must behave exactly like the originals."""

    CASES = [
        """
func main
    li r2, 9
    li r3, 12
    slt r5, r2, r3
    bnez r5, less
    li r1, 0
    trap 1
    ret
less:
    li r1, 1
    trap 1
    ret
end
""",
        """
func main
    li r2, 64
    li r1, 321
    sw r1, 8(r2)
    addi r5, r2, 8
    lw r1, 0(r5)
    trap 1
    ret
end
""",
        """
func main
    li r2, 5
    li r5, 40
    add r2, r2, r5
    mov r1, r2
    trap 1
    ret
end
""",
        """
func main
    li r2, 5
    mov r5, r2
    add r1, r5, r5
    trap 1
    ret
end
""",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_rewritten_program_equivalent(self, source):
        program = assemble(source)
        baseline = run_program(program).output

        # Apply every planned fusion by rewriting the instruction list:
        # producer becomes nop, consumer becomes the merged instruction.
        rewritten_functions = []
        from repro.isa import Function, Program

        for fn in program.functions:
            plan = plan_function(fn)
            insns = list(fn.insns)
            for fusion in plan.fusions:
                merged = rewritten_consumer(insns[fusion.producer],
                                            insns[fusion.consumer], fusion.kind)
                insns[fusion.producer] = Instruction(op=Op.NOP)
                insns[fusion.consumer] = merged
            rewritten_functions.append(Function(name=fn.name, insns=insns))
            assert plan.fusions, f"expected a fusion in {source}"
        rewritten = Program(name="rw", functions=rewritten_functions,
                            entry=program.entry)
        validate_program(rewritten)
        assert run_program(rewritten).output == baseline


@given(programs(max_functions=4, max_function_size=25))
@settings(max_examples=40)
def test_property_lowering_covers_all_instructions(program):
    for fn in program.functions:
        lowered = lower_function(fn, optimize=False)
        assert len(lowered.chunks) == len(fn.insns)
        for chunk in lowered.chunks:
            assert chunk.size > 0


@given(programs(max_functions=4, max_function_size=25))
@settings(max_examples=40)
def test_property_optimized_size_never_exceeds_plain(program):
    for fn in program.functions:
        assert lower_function(fn, optimize=True).size <= lower_function(fn).size
