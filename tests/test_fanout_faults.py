"""Fanout degradation: broken pools retry, then fall back to serial."""

import pytest

from repro.faults import crashing_worker, hanging_worker
from repro.perf import parallel
from repro.perf.parallel import FanoutOutcome, fanout


def _double(task):
    return task * 2


class TestHealthyPaths:
    def test_serial_path_records_outcome(self):
        assert fanout(_double, [1, 2, 3], jobs=1) == [2, 4, 6]
        assert parallel.LAST_OUTCOME.mode == "serial"
        assert parallel.LAST_OUTCOME.attempts == 0

    def test_parallel_path_records_outcome(self):
        assert fanout(_double, list(range(8)), jobs=2) == \
            [v * 2 for v in range(8)]
        assert parallel.LAST_OUTCOME.mode == "parallel"
        assert parallel.LAST_OUTCOME.attempts == 1
        assert parallel.LAST_OUTCOME.failures == []


class TestCrashFallback:
    def test_worker_crash_falls_back_to_serial(self):
        # crashing_worker hard-exits only inside pool workers, so the
        # serial fallback in this process computes the real answer.
        assert fanout(crashing_worker, [1, 2, 3], jobs=2) == [2, 4, 6]
        outcome = parallel.LAST_OUTCOME
        assert outcome.mode == "serial-fallback"
        assert outcome.attempts == 2  # initial + one retry (default)
        assert all("BrokenProcessPool" in failure
                   for failure in outcome.failures)

    def test_retries_zero_goes_straight_to_serial(self):
        assert fanout(crashing_worker, [5, 6], jobs=2, retries=0) == [10, 12]
        assert parallel.LAST_OUTCOME.attempts == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            fanout(_double, [1], jobs=2, retries=-1)


class TestTimeoutFallback:
    def test_hanging_worker_times_out_to_serial(self):
        assert fanout(hanging_worker, [1, 2], jobs=2,
                      timeout=1.0, retries=0) == [2, 4]
        outcome = parallel.LAST_OUTCOME
        assert outcome.mode == "serial-fallback"
        assert any("Timeout" in failure for failure in outcome.failures)


class TestWorkerExceptionsPropagate:
    def test_worker_valueerror_not_swallowed(self):
        # Application errors are not pool failures: no retry, no
        # fallback — the exception propagates as in serial mode.
        def boom(task):
            raise ValueError(f"bad task {task}")

        with pytest.raises(ValueError, match="bad task"):
            fanout(boom, [1, 2], jobs=1)


class TestOutcomeRecord:
    def test_outcome_dataclass_defaults(self):
        outcome = FanoutOutcome(mode="parallel")
        assert outcome.attempts == 0 and outcome.failures == []
