"""Tests for the adaptive arithmetic coder (repro.lz.arith)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lz.arith import FenwickTable, compress, decompress


class TestFenwickTable:
    def test_starts_uniform(self):
        table = FenwickTable()
        assert table.total == 257
        assert table.frequency(0) == 1
        assert table.cumulative(10) == 10

    def test_add_updates_total_and_prefix(self):
        table = FenwickTable()
        table.add(5, 10)
        assert table.total == 267
        assert table.frequency(5) == 11
        assert table.cumulative(6) == 16
        assert table.cumulative(5) == 5

    def test_locate_matches_cumulative(self):
        table = FenwickTable()
        table.add(3, 7)
        for symbol in (0, 3, 100, 256):
            low = table.cumulative(symbol)
            found, found_low, frequency = table.locate(low)
            assert found == symbol
            assert found_low == low
            assert frequency == table.frequency(symbol)

    def test_locate_mid_range(self):
        table = FenwickTable()
        table.add(7, 9)  # freq(7) = 10, covering [7, 17)
        for scaled in range(7, 17):
            symbol, low, frequency = table.locate(scaled)
            assert symbol == 7
            assert low == 7
            assert frequency == 10

    def test_locate_out_of_range_rejected(self):
        table = FenwickTable()
        with pytest.raises(ValueError):
            table.locate(table.total)

    def test_halve_preserves_order_of_magnitude(self):
        table = FenwickTable()
        table.add(9, 100)
        table.halve()
        assert table.frequency(9) > table.frequency(8)
        assert table.frequency(0) >= 1
        assert table.total == sum(table.frequency(s) for s in range(257))


class TestArithmeticCodec:
    @pytest.mark.parametrize("data", [
        b"", b"x", b"aaaa" * 100, b"the quick brown fox " * 30,
        bytes(range(256)),
    ])
    def test_roundtrip(self, data):
        assert decompress(compress(data)) == data

    def test_repetitive_text_compresses_well(self):
        data = b"program compression " * 200
        assert len(compress(data)) < len(data) // 6

    def test_order1_beats_uniform_on_structured_data(self):
        # Alternating structure is exactly what an order-1 model captures.
        data = bytes([1, 2] * 2000)
        assert len(compress(data)) < 120

    def test_corrupt_stream_detected(self):
        data = compress(b"hello world, this is a longer message" * 5)
        corrupted = bytearray(data)
        corrupted[len(corrupted) // 2] ^= 0xFF
        with pytest.raises(ValueError):
            decompress(bytes(corrupted))

    def test_vm_bytecode_compresses(self):
        from repro.isa import assemble
        from repro.isa.encoding import encode_program

        source = ["func main"]
        for i in range(200):
            source.append(f"    addi r1, r1, {i % 7}")
            source.append("    lw r2, 4(r29)")
        source += ["    ret", "end"]
        data = encode_program(assemble("\n".join(source)))
        compressed = compress(data)
        assert len(compressed) < len(data) // 2
        assert decompress(compressed) == data


@given(st.binary(max_size=1500))
@settings(max_examples=40, deadline=None)
def test_property_arith_roundtrip(data):
    assert decompress(compress(data)) == data


@given(st.binary(min_size=64, max_size=400))
@settings(max_examples=15, deadline=None)
def test_property_repetition_compresses(chunk):
    data = chunk * 16
    compressed = compress(data)
    assert len(compressed) < len(data)
    assert decompress(compressed) == data
