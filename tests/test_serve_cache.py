"""Tests for the byte-budgeted shared LRU cache (repro.serve.cache)."""

import threading

import pytest

from repro.serve import SharedLRUCache


class TestBudget:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            SharedLRUCache(0)

    def test_put_get(self):
        cache = SharedLRUCache(100)
        assert cache.put("a", "va", 10)
        assert cache.get("a") == "va"

    def test_miss_returns_none(self):
        assert SharedLRUCache(100).get("nope") is None

    def test_evicts_lru_first(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3, 40)   # over budget -> evict b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_eviction_respects_sizes(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 60)
        cache.put("b", 2, 60)   # evicts a
        assert cache.get("a") is None
        assert cache.current_bytes == 60

    def test_oversize_entry_rejected_not_cycled(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 50)
        assert not cache.put("big", 2, 101)
        assert cache.get("a") == 1          # nothing was evicted for it
        assert cache.stats().oversize_rejects == 1

    def test_replacing_entry_releases_old_bytes(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 80)
        cache.put("a", 2, 10)
        assert cache.current_bytes == 10
        assert cache.get("a") == 2

    def test_invalidate(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 10)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.current_bytes == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SharedLRUCache(100).put("a", 1, -1)


class TestStats:
    def test_counters(self):
        cache = SharedLRUCache(100)
        cache.put("a", 1, 60)
        cache.put("b", 2, 60)       # evicts a
        cache.get("b")
        cache.get("a")              # miss
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.inserts == 2
        assert stats.entry_count == 1
        assert stats.current_bytes == 60
        assert stats.hit_rate == pytest.approx(0.5)

    def test_as_dict_is_json_shaped(self):
        d = SharedLRUCache(64).stats().as_dict()
        assert set(d) == {"hits", "misses", "evictions", "inserts",
                          "oversize_rejects", "current_bytes", "entry_count",
                          "budget_bytes", "hit_rate"}


class TestThreadSafety:
    def test_hammer_from_many_threads(self):
        cache = SharedLRUCache(10_000)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = (tid, i % 7)
                    cache.put(key, i, 100)
                    cache.get(key)
                    cache.get((tid + 1, i % 7))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.current_bytes <= 10_000
        assert stats.current_bytes == stats.entry_count * 100
