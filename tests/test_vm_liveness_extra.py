"""Additional liveness and peephole edge-case tests."""

from repro.isa import Function, Instruction, Op, assemble
from repro.vm import live_out, plan_function, uses_defs
from repro.vm.liveness import CALLEE_SAVED, RET_USES


def _fn(text):
    return assemble(text).functions[0]


class TestConventionSets:
    def test_callee_saved_range(self):
        assert set(range(16, 29)) <= CALLEE_SAVED
        assert 29 in CALLEE_SAVED  # sp
        assert 30 in CALLEE_SAVED  # fp

    def test_ret_publishes_return_value(self):
        assert 1 in RET_USES

    def test_temps_not_in_ret_uses(self):
        for temp in range(9, 16):
            assert temp not in RET_USES


class TestJrConservatism:
    def test_jr_keeps_everything_live(self):
        # With a computed jump, any block may follow any other; the temp
        # set before the jr must stay live (no fusion may kill it).
        fn = _fn("""
func f
    li r5, 3
    jr r5
    add r2, r2, r5
    ret
end
""")
        lo = live_out(fn)
        assert 5 in lo[0]

    def test_jr_function_gets_no_unsafe_fusions(self):
        fn = _fn("""
func f
    li r5, 3
    jr r5
    add r2, r2, r5
    ret
end
""")
        plan = plan_function(fn)
        assert all(fn.insns[f.producer].rd != 5 or f.kind.name == ""
                   for f in plan.fusions) or plan.fusions == []


class TestUsesDefs:
    def test_trap_touches_r1(self):
        uses, defs = uses_defs(Instruction(op=Op.TRAP, imm=1))
        assert 1 in uses
        assert 1 in defs

    def test_call_defines_rv_and_ra(self):
        _, defs = uses_defs(Instruction(op=Op.CALL, target=0))
        assert 1 in defs
        assert 31 in defs

    def test_store_uses_both_registers(self):
        uses, defs = uses_defs(Instruction(op=Op.SW, rs1=29, rs2=3, imm=0))
        assert uses == {29, 3}
        assert defs == set()

    def test_load_defines_rd(self):
        uses, defs = uses_defs(Instruction(op=Op.LW, rd=4, rs1=29, imm=0))
        assert uses == {29}
        assert defs == {4}


class TestPeepholeEdges:
    def test_addr_fold_overflow_guard(self):
        # Folded displacement exceeding i32 must not fuse.
        fn = Function(name="f", insns=[
            Instruction(op=Op.ADDI, rd=5, rs1=29, imm=2**31 - 1),
            Instruction(op=Op.LW, rd=2, rs1=5, imm=100),
            Instruction(op=Op.RET),
        ])
        plan = plan_function(fn)
        assert not any(f.kind.name == "ADDR_FOLD" for f in plan.fusions)

    def test_li_fold_skips_ops_without_imm_form(self):
        fn = _fn("""
func f
    li r5, 9
    divs r2, r2, r5
    ret
end
""")
        plan = plan_function(fn)
        assert not any(f.kind.name == "LI_FOLD" for f in plan.fusions)

    def test_no_fusion_when_producer_writes_zero_register(self):
        fn = Function(name="f", insns=[
            Instruction(op=Op.LI, rd=0, imm=9),
            Instruction(op=Op.ADD, rd=2, rs1=2, rs2=0),
            Instruction(op=Op.RET),
        ])
        assert plan_function(fn).fusions == []

    def test_empty_function_plan(self):
        assert plan_function(Function(name="f", insns=[])).fusions == []
