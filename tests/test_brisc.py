"""Tests for the BRISC baseline (patterns, codec, comparison properties)."""

import pytest
from hypothesis import given, settings

from repro.brisc import (
    BriscError,
    Pattern,
    compress,
    decompress,
    train,
)
from repro.brisc.codec import compress_function, decompress_function
from repro.isa import Instruction, Op, assemble
from repro.vm import native_size, run_program

from .strategies import programs

TRAINING = """
func a
    li r1, 0
    addi r1, r1, 1
    lw r2, 0(r29)
    addi r1, r1, 1
    lw r2, 0(r29)
    addi r1, r1, 1
    lw r2, 0(r29)
    addi r1, r1, 1
    lw r2, 0(r29)
    sw r2, 4(r29)
    ret
end
func b
    li r1, 0
    addi r1, r1, 1
    lw r2, 0(r29)
    addi r1, r1, 1
    sw r2, 4(r29)
    ret
end
"""


@pytest.fixture(scope="module")
def dictionary():
    return train([assemble(TRAINING)], budget=300)


class TestPattern:
    def test_pattern_length_validated(self):
        with pytest.raises(ValueError):
            Pattern(ops=(Op.NOP, Op.NOP, Op.NOP), pins=((), (), ()))

    def test_parallel_pins_validated(self):
        with pytest.raises(ValueError):
            Pattern(ops=(Op.NOP,), pins=((), ()))

    def test_open_fields_excludes_pins(self):
        pattern = Pattern(ops=(Op.ADDI,), pins=((("imm", 1),),))
        assert pattern.open_fields(0) == ["rd", "rs1"]

    def test_matches_checks_pins(self):
        pattern = Pattern(ops=(Op.ADDI,), pins=((("imm", 1),),))
        hit = [Instruction(op=Op.ADDI, rd=1, rs1=1, imm=1)]
        miss = [Instruction(op=Op.ADDI, rd=1, rs1=1, imm=2)]
        assert pattern.matches(hit, 0)
        assert not pattern.matches(miss, 0)

    def test_pair_pattern_needs_both(self):
        pattern = Pattern(ops=(Op.LI, Op.ADDI), pins=((), ()))
        insns = [Instruction(op=Op.LI, rd=1, imm=0),
                 Instruction(op=Op.ADDI, rd=1, rs1=1, imm=1)]
        assert pattern.matches(insns, 0)
        assert not pattern.matches(insns, 1)  # out of range


class TestTraining:
    def test_every_opcode_covered(self, dictionary):
        ops_with_bare = {p.ops[0] for p in dictionary.patterns
                         if p.length == 1 and p.pins == ((),)}
        assert ops_with_bare == set(Op)

    def test_budget_respected(self):
        d = train([assemble(TRAINING)], budget=100)
        assert len(d) <= 100

    def test_hot_pattern_gets_small_code(self, dictionary):
        # addi r1, r1, 1 appears 3 times: some specialized pattern for
        # ADDI should be in the dictionary beyond the bare one.
        specialized = [p for p in dictionary.patterns
                       if p.ops == (Op.ADDI,) and p.pins != ((),)]
        assert specialized

    def test_pairs_are_unpinned(self, dictionary):
        for pattern in dictionary.patterns:
            if pattern.length == 2:
                assert pattern.pins == ((), ())

    def test_register_ranking_total(self, dictionary):
        assert sorted(dictionary.reg_ranks.values()) == list(range(32))

    def test_external_dictionary_size_reported(self, dictionary):
        assert dictionary.size_bytes() > 0


class TestCodec:
    def test_function_roundtrip(self, dictionary):
        program = assemble(TRAINING)
        for fn in program.functions:
            blob = compress_function(fn, dictionary)
            assert decompress_function(blob, fn.name, dictionary).insns == fn.insns

    def test_program_roundtrip(self, dictionary):
        program = assemble(TRAINING)
        restored = decompress(compress(program, dictionary), dictionary)
        assert [f.insns for f in restored.functions] == [f.insns for f in program.functions]

    def test_behaviour_preserved(self, dictionary):
        program = assemble("""
func main
    li r2, 5
    li r1, 0
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bnez r2, loop
    trap 1
    ret
end
""")
        restored = decompress(compress(program, dictionary), dictionary)
        assert run_program(restored).output == run_program(program).output

    def test_unseen_instructions_escape(self, dictionary):
        # trap/div never appear in the training text; they still encode.
        program = assemble("""
func main
    divs r3, r1, r2
    trap 1
    ret
end
""")
        restored = decompress(compress(program, dictionary), dictionary)
        assert [f.insns for f in restored.functions] == [f.insns for f in program.functions]

    def test_bad_pattern_code_rejected(self, dictionary):
        from repro.lz.varint import ByteWriter

        w = ByteWriter()
        w.write_uvarint(1)
        w.write_u8(0xF0 | 14)  # two-byte code way past the dictionary
        w.write_u8(200)
        with pytest.raises(BriscError, match="not in dictionary"):
            decompress_function(w.getvalue(), "f", dictionary)

    def test_compressed_size_excludes_external_dictionary(self, dictionary):
        program = assemble(TRAINING)
        compressed = compress(program, dictionary)
        assert compressed.size == sum(len(b) for b in compressed.function_blobs)


class TestComparative:
    def test_brisc_compresses_redundant_code(self, dictionary):
        # Training-corpus-like code should compress below native size.
        program = assemble(TRAINING)
        assert compress(program, dictionary).size < native_size(program)


@given(programs(max_functions=3, max_function_size=20))
@settings(max_examples=25, deadline=None)
def test_property_brisc_roundtrip_any_program(program):
    # An arbitrary program must roundtrip even when the dictionary was
    # trained on something completely different (escapes cover the rest).
    dictionary = train([assemble(TRAINING)], budget=200)
    restored = decompress(compress(program, dictionary), dictionary)
    assert [f.insns for f in restored.functions] == [f.insns for f in program.functions]
