"""Chaos harness tests (repro.faults.chaos): the sweep itself is the
assertion — above quorum zero client-visible failures, below quorum a
clean ``E_UNAVAILABLE``, full recovery after restart.

The full-length sweep runs nightly in CI; here a short sweep keeps the
suite honest without dominating its wall clock.
"""

import pytest

from repro.faults import CHAOS_KINDS, ChaosEvent, chaos_sweep


class TestChaosSweep:
    def test_short_sweep_is_clean(self):
        report = chaos_sweep(seed=7, clients=4, duration=1.5,
                             hang_seconds=0.5)
        assert report.ok, report.summary()
        assert report.failures == []
        assert report.below_quorum_clean
        assert report.recovered
        assert report.requests_total > 0

    def test_delta_phase_survives_partial_bases(self):
        # GET_DELTA through the router with the base held by exactly one
        # of the target's replicas: the E_NO_BASE answers must be
        # treated as failover, the patch applied and verified, and an
        # unknown base must degrade to a verified full transfer.
        report = chaos_sweep(seed=11, clients=2, duration=1.0,
                             hang_seconds=0.3)
        assert report.ok, report.summary()
        assert report.delta_clean is True
        assert any(event.kind == "delta" for event in report.events)

    def test_every_fault_kind_is_scheduled(self):
        report = chaos_sweep(seed=3, clients=2, duration=1.0,
                             hang_seconds=0.3)
        assert report.ok, report.summary()
        kinds = {event.kind for event in report.events}
        assert set(CHAOS_KINDS) <= kinds

    def test_schedule_is_seed_deterministic(self):
        a = chaos_sweep(seed=5, clients=2, duration=1.0, hang_seconds=0.3)
        b = chaos_sweep(seed=5, clients=2, duration=1.0, hang_seconds=0.3)
        assert [(e.kind, e.shard_id) for e in a.events
                if e.kind in CHAOS_KINDS] == \
            [(e.kind, e.shard_id) for e in b.events
             if e.kind in CHAOS_KINDS]

    def test_summary_mentions_verdict_and_load(self):
        report = chaos_sweep(seed=1, clients=2, duration=1.0,
                             hang_seconds=0.3)
        summary = report.summary()
        assert ("PASS" in summary) == report.ok
        assert str(report.requests_total) in summary

    def test_event_records_are_frozen(self):
        event = ChaosEvent(at=0.0, kind="kill", shard_id="shard-0",
                           detail="")
        with pytest.raises(AttributeError):
            event.kind = "drain"
