"""Client-side resilience tests (repro.serve.client): per-op deadlines,
retry with exponential backoff + full jitter, reconnect-and-resume.

A scripted TCP server plays exact server behaviours (E_BUSY then OK,
abrupt close, non-retryable errors) so every retry decision is
deterministic; the RemoteProgram resume test runs against a real server
and cuts the connection between function pages.
"""

import socket
import threading
from collections import deque

import pytest

from repro.core import compress
from repro.errors import ProtocolError, RemoteError, UnavailableError
from repro.isa import assemble
from repro.serve import (
    NO_RETRY,
    OpDeadlines,
    RemoteProgram,
    RetryPolicy,
    ServeClient,
    serve_in_thread,
)
from repro.serve import protocol

ASM = """
func main
    li r2, 4
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


class ScriptedServer:
    """Answers each incoming frame according to a fixed script.

    Script entries:
      ("error", code)  -> ERROR frame with that code
      ("ok",)          -> a well-formed OK for STATS/HEALTH requests
      ("close",)       -> close the connection without answering
    When the script is exhausted, every request gets ("ok",).
    """

    def __init__(self, script):
        self.script = deque(script)
        self.requests_served = 0
        self.connections = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _respond(self, message):
        if message.type == protocol.STATS:
            return protocol.Message(type=protocol.OK_STATS,
                                    request_id=message.request_id,
                                    body=protocol.build_ok_stats(b"{}"))
        if message.type == protocol.HEALTH:
            return protocol.Message(
                type=protocol.OK_HEALTH, request_id=message.request_id,
                body=protocol.build_ok_health(protocol.HEALTH_OK, 0, 0))
        return protocol.Message(
            type=protocol.ERROR, request_id=message.request_id,
            body=protocol.build_error(protocol.E_BAD_REQUEST,
                                      "scripted server only speaks "
                                      "STATS/HEALTH"))

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            with conn:
                stream = conn.makefile("rwb")
                while not self._stop.is_set():
                    try:
                        message = protocol.read_frame(stream)
                    except (ProtocolError, OSError):
                        break
                    if message is None:
                        break
                    self.requests_served += 1
                    step = self.script.popleft() if self.script else ("ok",)
                    if step[0] == "close":
                        break
                    if step[0] == "error":
                        response = protocol.Message(
                            type=protocol.ERROR,
                            request_id=message.request_id,
                            body=protocol.build_error(step[1], "scripted"))
                    else:
                        response = self._respond(message)
                    try:
                        stream.write(protocol.encode_frame(response))
                        stream.flush()
                    except OSError:
                        break

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(2.0)


@pytest.fixture()
def scripted():
    servers = []

    def factory(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def fast_policy(retries=3, seed=7):
    return RetryPolicy(retries=retries, base_delay=0.001, max_delay=0.01,
                       seed=seed)


class TestRetryPolicy:
    def test_delay_respects_full_jitter_bounds(self):
        import random
        policy = RetryPolicy(retries=5, base_delay=0.1, max_delay=1.0)
        rng = random.Random(42)
        for attempt in range(8):
            ceiling = min(1.0, 0.1 * (2 ** attempt))
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= ceiling

    def test_seeded_delays_are_deterministic(self):
        import random
        policy = RetryPolicy(retries=3, seed=123)
        a = [policy.delay(i, random.Random(123)) for i in range(4)]
        b = [policy.delay(i, random.Random(123)) for i in range(4)]
        assert a == b

    def test_retry_codes_default(self):
        policy = RetryPolicy()
        assert policy.should_retry_code(protocol.E_BUSY)
        assert policy.should_retry_code(protocol.E_TIMEOUT)
        assert policy.should_retry_code(protocol.E_UNAVAILABLE)
        assert not policy.should_retry_code(protocol.E_NOT_FOUND)
        assert not policy.should_retry_code(protocol.E_CORRUPT)

    def test_no_retry_is_zero(self):
        assert NO_RETRY.retries == 0


class TestOpDeadlines:
    def test_per_op_values_differ(self):
        deadlines = OpDeadlines()
        assert deadlines.for_op("put") > deadlines.for_op("meta")
        assert deadlines.for_op("health") < deadlines.for_op("function")

    def test_uniform_overrides_all_but_health(self):
        deadlines = OpDeadlines.uniform(60.0)
        assert deadlines.for_op("put") == 60.0
        assert deadlines.for_op("function") == 60.0
        assert deadlines.for_op("health") <= 2.0   # probes stay snappy

    def test_unknown_op_rejected(self):
        with pytest.raises((KeyError, AttributeError, ValueError)):
            OpDeadlines().for_op("no-such-op")


class TestScriptedRetries:
    def test_busy_then_ok_is_retried(self, scripted):
        server = scripted([("error", protocol.E_BUSY), ("ok",)])
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy()) as client:
            assert client.stats() == {}
            assert client.retry_count == 1

    def test_no_retries_surfaces_busy(self, scripted):
        server = scripted([("error", protocol.E_BUSY)])
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.stats()
            assert excinfo.value.code == protocol.E_BUSY

    def test_non_retryable_code_not_retried(self, scripted):
        server = scripted([("error", protocol.E_NOT_FOUND), ("ok",)])
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy()) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.stats()
            assert excinfo.value.code == protocol.E_NOT_FOUND
            assert client.retry_count == 0

    def test_connection_drop_reconnects_and_succeeds(self, scripted):
        server = scripted([("close",), ("ok",)])
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy()) as client:
            assert client.stats() == {}
            assert client.reconnect_count == 1
            assert server.connections == 2

    def test_exhaustion_raises_unavailable_with_attempts(self, scripted):
        script = [("error", protocol.E_BUSY)] * 10
        server = scripted(script)
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy(retries=2)) as client:
            with pytest.raises((UnavailableError, RemoteError)) as excinfo:
                client.stats()
            if isinstance(excinfo.value, UnavailableError):
                assert excinfo.value.attempts == 3
        assert server.requests_served == 3

    def test_unavailable_is_retried(self, scripted):
        server = scripted([("error", protocol.E_UNAVAILABLE), ("ok",)])
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy()) as client:
            assert client.stats() == {}
            assert client.retry_count == 1

    def test_health_never_retried(self, scripted):
        server = scripted([("error", protocol.E_BUSY), ("ok",)])
        with ServeClient("127.0.0.1", server.port,
                         retry_policy=fast_policy()) as client:
            with pytest.raises(RemoteError):
                client.health()
            assert client.retry_count == 0

    def test_retries_kwarg_builds_policy(self, scripted):
        server = scripted([("error", protocol.E_BUSY), ("ok",)])
        with ServeClient("127.0.0.1", server.port, retries=2) as client:
            assert client.retry_policy.retries == 2
            assert client.stats() == {}


class TestRemoteProgramResume:
    @pytest.fixture()
    def handle(self):
        with serve_in_thread() as handle:
            yield handle

    def test_resume_after_connection_drop(self, handle):
        container = compress(assemble(ASM)).data
        with ServeClient(*handle.address) as client:
            container_id, _count, _entry = client.put(container)
            program = RemoteProgram(client, container_id)
            first = program.functions[0]
            assert first.name == "main"
            # the connection dies between function pages
            client._sock.shutdown(socket.SHUT_RDWR)
            second = program.functions[1]
            assert second.name == "helper"
            assert client.reconnect_count >= 1

    def test_resume_with_retry_policy(self, handle):
        container = compress(assemble(ASM)).data
        with ServeClient(*handle.address,
                         retry_policy=fast_policy()) as client:
            container_id, _count, _entry = client.put(container)
            program = RemoteProgram(client, container_id)
            client._sock.shutdown(socket.SHUT_RDWR)
            assert program.functions[0].name == "main"
            assert program.functions[1].name == "helper"
