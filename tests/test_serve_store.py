"""Tests for the verify-gated container store (repro.serve.store)."""

import pytest

from repro.core import compress, serialize
from repro.isa import assemble
from repro.serve import AdmissionError, ContainerStore, container_id_of

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
"""


@pytest.fixture()
def container():
    return compress(assemble(ASM)).data


class TestAdmission:
    def test_put_returns_content_hash(self, container):
        store = ContainerStore()
        container_id, reader = store.put(container)
        assert container_id == container_id_of(container)
        assert reader.function_count == 2
        assert container_id in store

    def test_put_is_idempotent(self, container):
        store = ContainerStore()
        first, _ = store.put(container)
        second, _ = store.put(container)
        assert first == second
        assert len(store) == 1
        assert store.admitted == 1

    def test_corrupt_container_rejected(self, container):
        mutated = bytearray(container)
        mutated[len(mutated) // 2] ^= 0xFF
        store = ContainerStore()
        with pytest.raises(AdmissionError):
            store.put(bytes(mutated))
        assert len(store) == 0
        assert store.rejected == 1

    def test_junk_rejected(self):
        with pytest.raises(AdmissionError):
            ContainerStore().put(b"\x00" * 64)

    def test_v1_container_admitted_on_structure(self, container):
        # v1 has no CRCs; admission falls back to the structural walk +
        # phase-one decode, same as `ssd verify`.
        from repro.core import open_container
        sections = open_container(container).sections
        v1 = serialize(sections, version=1)
        container_id, reader = ContainerStore().put(v1)
        assert reader.function_count == 2
        assert container_id == container_id_of(v1)

    def test_get_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown container"):
            ContainerStore().get("ff" * 32)

    def test_get_returns_exact_bytes(self, container):
        store = ContainerStore()
        container_id, _ = store.put(container)
        assert store.get(container_id) == container


class TestPersistence:
    def test_persists_and_reloads(self, container, tmp_path):
        store = ContainerStore(root=tmp_path)
        container_id, _ = store.put(container)
        assert (tmp_path / f"{container_id}.ssd").exists()

        reloaded = ContainerStore(root=tmp_path)
        assert container_id in reloaded
        assert reloaded.get(container_id) == container

    def test_startup_skips_corrupt_spool_files(self, container, tmp_path):
        (tmp_path / "junk.ssd").write_bytes(b"\x00" * 32)
        store = ContainerStore(root=tmp_path)
        assert len(store) == 0
        container_id, _ = store.put(container)
        assert container_id in store


class TestStats:
    def test_stats_shape(self, container):
        store = ContainerStore()
        store.put(container)
        stats = store.stats()
        assert stats["containers"] == 1
        assert stats["total_bytes"] == len(container)
        assert stats["admitted"] == 1
        assert stats["rejected"] == 0
        assert store.ids() == [container_id_of(container)]
