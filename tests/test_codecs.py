"""Tests for the pluggable codec layer (repro.codecs).

Covers the registry, the v3 codec-id envelope, cross-codec round-trip
properties, the profile-guided ``auto`` selector, and the integration
seams (lazy execution, JIT fallback, serve admission) that must work for
*every* registered codec, not just SSD.
"""

import pytest
from hypothesis import given, settings

from repro.codecs import (
    Codec,
    UnknownCodec,
    by_wire_id,
    codec_ids,
    codec_of,
    compress_with,
    decompress_any,
    get_codec,
    integrity_report_any,
    open_any,
    register_lazy,
    select,
)
from repro.codecs.container import peek_wire_id, unwrap, wrap
from repro.core import compress as ssd_compress
from repro.core.container import ContainerError
from repro.core.lazy import LazyProgram, lazy_program
from repro.errors import CorruptContainer
from repro.isa import assemble
from repro.vm import run_program
from repro.workloads import benchmark_program

from .strategies import programs

CONCRETE = [cid for cid in codec_ids() if get_codec(cid).wire_id]

SOURCE = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    li r3, 9
    mul r1, r1, r3
    trap 1
    ret
end
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE)


@pytest.fixture(scope="module")
def bench():
    return benchmark_program("compress", scale=0.1)


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert {"ssd", "brisc", "lz77-raw", "auto"} <= set(codec_ids())

    def test_get_codec_returns_singleton(self):
        assert get_codec("ssd") is get_codec("ssd")

    def test_unknown_codec_is_corrupt_container(self):
        with pytest.raises(UnknownCodec):
            get_codec("definitely-not-a-codec")
        assert issubclass(UnknownCodec, CorruptContainer)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_lazy("ssd", "repro.codecs.ssd:SsdCodec")

    def test_by_wire_id_round_trips(self):
        for cid in CONCRETE:
            codec = get_codec(cid)
            assert by_wire_id(codec.wire_id) is codec

    def test_wire_id_zero_never_resolves(self):
        with pytest.raises(UnknownCodec):
            by_wire_id(0)

    def test_codec_metadata_complete(self):
        for cid in codec_ids():
            codec = get_codec(cid)
            assert isinstance(codec, Codec)
            assert codec.codec_id == cid
            assert codec.description

    def test_wire_ids_unique(self):
        wire_ids = [get_codec(cid).wire_id for cid in CONCRETE]
        assert len(wire_ids) == len(set(wire_ids))


class TestEnvelope:
    def test_wrap_unwrap_round_trip(self):
        payload = b"some codec payload"
        data = wrap(7, payload)
        assert data[:4] == b"SSD3"
        assert peek_wire_id(data) == 7
        assert unwrap(data) == (7, payload)

    def test_wire_id_zero_rejected_on_wrap(self):
        with pytest.raises(ValueError):
            wrap(0, b"x")

    def test_wire_id_zero_rejected_on_unwrap(self):
        data = bytearray(wrap(1, b"payload"))
        data[5] = 0
        with pytest.raises(ContainerError):
            unwrap(bytes(data))

    def test_payload_corruption_detected(self):
        data = bytearray(wrap(3, b"payload bytes here"))
        data[10] ^= 0xFF
        with pytest.raises(CorruptContainer):
            unwrap(bytes(data))

    def test_truncation_detected(self):
        data = wrap(3, b"payload bytes here")
        for cut in (3, 5, 8, len(data) - 2):
            with pytest.raises((CorruptContainer, EOFError)):
                unwrap(data[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ContainerError):
            unwrap(wrap(2, b"p") + b"extra")

    def test_integrity_report_any_versions(self, program):
        v2 = ssd_compress(program).data
        v3 = compress_with("brisc", program).data
        assert integrity_report_any(v2).version == 2
        report = integrity_report_any(v3)
        assert report.version == 3 and report.ok
        assert not integrity_report_any(b"JUNKJUNKJUNK").ok


class TestCrossCodecRoundTrip:
    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_bench_round_trip(self, bench, codec_id):
        compressed = compress_with(codec_id, bench)
        assert decompress_any(compressed.data) == bench

    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_codec_of_and_reader_surface(self, program, codec_id):
        data = compress_with(codec_id, program).data
        assert codec_of(data) == codec_id
        reader = open_any(data)
        assert reader.codec_id == codec_id
        assert reader.program_name == program.name
        assert reader.entry == program.entry
        assert reader.function_count == len(program.functions)
        assert list(reader.function_names) == [f.name for f in program.functions]
        for findex, function in enumerate(program.functions):
            assert reader.function(findex) == function

    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_size_report_accounts_all_bytes(self, program, codec_id):
        compressed = compress_with(codec_id, program)
        report = compressed.size_report()
        assert all(size >= 0 for size in report.values())
        # Sections never claim more than the container holds (SSD's
        # report excludes framing, so strict equality is codec-specific).
        assert 0 < sum(report.values()) <= compressed.size

    @given(programs(max_functions=3, max_function_size=15))
    @settings(max_examples=10, deadline=None)
    def test_every_codec_round_trips_random_programs(self, program):
        for codec_id in CONCRETE:
            compressed = compress_with(codec_id, program)
            assert decompress_any(compressed.data) == program, codec_id


class TestCodecIdByteFaults:
    """The v3 codec-id byte under fire: typed errors, never wrong decode."""

    def test_unknown_wire_id_is_corrupt_container(self, program):
        data = bytearray(compress_with("brisc", program).data)
        for bogus in (0, 77, 255):
            data[5] = bogus
            with pytest.raises(CorruptContainer):
                decompress_any(bytes(data))

    def test_swapped_wire_id_never_misdecodes(self, program):
        # Flip a brisc container's id to lz77-raw: the payload no longer
        # parses under that codec, and the payload CRC already catches
        # the tamper — either way a typed error, never a wrong program.
        data = bytearray(compress_with("brisc", program).data)
        data[5] = get_codec("lz77-raw").wire_id
        with pytest.raises(CorruptContainer):
            decompress_any(bytes(data))

    @pytest.mark.parametrize("codec_id", ["brisc", "lz77-raw"])
    def test_fault_sweep_over_v3_container(self, program, codec_id):
        from repro.faults import sweep

        data = compress_with(codec_id, program).data
        report = sweep(data, cases=60, seed=3, decode=decompress_any)
        assert report.ok, report.format()


class TestAutoSelector:
    def test_auto_never_larger_than_ssd(self):
        for name in ("compress", "go", "xlisp"):
            program = benchmark_program(name, scale=0.05)
            selection = select(program)
            assert selection.output.size <= selection.totals["ssd"], name

    def test_auto_emits_winning_codec_container(self, bench):
        selection = select(bench)
        compressed = compress_with("auto", bench)
        assert codec_of(compressed.data) == selection.chosen
        assert decompress_any(compressed.data) == bench

    def test_auto_reports_per_function_choices(self, bench):
        selection = select(bench)
        assert len(selection.per_function) == len(bench.functions)
        hotness = sum(choice.hotness for choice in selection.per_function)
        assert hotness == pytest.approx(1.0)
        for choice in selection.per_function:
            assert set(choice.sizes) == set(selection.totals)

    def test_auto_is_not_a_wire_codec(self, program):
        payload = b"anything"
        with pytest.raises(ContainerError):
            get_codec("auto").open_payload(payload)


class TestLegacyContainers:
    def test_v2_loads_as_ssd(self, program):
        data = ssd_compress(program).data
        assert data[:4] == b"SSD2"
        assert codec_of(data) == "ssd"
        assert decompress_any(data) == program
        assert open_any(data).codec_id == "ssd"

    def test_v1_loads_as_ssd(self, program):
        from repro.core import container

        sections = container.parse(ssd_compress(program).data)
        v1 = container.serialize(sections, version=1)
        assert v1[:4] == b"SSD1"
        assert codec_of(v1) == "ssd"
        assert decompress_any(v1) == program


class TestExecutionSeams:
    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_lazy_program_over_any_codec(self, program, codec_id):
        data = compress_with(codec_id, program).data
        lazy = lazy_program(data)
        assert isinstance(lazy, LazyProgram)
        baseline = run_program(program)
        result = run_program(lazy)
        assert result.output == baseline.output
        assert lazy.decompressed_count >= 1

    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_resilient_runtime_over_any_codec(self, program, codec_id):
        from repro.jit import FallbackTranslator, ResilientRuntime, Translator

        data = compress_with(codec_id, program).data
        runtime = ResilientRuntime(data)
        if runtime.reader.supports_block_decode:
            assert isinstance(runtime.translator, Translator)
        else:
            assert isinstance(runtime.translator, FallbackTranslator)
        runtime.prepare()
        assert not runtime.degraded, runtime.report()
        result = runtime.run()
        assert result.output == run_program(program).output

    def test_fallback_translation_matches_block_copy(self, bench):
        """Same native bytes out of both translators, per the contract."""
        from repro.jit import FallbackTranslator, Translator

        reader = open_any(ssd_compress(bench).data)
        block = Translator(reader)
        fallback = FallbackTranslator(reader)
        for findex in range(reader.function_count):
            a = block.translate_function(findex)
            b = fallback.translate_function(findex)
            assert bytes(a.translated.code) == bytes(b.translated.code)
            assert a.translated.call_relocations == b.translated.call_relocations

    @pytest.mark.parametrize("codec_id", CONCRETE)
    def test_store_admits_and_records_codec(self, program, codec_id, tmp_path):
        from repro.serve import ContainerStore

        store = ContainerStore(root=str(tmp_path))
        data = compress_with(codec_id, program).data
        container_id, reader = store.put(data)
        assert reader.codec_id == codec_id
        assert store.codec_of(container_id) == codec_id

    def test_store_rejects_unknown_codec_id(self, program, tmp_path):
        from repro.serve import ContainerStore

        store = ContainerStore(root=str(tmp_path))
        data = bytearray(compress_with("brisc", program).data)
        data[5] = 99
        with pytest.raises(ValueError):
            store.put(bytes(data))
