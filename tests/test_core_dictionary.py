"""Tests for repro.core.dictionary (Algorithm 1)."""

import pytest

from repro.isa import Op, assemble
from repro.core import build_dictionary, dictionary_statistics
from repro.core.dictionary import MAX_SEQUENCE_LENGTH


def _dict_for(text, **kwargs):
    return build_dictionary(assemble(text), **kwargs)


REPEATED = """
func main
    li r1, 1
    addi r1, r1, 2
    mul r2, r1, r1
    li r1, 1
    addi r1, r1, 2
    mul r2, r1, r1
    ret
end
"""


class TestBaseEntries:
    def test_every_unique_instruction_is_a_base_entry(self):
        d = _dict_for(REPEATED)
        # li, addi, mul, ret -> 4 unique instructions.
        assert len(d.base_entries) == 4

    def test_duplicate_instructions_share_entries(self):
        d = _dict_for("""
func main
    li r1, 5
    li r1, 5
    li r1, 6
    ret
end
""")
        li_entries = [e for e in d.base_entries if e.instruction.op is Op.LI]
        assert len(li_entries) == 2

    def test_branches_match_by_target_size_not_value(self):
        # Two bnez with different nearby targets share one base entry.
        d = _dict_for("""
func main
    bnez r1, a
    bnez r1, b
a:
    nop
b:
    ret
end
""")
        branch_entries = [e for e in d.base_entries if e.is_branch]
        assert len(branch_entries) == 1
        assert branch_entries[0].instruction.target == 0  # normalized

    def test_branch_entries_record_target_size(self):
        d = _dict_for("""
func main
    bnez r1, out
out:
    ret
end
""")
        entry = next(e for e in d.base_entries if e.is_branch)
        assert entry.target_size == 1

    def test_far_branches_get_distinct_entry(self):
        lines = ["func main", "    bnez r1, far", "    bnez r1, near", "near:"]
        lines += ["    nop"] * 40
        lines += ["far:", "    ret", "end"]
        d = _dict_for("\n".join(lines))
        branch_entries = [e for e in d.base_entries if e.is_branch]
        assert len(branch_entries) == 2
        assert {e.target_size for e in branch_entries} == {1, 2}


class TestSequenceEntries:
    def test_repeated_triple_becomes_sequence_entry(self):
        d = _dict_for(REPEATED)
        assert len(d.sequence_entries) == 1
        (sequence,) = d.sequence_entries
        assert len(sequence) == 3

    def test_unique_code_has_no_sequence_entries(self):
        d = _dict_for("""
func main
    li r1, 1
    li r2, 2
    li r3, 3
    ret
end
""")
        assert d.sequence_entries == {}

    def test_sequences_never_cross_basic_blocks(self):
        # The repeated pair li/addi is split by a branch target (leader).
        d = _dict_for("""
func main
    li r1, 1
    beqz r1, mid
mid:
    addi r1, r1, 2
    li r1, 1
    beqz r1, mid2
mid2:
    addi r1, r1, 2
    ret
end
""")
        for sequence in d.sequence_entries:
            assert len(sequence) <= 2

    def test_max_length_respected(self):
        body = "    li r1, 1\n    li r2, 2\n    li r3, 3\n    li r4, 4\n    li r5, 5\n    li r6, 6\n"
        d = _dict_for(f"func main\n{body}{body}    ret\nend\n")
        assert max(len(s) for s in d.sequence_entries) <= MAX_SEQUENCE_LENGTH

    def test_max_length_parameter(self):
        body = "    li r1, 1\n    li r2, 2\n    li r3, 3\n"
        d = _dict_for(f"func main\n{body}{body}    ret\nend\n", max_len=2)
        assert max(len(s) for s in d.sequence_entries) <= 2

    def test_max_len_one_means_no_sequences(self):
        d = _dict_for(REPEATED, max_len=1)
        assert d.sequence_entries == {}

    def test_bad_max_len_rejected(self):
        with pytest.raises(ValueError):
            _dict_for(REPEATED, max_len=0)

    def test_branch_only_last_in_sequence(self):
        d = _dict_for("""
func main
loop:
    addi r1, r1, -1
    bnez r1, loop
    addi r1, r1, -1
    bnez r1, loop
    ret
end
""")
        for sequence in d.sequence_entries:
            # reconstruct instructions via base entries
            for position, base_id in enumerate(sequence):
                entry = d.base_entries[base_id]
                if entry.is_branch or entry.is_call:
                    assert position == len(sequence) - 1

    def test_cross_function_repetition_detected(self):
        d = _dict_for("""
func main
    li r1, 1
    addi r1, r1, 2
    ret
end
func other
    li r1, 1
    addi r1, r1, 2
    ret
end
""")
        assert len(d.sequence_entries) >= 1


class TestRefs:
    def test_refs_cover_program_exactly(self):
        program = assemble(REPEATED)
        d = build_dictionary(program)
        for fn, refs in zip(program.functions, d.function_refs):
            assert sum(r.length for r in refs) == len(fn.insns)

    def test_greedy_prefers_longest(self):
        d = _dict_for(REPEATED)
        refs = d.function_refs[0]
        assert refs[0].length == 3  # the whole repeated triple

    def test_branch_refs_carry_targets(self):
        d = _dict_for("""
func main
loop:
    addi r1, r1, -1
    bnez r1, loop
    ret
end
""")
        branch_refs = [r for refs in d.function_refs for r in refs
                       if r.branch_target is not None]
        assert branch_refs
        assert branch_refs[0].branch_target == 0

    def test_call_refs_carry_callee(self):
        d = _dict_for("""
func main
    call helper
    ret
end
func helper
    ret
end
""")
        call_refs = [r for refs in d.function_refs for r in refs
                     if r.call_target is not None]
        assert call_refs
        assert call_refs[0].call_target == 1


class TestAbsoluteTargets:
    def test_absolute_mode_distinguishes_targets(self):
        text = """
func main
    bnez r1, a
    bnez r1, b
a:
    nop
b:
    ret
end
"""
        relative = _dict_for(text)
        absolute = _dict_for(text, absolute_targets=True)
        rel_branches = [e for e in relative.base_entries if e.is_branch]
        abs_branches = [e for e in absolute.base_entries if e.is_branch]
        assert len(rel_branches) == 1
        assert len(abs_branches) == 2
        assert all(e.target_in_entry for e in abs_branches)

    def test_absolute_mode_stores_target(self):
        d = _dict_for("""
func main
    jmp out
out:
    ret
end
""", absolute_targets=True)
        entry = next(e for e in d.base_entries if e.is_branch)
        assert entry.stored_target == 1  # absolute index of 'out' 


class TestStatistics:
    def test_statistics_fields(self):
        stats = dictionary_statistics(_dict_for(REPEATED))
        assert stats["base_entries"] == 4
        assert stats["sequence_entries"] == 1
        assert stats["instructions"] == 7
        assert 0 < stats["sequence_coverage"] < 1
        assert stats["compression_leverage"] > 1
