"""End-to-end tests for the async SSD code server (repro.serve.server).

Covers the PR's acceptance criteria: remote execution matches local
execution while decompressing only the functions reached (verified via
STATS decode counters), a 16-client concurrent load shows cache hits and
no coalescing duplicates, and failures surface as protocol errors — not
dropped connections or event-loop crashes.
"""

import threading
import time

import pytest

from repro.core import compress
from repro.errors import RemoteError
from repro.isa import assemble
from repro.serve import (
    ContainerStore,
    RemoteProgram,
    SSDServer,
    ServeClient,
    ServerConfig,
    serve_in_thread,
)
from repro.vm import run_program

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
func never_called
    li r1, 999
    ret
end
func also_dead
    li r1, 998
    ret
end
"""


@pytest.fixture(scope="module")
def program():
    return assemble(ASM)


@pytest.fixture(scope="module")
def container(program):
    return compress(program).data


@pytest.fixture()
def server():
    with serve_in_thread(config=ServerConfig(request_timeout=10.0)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


class TestRequestSurface:
    def test_put_then_meta(self, client, container):
        container_id, count, entry = client.put(container)
        assert (count, entry) == (4, 0)
        meta = client.meta(container_id)
        assert meta.program_name == "asm"
        assert meta.function_names == ["main", "double", "never_called",
                                       "also_dead"]
        assert meta.entry == 0

    def test_get_function_matches_source(self, client, container, program):
        container_id, _, _ = client.put(container)
        for findex, function in enumerate(program.functions):
            remote = client.function(container_id, findex)
            assert remote.name == function.name
            assert remote.insns == function.insns

    def test_block_streaming_reassembles_function(self, client, container,
                                                  program):
        container_id, _, _ = client.put(container)
        insns = []
        for block in client.iter_blocks(container_id, 0, block_size=2):
            insns.extend(block)
        assert insns == program.functions[0].insns

    def test_block_reports_total(self, client, container, program):
        container_id, _, _ = client.put(container)
        total, insns = client.block(container_id, 0, 1, 2)
        assert total == len(program.functions[0].insns)
        assert insns == program.functions[0].insns[1:3]

    def test_stats_shape(self, client, container):
        client.put(container)
        stats = client.stats()
        for key in ("requests", "errors", "bytes_in", "bytes_out",
                    "latency", "decoded", "decodes_total", "cache",
                    "store", "connections", "coalesced", "timeouts"):
            assert key in stats
        assert stats["store"]["containers"] == 1


class TestErrors:
    def test_unknown_container_is_not_found(self, client):
        with pytest.raises(RemoteError) as info:
            client.meta("ee" * 32)
        assert info.value.code_name == "E_NOT_FOUND"

    def test_bad_function_index_is_not_found(self, client, container):
        container_id, _, _ = client.put(container)
        with pytest.raises(RemoteError) as info:
            client.function(container_id, 99)
        assert info.value.code_name == "E_NOT_FOUND"

    def test_corrupt_put_is_rejected(self, client, container):
        mutated = bytearray(container)
        mutated[len(mutated) // 2] ^= 0xFF
        with pytest.raises(RemoteError) as info:
            client.put(bytes(mutated))
        assert info.value.code_name == "E_CORRUPT"

    def test_connection_survives_an_error(self, client, container):
        with pytest.raises(RemoteError):
            client.meta("ee" * 32)
        container_id, _, _ = client.put(container)     # same connection
        assert client.meta(container_id).function_count == 4

    def test_block_start_out_of_range(self, client, container):
        container_id, _, _ = client.put(container)
        with pytest.raises(RemoteError) as info:
            client.block(container_id, 0, 10_000, 4)
        assert info.value.code_name == "E_NOT_FOUND"


class TestTimeouts:
    def test_slow_request_answers_with_timeout_error(self, container):
        class SlowServer(SSDServer):
            def _decode_function(self, container_id, findex):
                time.sleep(0.5)
                return super()._decode_function(container_id, findex)

        config = ServerConfig(request_timeout=0.05)
        with serve_in_thread(server=SlowServer(config=config)) as handle:
            with ServeClient(*handle.address) as client:
                container_id, _, _ = client.put(container)
                with pytest.raises(RemoteError) as info:
                    client.function(container_id, 0)
                assert info.value.code_name == "E_TIMEOUT"
                # The connection (and server) survive the deadline miss.
                assert client.meta(container_id).function_count == 4
        assert handle.metrics.timeouts >= 1


class TestBackpressure:
    def test_saturated_server_says_busy(self, container):
        config = ServerConfig(max_queue_depth=0)
        with serve_in_thread(config=config) as handle:
            with ServeClient(*handle.address) as client:
                with pytest.raises(RemoteError) as info:
                    client.put(container)
                assert info.value.code_name == "E_BUSY"


class TestRemoteExecution:
    def test_remote_matches_local_and_pages_lazily(self, server, container,
                                                   program):
        local = run_program(program)
        with ServeClient(*server.address) as client:
            remote = RemoteProgram(client, container)
            result = run_program(remote)
            assert result.output == local.output
            # Only the functions control flow reached were fetched...
            assert remote.decompressed_functions == {0, 1}
            assert remote.decompressed_fraction == pytest.approx(0.5)
            # ...and the server decoded exactly those, exactly once.
            stats = client.stats()
            decoded = stats["decoded"][remote.container_id]
            assert decoded == {"functions": 2, "decodes": 2}

    def test_prefetch_and_full_fetch(self, server, container, program):
        with ServeClient(*server.address) as client:
            remote = RemoteProgram(client, container)
            remote.prefetch([2, 3])
            assert remote.decompressed_functions == {2, 3}
            names = [fn.name for fn in remote.functions]
            assert names == [fn.name for fn in program.functions]
            assert remote.decompressed_fraction == 1.0


class TestCodecDimension:
    """v3 (non-SSD) containers serve through the same wire surface."""

    @pytest.mark.parametrize("codec_id", ["brisc", "lz77-raw"])
    def test_v3_container_serves_end_to_end(self, server, program, codec_id):
        from repro.codecs import compress_with

        data = compress_with(codec_id, program).data
        local = run_program(program)
        with ServeClient(*server.address) as client:
            remote = RemoteProgram(client, data)
            assert client.meta(remote.container_id).codec_id == codec_id
            result = run_program(remote)
            assert result.output == local.output
            # The server decoded under the right codec: the decode
            # counters show it served this container's functions.
            stats = client.stats()
            assert stats["decoded"][remote.container_id]["functions"] >= 2

    def test_meta_codec_id_defaults_to_ssd(self, client, container):
        container_id, _, _ = client.put(container)
        assert client.meta(container_id).codec_id == "ssd"


class TestConcurrentLoad:
    def test_sixteen_clients_share_decodes(self, container, program):
        """The acceptance load test: 16 concurrent clients, one container.

        Requires cache hits > 0 and *no coalescing duplicates*: each
        reached function is decoded exactly once server-side.
        """
        local = run_program(program)
        store = ContainerStore()
        container_id, _ = store.put(container)
        barrier = threading.Barrier(16)
        failures = []

        with serve_in_thread(store=store) as handle:
            def one_client() -> None:
                try:
                    with ServeClient(*handle.address) as client:
                        barrier.wait(timeout=10)
                        remote = RemoteProgram(client, container_id)
                        result = run_program(remote)
                        if result.output != local.output:
                            failures.append(
                                f"output {result.output} != {local.output}")
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=one_client)
                       for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures

            with ServeClient(*handle.address) as client:
                stats = client.stats()
            # No duplicates: every decode happened exactly once even
            # though 16 clients raced for the same two functions.
            decoded = stats["decoded"][container_id]
            assert decoded == {"functions": 2, "decodes": 2}
            per_function = handle.metrics.decodes_for(container_id)
            assert per_function == {0: 1, 1: 1}
            # The LRU served everyone else.
            assert stats["cache"]["hits"] > 0
            assert stats["cache"]["hit_rate"] > 0


class TestPreloadedStore:
    def test_serving_from_a_preloaded_store(self, container, program):
        store = ContainerStore()
        container_id, _ = store.put(container)
        with serve_in_thread(store=store) as handle:
            with ServeClient(*handle.address) as client:
                meta = client.meta(container_id)
                assert meta.function_count == len(program.functions)
