"""Units for the profile layer: AccessProfile, build_plan, the markov
predictor, and the ghost-list cache admission policy."""

import pytest

from repro.profile import (
    AccessProfile,
    LayoutPlan,
    MarkovPredictor,
    build_plan,
    predictor_from_hints,
)
from repro.serve.cache import GhostListAdmission, SharedLRUCache
from repro.workloads import TraceSpec, generate_trace


class TestAccessProfile:
    def test_from_trace_counts_and_edges(self):
        profile = AccessProfile.from_trace([0, 1, 0, 1, 2])
        assert profile.counts == {0: 2, 1: 2, 2: 1}
        assert profile.edges == {(0, 1): 2, (1, 0): 1, (1, 2): 1}

    def test_self_edges_dropped(self):
        profile = AccessProfile.from_trace([3, 3, 3, 4])
        assert profile.edges == {(3, 4): 1}

    def test_phase_boundaries_break_edges(self):
        # Without the boundary, 1 -> 5 would be learned.
        profile = AccessProfile.from_trace([0, 1, 5, 6],
                                           phase_boundaries=[2])
        assert (1, 5) not in profile.edges
        assert profile.edges == {(0, 1): 1, (5, 6): 1}

    def test_generated_trace_boundaries_line_up(self):
        spec = TraceSpec(function_count=40, calls_per_phase=500, phases=3)
        trace = generate_trace(spec)
        assert len(trace.phase_boundaries) == spec.phases - 1
        assert all(0 < b < len(trace) for b in trace.phase_boundaries)
        # Boundary-aware profiling learns strictly fewer edges.
        with_breaks = AccessProfile.from_trace(
            trace, phase_boundaries=trace.phase_boundaries)
        without = AccessProfile.from_trace(trace)
        assert sum(with_breaks.edges.values()) <= sum(without.edges.values())

    def test_from_counters_has_no_edges(self):
        profile = AccessProfile.from_counters({0: 5, 1: 0, 2: 3})
        assert profile.counts == {0: 5, 2: 3}
        assert profile.edges == {}

    def test_hot_ranked_orders_by_heat_then_index(self):
        profile = AccessProfile.from_counters({2: 3, 0: 3, 1: 9})
        assert profile.hot_ranked() == (1, 0, 2)


class TestBuildPlan:
    def test_plan_is_a_permutation(self):
        profile = AccessProfile.from_trace([5, 2, 5, 2, 9])
        plan = build_plan(profile, 12)
        assert sorted(plan.order) == list(range(12))

    def test_hot_functions_front_packed(self):
        trace = [7] * 50 + [3] * 20 + [1]
        plan = build_plan(AccessProfile.from_trace(trace), 10)
        assert plan.order[0] == 7
        assert plan.order.index(3) < plan.order.index(1)

    def test_co_called_functions_adjacent(self):
        # 4 and 8 alternate constantly; the affinity clusterer must
        # place them next to each other.
        trace = [4, 8] * 40 + [2, 6]
        plan = build_plan(AccessProfile.from_trace(trace), 10)
        pos4, pos8 = plan.order.index(4), plan.order.index(8)
        assert abs(pos4 - pos8) == 1

    def test_cold_tail_keeps_source_order(self):
        plan = build_plan(AccessProfile.from_trace([3]), 6)
        assert plan.order[0] == 3
        assert plan.order[1:] == (0, 1, 2, 4, 5)

    def test_out_of_range_trace_indices_ignored(self):
        plan = build_plan(AccessProfile.from_trace([1, 99, 1, -5]), 4)
        assert sorted(plan.order) == [0, 1, 2, 3]
        assert 99 not in plan.hot

    def test_hints_payload(self):
        trace = [0, 1] * 30 + [2]
        plan = build_plan(AccessProfile.from_trace(trace), 5, hot_set_size=2)
        hints = plan.hints()
        assert hints.hot == (0, 1)
        assert any(edge[:2] == (0, 1) for edge in hints.edges)

    def test_max_edges_cap(self):
        trace = list(range(50)) * 3
        plan = build_plan(AccessProfile.from_trace(trace), 50, max_edges=4)
        assert len(plan.edges) == 4

    def test_identity_plan(self):
        plan = LayoutPlan.identity(4)
        assert plan.is_identity
        assert not plan.hints()

    def test_validate_rejects_bad_order(self):
        with pytest.raises(ValueError):
            LayoutPlan(order=(0, 0, 1)).validate(3)

    def test_deterministic(self):
        trace = generate_trace(TraceSpec(function_count=30,
                                         calls_per_phase=400, phases=2))
        profile = AccessProfile.from_trace(
            trace, phase_boundaries=trace.phase_boundaries)
        assert build_plan(profile, 30) == build_plan(profile, 30)


class TestMarkovPredictor:
    def test_predicts_heaviest_successors_first(self):
        predictor = MarkovPredictor()
        for _ in range(3):
            predictor.observe(1, 2)
        predictor.observe(1, 3)
        assert predictor.predict(1, count=2) == [2, 3]

    def test_unknown_state_predicts_nothing(self):
        assert MarkovPredictor().predict(7) == []

    def test_self_transitions_ignored(self):
        predictor = MarkovPredictor()
        predictor.observe(5, 5)
        assert predictor.predict(5) == []

    def test_successor_cap_drops_lightest(self):
        predictor = MarkovPredictor(max_successors=2)
        predictor.observe(0, 1, weight=5)
        predictor.observe(0, 2, weight=4)
        predictor.observe(0, 3, weight=1)
        assert set(predictor.predict(0, count=3)) == {1, 2}

    def test_state_cap_evicts_oldest(self):
        predictor = MarkovPredictor(max_states=2)
        predictor.observe(0, 1)
        predictor.observe(1, 2)
        predictor.observe(2, 3)
        assert predictor.predict(0) == []
        assert predictor.predict(2) == [3]

    def test_seed_matches_observed_weights(self):
        predictor = MarkovPredictor()
        assert predictor.seed([(0, 1, 3), (0, 2, 1)]) == 2
        assert predictor.transitions(0) == {1: 3, 2: 1}

    def test_predictor_from_hints_chains_hot_ranks(self):
        predictor = predictor_from_hints(hot=(4, 7, 9), edges=())
        assert predictor.predict(4) == [7]
        assert predictor.predict(7) == [9]

    def test_predict_chain_walks_transitively(self):
        predictor = MarkovPredictor()
        predictor.observe(1, 2)
        predictor.observe(2, 3)
        predictor.observe(3, 4)
        assert predictor.predict_chain(1, count=3) == [2, 3, 4]

    def test_predict_chain_stops_at_dead_end(self):
        predictor = MarkovPredictor()
        predictor.observe(1, 2)
        assert predictor.predict_chain(1, count=5) == [2]

    def test_predict_chain_skips_loops_via_siblings(self):
        predictor = MarkovPredictor()
        predictor.observe(1, 2, weight=5)
        predictor.observe(2, 1, weight=5)  # top successor loops back
        predictor.observe(2, 3, weight=1)  # sibling breaks the loop
        assert predictor.predict_chain(1, count=3) == [2, 3]

    def test_predict_chain_unknown_state_empty(self):
        assert MarkovPredictor().predict_chain(9) == []
        predictor = MarkovPredictor()
        predictor.observe(1, 2)
        assert predictor.predict_chain(1, count=0) == []


class TestGhostListAdmission:
    def test_always_admits_when_cache_has_room(self):
        cache = SharedLRUCache(budget_bytes=100, policy=GhostListAdmission())
        assert cache.put("a", b"x", 10)

    def test_one_hit_wonder_rejected_under_pressure(self):
        cache = SharedLRUCache(budget_bytes=100, policy=GhostListAdmission())
        assert cache.put("resident", b"x", 90)
        # Never-seen key that would evict the resident: rejected.
        assert not cache.put("scan", b"y", 50)
        assert cache.get("resident") is not None

    def test_frequent_key_admitted_under_pressure(self):
        policy = GhostListAdmission(min_frequency=2)
        cache = SharedLRUCache(budget_bytes=100, policy=policy)
        cache.put("resident", b"x", 90)
        cache.get("hot")  # miss, but counts an access
        cache.get("hot")
        assert cache.put("hot", b"y", 50)

    def test_ghost_readmit(self):
        policy = GhostListAdmission(min_frequency=2)
        cache = SharedLRUCache(budget_bytes=100, policy=policy)
        cache.put("a", b"x", 60)
        cache.get("b")  # earn b's admission
        cache.get("b")
        cache.put("b", b"y", 60)  # admitted; evicts a -> a goes ghost
        assert "a" not in cache
        # a returns: ghost hit admits it despite the frequency bar.
        assert cache.put("a", b"x", 60)
        assert policy.stats()["ghost_readmits"] == 1

    def test_no_policy_keeps_plain_lru(self):
        cache = SharedLRUCache(budget_bytes=100)
        cache.put("resident", b"x", 90)
        assert cache.put("scan", b"y", 50)  # always admitted
        assert cache.policy_stats() is None

    def test_policy_stats_keys(self):
        policy = GhostListAdmission()
        assert set(policy.stats()) == {"rejects", "ghost_readmits",
                                       "ghost_entries", "tracked_keys"}

    def test_frequency_table_ages(self):
        policy = GhostListAdmission(sample_size=4)
        for _ in range(5):
            policy.record_access("k")
        # Halving kicked in: the count is bounded, not 5.
        assert policy._freq["k"] < 5

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            GhostListAdmission(ghost_entries=0)
        with pytest.raises(ValueError):
            GhostListAdmission(min_frequency=0)
