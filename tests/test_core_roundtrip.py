"""End-to-end compression round-trip tests (the correctness oracle)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    CompressedProgram,
    ContainerError,
    compress,
    decompress,
    open_container,
    parse,
    serialize,
)
from repro.isa import assemble, validate_program
from repro.vm import run_program
from repro.workloads import benchmark_program, clear_cache

from .strategies import programs

EXAMPLE = """
func main
    li r2, 9
    call helper
    trap 1
    li r2, 9
    call helper
    trap 1
    ret
end
func helper
loop:
    addi r2, r2, -1
    bnez r2, loop
    li r1, 42
    ret
end
"""


def _same_code(a, b):
    return [fn.insns for fn in a.functions] == [fn.insns for fn in b.functions]


class TestRoundTrip:
    def test_small_program_identical(self):
        program = assemble(EXAMPLE)
        restored = decompress(compress(program).data)
        assert _same_code(program, restored)
        assert restored.name == program.name
        assert restored.entry == program.entry
        assert [fn.name for fn in restored.functions] == [fn.name for fn in program.functions]

    def test_behaviour_preserved(self):
        program = assemble(EXAMPLE)
        restored = decompress(compress(program).data)
        assert run_program(restored).output == run_program(program).output

    def test_delta_codec_roundtrip(self):
        program = assemble(EXAMPLE)
        restored = decompress(compress(program, codec="delta").data)
        assert _same_code(program, restored)

    def test_absolute_targets_roundtrip(self):
        program = assemble(EXAMPLE)
        restored = decompress(compress(program, branch_targets="absolute").data)
        assert _same_code(program, restored)

    def test_max_len_2_roundtrip(self):
        program = assemble(EXAMPLE)
        restored = decompress(compress(program, max_len=2).data)
        assert _same_code(program, restored)

    def test_benchmark_roundtrip(self):
        program = benchmark_program("compress", scale=1.0)
        compressed = compress(program)
        restored = decompress(compressed.data)
        assert _same_code(program, restored)
        validate_program(restored)
        clear_cache()

    def test_incremental_function_decompression(self):
        program = assemble(EXAMPLE)
        reader = open_container(compress(program).data)
        # Decompress only the second function; must match without touching
        # the first.
        insns = reader.function_instructions(1)
        assert insns == program.functions[1].insns

    def test_compressed_is_smaller_for_redundant_input(self):
        # A benchmark-scale program must compress below its VM encoding.
        from repro.isa.encoding import program_size

        program = benchmark_program("compress", scale=1.0)
        compressed = compress(program)
        assert compressed.size < program_size(program)
        clear_cache()

    def test_stats_exposed(self):
        compressed = compress(assemble(EXAMPLE))
        assert isinstance(compressed, CompressedProgram)
        assert compressed.dictionary_stats["base_entries"] > 0
        assert compressed.section_sizes["items"] > 0
        assert compressed.partition_stats["segments"] == 1


class TestContainerFormat:
    def test_bad_magic_rejected(self):
        with pytest.raises(ContainerError, match="magic"):
            parse(b"NOPE" + b"\x00" * 20)

    def test_trailing_garbage_rejected(self):
        data = compress(assemble(EXAMPLE)).data + b"\x00"
        with pytest.raises(ContainerError, match="trailing"):
            parse(data)

    def test_sections_roundtrip(self):
        data = compress(assemble(EXAMPLE)).data
        assert serialize(parse(data)) == data

    def test_section_sizes_sum_close_to_total(self):
        compressed = compress(assemble(EXAMPLE))
        total = sum(compressed.section_sizes.values())
        # Headers/varints account for the rest.
        assert total <= compressed.size
        assert compressed.size - total < 200


class TestBranchTargetModes:
    def test_relative_beats_absolute_on_branchy_code(self):
        # Build a program with many same-shaped branches to different
        # targets: the paper's 6.2% observation, in miniature.
        lines = ["func main"]
        for i in range(60):
            lines.append(f"    addi r1, r1, -1")
            lines.append(f"    bnez r1, l{i}")
            lines.append(f"l{i}:")
        lines.append("    ret")
        lines.append("end")
        program = assemble("\n".join(lines))
        relative = compress(program)
        absolute = compress(program, branch_targets="absolute")
        assert relative.size < absolute.size

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            compress(assemble(EXAMPLE), branch_targets="sideways")


@given(programs(max_functions=5, max_function_size=40))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_identity(program):
    restored = decompress(compress(program).data)
    assert _same_code(program, restored)


@given(programs(max_functions=3, max_function_size=25))
@settings(max_examples=20, deadline=None)
def test_property_roundtrip_identity_absolute_mode(program):
    restored = decompress(compress(program, branch_targets="absolute").data)
    assert _same_code(program, restored)


@given(programs(max_functions=3, max_function_size=25))
@settings(max_examples=20, deadline=None)
def test_property_roundtrip_identity_delta_codec(program):
    restored = decompress(compress(program, codec="delta").data)
    assert _same_code(program, restored)
