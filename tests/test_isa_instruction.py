"""Tests for repro.isa.opcodes and repro.isa.instruction."""

import pytest
from hypothesis import given

from repro.isa import (
    Instruction,
    NUM_REGISTERS,
    OP_BY_CODE,
    OP_BY_MNEMONIC,
    OP_TABLE,
    Op,
    immediate_size_class,
    info,
    target_size_class,
)

from .strategies import non_control_instruction


class TestOpcodeTable:
    def test_all_opcodes_have_metadata(self):
        assert set(OP_TABLE) == set(Op)

    def test_codes_are_dense_and_unique(self):
        codes = sorted(info(op).code for op in Op)
        assert codes == list(range(len(Op)))

    def test_mnemonic_lookup(self):
        for op in Op:
            assert OP_BY_MNEMONIC[op.value].op is op

    def test_code_lookup(self):
        for op in Op:
            assert OP_BY_CODE[info(op).code].op is op

    def test_branches_are_terminators_with_fallthrough(self):
        meta = info(Op.BNE)
        assert meta.is_branch
        assert meta.is_terminator
        assert meta.falls_through

    def test_jump_does_not_fall_through(self):
        assert not info(Op.JMP).falls_through
        assert not info(Op.RET).falls_through
        assert not info(Op.HALT).falls_through

    def test_call_is_terminator_but_falls_through(self):
        meta = info(Op.CALL)
        assert meta.is_terminator
        assert meta.falls_through
        assert meta.is_call
        assert not meta.is_branch

    def test_store_signature(self):
        meta = info(Op.SW)
        assert not meta.uses_rd
        assert meta.uses_rs1
        assert meta.uses_rs2
        assert meta.uses_imm

    def test_beqz_uses_only_rs1(self):
        meta = info(Op.BEQZ)
        assert meta.uses_rs1
        assert not meta.uses_rs2
        assert meta.uses_target

    def test_trap_uses_imm(self):
        assert info(Op.TRAP).uses_imm


class TestInstructionConstruction:
    def test_valid_add(self):
        insn = Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3)
        assert insn.rd == 1

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing required field rs2"):
            Instruction(op=Op.ADD, rd=1, rs1=2)

    def test_extra_field_rejected(self):
        with pytest.raises(ValueError, match="unexpected field imm"):
            Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3, imm=5)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Instruction(op=Op.MOV, rd=NUM_REGISTERS, rs1=0)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError, match="missing required field target"):
            Instruction(op=Op.BEQ, rs1=1, rs2=2)

    def test_replace_target(self):
        insn = Instruction(op=Op.JMP, target=3)
        assert insn.replace_target(7).target == 7

    def test_replace_target_on_alu_rejected(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.NOP).replace_target(1)

    def test_instructions_are_hashable_values(self):
        a = Instruction(op=Op.ADDI, rd=1, rs1=1, imm=4)
        b = Instruction(op=Op.ADDI, rd=1, rs1=1, imm=4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSizeClasses:
    @pytest.mark.parametrize("disp,size", [
        (0, 1), (14, 1), (-14, 1), (15, 2), (-15, 2),
        (3640, 2), (-3640, 2), (3641, 4), (-40000, 4),
    ])
    def test_target_size_class(self, disp, size):
        assert target_size_class(disp) == size

    def test_size_classes_conservative_under_native_expansion(self):
        from repro.isa.instruction import NATIVE_EXPANSION_BOUND

        # A class-1 displacement expanded at the bound must fit int8;
        # class-2 must fit int16.
        assert 14 * NATIVE_EXPANSION_BOUND <= 127
        assert 3640 * NATIVE_EXPANSION_BOUND <= 32767

    @pytest.mark.parametrize("value,size", [
        (0, 1), (-128, 1), (127, 1), (255, 2), (30000, 2), (70000, 4),
    ])
    def test_immediate_size_class(self, value, size):
        assert immediate_size_class(value) == size


class TestMatchKey:
    def test_non_branch_key_is_exact(self):
        a = Instruction(op=Op.ADDI, rd=1, rs1=2, imm=3)
        b = Instruction(op=Op.ADDI, rd=1, rs1=2, imm=3)
        c = Instruction(op=Op.ADDI, rd=1, rs1=2, imm=4)
        assert a.match_key() == b.match_key()
        assert a.match_key() != c.match_key()

    def test_branch_key_ignores_target_value(self):
        # Paper section 2.1: same size, different value => match.
        near1 = Instruction(op=Op.BNE, rs1=1, rs2=2, target=5)
        near2 = Instruction(op=Op.BNE, rs1=1, rs2=2, target=90)
        assert near1.match_key(1) == near2.match_key(1)

    def test_branch_key_distinguishes_target_size(self):
        insn = Instruction(op=Op.BNE, rs1=1, rs2=2, target=5)
        assert insn.match_key(1) != insn.match_key(2)

    def test_branch_key_distinguishes_registers(self):
        a = Instruction(op=Op.BNE, rs1=1, rs2=2, target=5)
        b = Instruction(op=Op.BNE, rs1=1, rs2=3, target=5)
        assert a.match_key(1) != b.match_key(1)

    def test_branch_key_requires_size(self):
        insn = Instruction(op=Op.JMP, target=0)
        with pytest.raises(ValueError):
            insn.match_key()

    def test_non_branch_key_rejects_size(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.NOP).match_key(2)

    def test_call_key_uses_size(self):
        a = Instruction(op=Op.CALL, target=3)
        b = Instruction(op=Op.CALL, target=200)
        assert a.match_key(1) == b.match_key(1)


class TestRender:
    def test_load_renders_memory_operand(self):
        insn = Instruction(op=Op.LW, rd=1, rs1=29, imm=8)
        assert insn.render() == "lw r1, 8(r29)"

    def test_store_renders_value_first(self):
        insn = Instruction(op=Op.SW, rs1=29, rs2=3, imm=-4)
        assert insn.render() == "sw r3, -4(r29)"

    def test_branch_renders_target(self):
        insn = Instruction(op=Op.BEQ, rs1=1, rs2=2, target=9)
        assert insn.render() == "beq r1, r2, @9"

    def test_nop(self):
        assert Instruction(op=Op.NOP).render() == "nop"


@given(non_control_instruction())
def test_property_generated_instructions_are_valid(insn):
    # Construction already validates; match_key must not raise.
    key = insn.match_key()
    assert key[0] is insn.op
