"""Shared hypothesis strategies: random valid instructions, functions, programs.

These generate *structurally valid* programs (validate_program passes) so
that every downstream property test — encoding round-trips, compression
round-trips, JIT translation equivalence — can draw from the same source.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.isa import Function, Instruction, Kind, NUM_REGISTERS, Op, Program, info

_REG = st.integers(min_value=0, max_value=NUM_REGISTERS - 1)
_IMM = st.one_of(
    st.integers(min_value=-128, max_value=127),
    st.integers(min_value=-(2**15), max_value=2**15 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
)

_NON_CONTROL_OPS = [
    op for op in Op
    if info(op).kind in (Kind.ALU_RR, Kind.ALU_RI, Kind.UNARY, Kind.CONST,
                         Kind.LOAD, Kind.STORE)
    or op is Op.NOP
]
_BRANCH_OPS = [op for op in Op if info(op).kind is Kind.BRANCH]


@st.composite
def non_control_instruction(draw) -> Instruction:
    """A random instruction with no target field."""
    op = draw(st.sampled_from(_NON_CONTROL_OPS))
    meta = info(op)
    return Instruction(
        op=op,
        rd=draw(_REG) if meta.uses_rd else None,
        rs1=draw(_REG) if meta.uses_rs1 else None,
        rs2=draw(_REG) if meta.uses_rs2 else None,
        imm=draw(_IMM) if meta.uses_imm else None,
    )


@st.composite
def branch_instruction(draw, function_length: int) -> Instruction:
    """A random conditional branch with an in-range target."""
    op = draw(st.sampled_from(_BRANCH_OPS))
    meta = info(op)
    return Instruction(
        op=op,
        rs1=draw(_REG),
        rs2=draw(_REG) if meta.uses_rs2 else None,
        target=draw(st.integers(min_value=0, max_value=function_length - 1)),
    )


@st.composite
def function_body(draw, name: str, function_count: int,
                  min_size: int = 1, max_size: int = 30) -> Function:
    """A random function: straight-line/branch/call mix ending in ``ret``."""
    body_len = draw(st.integers(min_value=min_size, max_value=max_size))
    total = body_len + 1  # plus the trailing ret
    insns = []
    for _ in range(body_len):
        choice = draw(st.integers(min_value=0, max_value=9))
        if choice == 0:
            insns.append(draw(branch_instruction(function_length=total)))
        elif choice == 1 and function_count > 0:
            insns.append(Instruction(
                op=Op.CALL,
                target=draw(st.integers(min_value=0, max_value=function_count - 1)),
            ))
        else:
            insns.append(draw(non_control_instruction()))
    insns.append(Instruction(op=Op.RET))
    return Function(name=name, insns=insns)


@st.composite
def programs(draw, min_functions: int = 1, max_functions: int = 5,
             max_function_size: int = 30) -> Program:
    """A random structurally valid program."""
    count = draw(st.integers(min_value=min_functions, max_value=max_functions))
    functions = [
        draw(function_body(name=f"f{i}", function_count=count,
                           max_size=max_function_size))
        for i in range(count)
    ]
    return Program(name="prop", functions=functions, entry=0)
