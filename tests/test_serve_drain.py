"""Server graceful-drain tests (SIGTERM/close semantics).

The drain contract: in-flight (possibly coalesced) decodes complete and
their clients get real answers; *new* decode/put frames are refused with
E_UNAVAILABLE while the observability surface (HEALTH/STATS) keeps
answering; drain returns within its timeout with no hung
``asyncio.shield`` futures; ``kill()`` by contrast resets connections
mid-frame, modelling SIGKILL.
"""

import threading
import time

import pytest

from repro.core import compress
from repro.errors import ProtocolError, RemoteError
from repro.isa import assemble
from repro.serve import ServeClient, ServerConfig, serve_in_thread
from repro.serve import protocol

ASM = """
func main
    li r2, 9
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


@pytest.fixture()
def container():
    return compress(assemble(ASM)).data


def start_server():
    return serve_in_thread(config=ServerConfig(request_timeout=10.0))


class TestDrain:
    def test_inflight_decode_completes_and_drain_is_clean(self, container):
        handle = start_server()
        try:
            with ServeClient(*handle.address) as seeder:
                container_id, _count, _entry = seeder.put(container)

            release = threading.Event()
            started = threading.Event()

            def hook(cid, findex):
                started.set()
                release.wait(5.0)

            handle.server.decode_hook = hook
            results = {}

            def fetch(slot):
                with ServeClient(*handle.address) as client:
                    results[slot] = client.function(container_id, 0).name

            # two concurrent fetchers of the same function: the second
            # coalesces onto the first's in-flight decode
            threads = [threading.Thread(target=fetch, args=(i,), daemon=True)
                       for i in range(2)]
            for thread in threads:
                thread.start()
            assert started.wait(5.0)

            # observer connected (and accepted: one exchange forces the
            # accept) BEFORE the drain closes the listener
            observer = ServeClient(*handle.address)
            assert observer.health().ok
            drained = {}

            def drain():
                drained["ok"] = handle.drain(timeout=8.0)

            drainer = threading.Thread(target=drain, daemon=True)
            drainer.start()
            deadline = time.monotonic() + 5.0
            while not handle.server.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.server.draining

            # while draining: health answers (and says so), new decode
            # work is refused with E_UNAVAILABLE
            status = observer.health()
            assert status.state == protocol.HEALTH_DRAINING
            with pytest.raises(RemoteError) as excinfo:
                observer.function(container_id, 1)
            assert excinfo.value.code == protocol.E_UNAVAILABLE

            # release the decode: every coalesced waiter completes
            release.set()
            for thread in threads:
                thread.join(8.0)
            drainer.join(10.0)
            assert not drainer.is_alive(), "drain hung"
            assert drained["ok"] is True
            assert results == {0: "main", 1: "main"}
            observer.close()
        finally:
            handle.stop()

    def test_drain_times_out_on_stuck_decode(self, container):
        handle = start_server()
        try:
            with ServeClient(*handle.address) as seeder:
                container_id, _count, _entry = seeder.put(container)
            release = threading.Event()
            started = threading.Event()

            def hook(cid, findex):
                started.set()
                release.wait(5.0)   # bounded: the thread must still join

            handle.server.decode_hook = hook

            def fetch():
                try:
                    with ServeClient(*handle.address) as client:
                        client.function(container_id, 0)
                except (RemoteError, ProtocolError, OSError):
                    pass

            fetcher = threading.Thread(target=fetch, daemon=True)
            fetcher.start()
            assert started.wait(5.0)
            # the decode is stuck past the drain deadline
            assert handle.drain(timeout=0.2) is False
            release.set()
            fetcher.join(8.0)
        finally:
            handle.stop()

    def test_connection_closed_after_drain(self, container):
        handle = start_server()
        with ServeClient(*handle.address) as seeder:
            container_id, _count, _entry = seeder.put(container)
        lingering = ServeClient(*handle.address)
        assert handle.drain(timeout=5.0) is True
        # the drained server closed the connection; the next request
        # fails cleanly (closed/refused), it does not hang
        with pytest.raises((ProtocolError, OSError)):
            lingering.meta(container_id)
        lingering.close()

    def test_health_reports_ok_before_drain(self, container):
        handle = start_server()
        try:
            with ServeClient(*handle.address) as client:
                status = client.health()
                assert status.state == protocol.HEALTH_OK
                assert status.ok
                assert status.containers == 0
                container_id, _count, _entry = client.put(container)
                assert client.health().containers == 1
                del container_id
        finally:
            handle.stop()


class TestKill:
    def test_kill_resets_inflight_connections(self, container):
        handle = start_server()
        with ServeClient(*handle.address) as seeder:
            container_id, _count, _entry = seeder.put(container)
        started = threading.Event()

        def hook(cid, findex):
            started.set()
            time.sleep(2.0)     # bounded hang; killed mid-decode

        handle.server.decode_hook = hook
        outcome = {}

        def fetch():
            try:
                with ServeClient(*handle.address) as client:
                    outcome["result"] = client.function(container_id, 0)
            except (ProtocolError, OSError) as exc:
                outcome["error"] = exc
            outcome["at"] = time.monotonic()

        fetcher = threading.Thread(target=fetch, daemon=True)
        fetcher.start()
        assert started.wait(5.0)
        killed_at = time.monotonic()
        # kill() itself may block up to the bounded hook sleep while the
        # loop thread joins its executor; the CLIENT must see the
        # reset/close immediately, long before the 2s decode finishes
        handle.kill()
        fetcher.join(5.0)
        assert not fetcher.is_alive()
        assert "error" in outcome
        assert outcome["at"] - killed_at < 1.5
        assert not handle.is_alive()
