"""Tests for the span tracer (repro.obs.trace)."""

import json
import threading

from repro.obs import Tracer, format_tree, span_from_dict


class TestNesting:
    def test_child_links_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.children == [inner]
        assert tracer.roots() == [outer]

    def test_three_levels_deep(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (root,) = tracer.roots()
        names = [node.name for node in root.walk()]
        assert names == ["a", "b", "c"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        assert [child.name for child in parent.children] == [
            "first",
            "second",
        ]

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        one, two = tracer.roots()
        assert one.trace_id != two.trace_id

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_durations_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration is not None and inner.duration >= 0
        assert outer.duration >= inner.duration

    def test_span_finishes_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom") as node:
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert node.finished
        assert tracer.roots() == [node]

    def test_root_ring_is_bounded(self):
        tracer = Tracer(max_roots=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [root.name for root in tracer.roots()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots() == []

    def test_find_and_find_roots(self):
        tracer = Tracer()
        with tracer.span("req"):
            with tracer.span("decode"):
                pass
            with tracer.span("decode"):
                pass
        (root,) = tracer.find_roots("req")
        assert len(root.find("decode")) == 2
        assert tracer.find_roots("missing") == []


class TestJsonRoundTrip:
    def test_to_dict_and_back(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            outer.set_attr("extra", 7)
            with tracer.span("inner", findex=3):
                pass
        payload = json.loads(json.dumps(outer.to_dict()))
        rebuilt = span_from_dict(payload)
        assert rebuilt.name == "outer"
        assert rebuilt.attrs == {"kind": "test", "extra": 7}
        assert rebuilt.trace_id == outer.trace_id
        assert rebuilt.duration == outer.duration
        (child,) = rebuilt.children
        assert child.name == "inner"
        assert child.attrs == {"findex": 3}
        assert child.parent_id == outer.span_id

    def test_export_returns_all_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        exported = tracer.export()
        assert [tree["name"] for tree in exported] == ["a", "b"]

    def test_format_tree_shows_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", kind="x"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.roots()
        text = format_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "kind=x" in lines[0]
        assert lines[1].startswith("  inner")
        assert "ms" in lines[0]


class TestThreads:
    def test_threads_do_not_share_ambient_parent(self):
        # A plain thread does not inherit the spawning context, so spans
        # opened there become their own roots rather than children.
        tracer = Tracer()
        results = []

        def worker():
            with tracer.span("thread-root") as node:
                results.append(node)

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        (worker_span,) = results
        assert worker_span.parent_id is None
        names = sorted(root.name for root in tracer.roots())
        assert names == ["main-root", "thread-root"]

    def test_copied_context_parents_across_threads(self):
        # Copying the context (what asyncio.to_thread does) carries the
        # ambient span into the worker, parenting its spans correctly.
        import contextvars

        tracer = Tracer()

        def worker():
            with tracer.span("child"):
                pass

        with tracer.span("parent") as parent:
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        (child,) = parent.children
        assert child.name == "child"
        assert child.trace_id == parent.trace_id

    def test_concurrent_children_all_attach(self):
        tracer = Tracer()
        import contextvars

        threads = []
        with tracer.span("parent") as parent:
            for _ in range(8):
                context = contextvars.copy_context()

                def worker():
                    with tracer.span("child"):
                        pass

                threads.append(threading.Thread(target=context.run, args=(worker,)))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(parent.children) == 8
        assert {child.name for child in parent.children} == {"child"}
