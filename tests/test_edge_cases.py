"""Edge-case tests across modules: limits, rare paths, boundary values."""

import pytest

from repro.core import compress, decompress
from repro.core.items import EntryInfo, ItemStreamError, encode_items
from repro.isa import Function, Instruction, Op, Program, assemble
from repro.isa.encoding import decode_program, encode_program
from repro.jit import PERMANENT_SIZE_THRESHOLD, TranslationBuffer
from repro.vm import run_program


class TestISAEdges:
    def test_many_functions_call_targets(self):
        # Call targets above 255 need 2-byte encodings everywhere.
        functions = [Function(name=f"f{i}",
                              insns=[Instruction(op=Op.RET)])
                     for i in range(300)]
        functions[0] = Function(name="f0", insns=[
            Instruction(op=Op.CALL, target=299),
            Instruction(op=Op.RET),
        ])
        program = Program(name="many", functions=functions, entry=0)
        assert decode_program(encode_program(program)).functions[0].insns \
            == program.functions[0].insns
        restored = decompress(compress(program).data)
        assert restored.functions[0].insns == program.functions[0].insns

    def test_extreme_immediates_roundtrip(self):
        program = Program(name="imm", functions=[Function(name="f", insns=[
            Instruction(op=Op.LI, rd=1, imm=2**31 - 1),
            Instruction(op=Op.LI, rd=2, imm=-(2**31)),
            Instruction(op=Op.ADDI, rd=1, rs1=1, imm=-1),
            Instruction(op=Op.RET),
        ])], entry=0)
        restored = decompress(compress(program).data)
        assert restored.functions[0].insns == program.functions[0].insns

    def test_single_instruction_function(self):
        program = assemble("func main\n    ret\nend\n")
        restored = decompress(compress(program).data)
        assert restored.functions[0].insns == program.functions[0].insns

    def test_long_straight_line_function(self):
        lines = ["func main"] + [f"    li r1, {i}" for i in range(5000)]
        lines += ["    ret", "end"]
        program = assemble("\n".join(lines))
        restored = decompress(compress(program).data)
        assert restored.functions[0].insns == program.functions[0].insns

    def test_far_branch_gets_wide_target(self):
        lines = ["func main", "    beqz r1, far"]
        lines += ["    nop"] * 4000
        lines += ["far:", "    ret", "end"]
        program = assemble("\n".join(lines))
        sizes = program.functions[0].target_sizes()
        assert sizes[0] == 4
        restored = decompress(compress(program).data)
        assert restored.functions[0].insns == program.functions[0].insns


class TestInterpreterEdges:
    def test_jr_computed_jump(self):
        result = run_program(assemble("""
func main
    li r3, 3
    jr r3
    nop
    li r1, 77
    trap 1
    ret
end
"""))
        assert result.output == [77]

    def test_deep_call_chain(self):
        functions = []
        depth = 200
        for index in range(depth):
            if index == depth - 1:
                insns = [Instruction(op=Op.LI, rd=1, imm=42),
                         Instruction(op=Op.RET)]
            else:
                insns = [Instruction(op=Op.CALL, target=index + 1),
                         Instruction(op=Op.RET)]
            functions.append(Function(name=f"f{index}", insns=insns))
        functions[0].insns.insert(1, Instruction(op=Op.TRAP, imm=1))
        program = Program(name="deep", functions=functions, entry=0)
        assert run_program(program, fuel=10_000).output == [42]

    def test_memory_boundary_access(self):
        # The last addressable word sits at memory_size - 4.
        result = run_program(assemble("""
func main
    li r2, 65532
    li r1, 7
    sw r1, 0(r2)
    lw r1, 0(r2)
    trap 1
    ret
end
"""))
        assert result.output == [7]


class TestItemEdges:
    def test_two_byte_call_target(self):
        info = {0: EntryInfo(length=1, is_call=True, target_size=2)}
        from repro.core.dictionary import EntryRef

        blob = encode_items([EntryRef(base_ids=(5,), call_target=40000)],
                            {(5,): 0}, info)
        from repro.core.items import decode_items

        items = decode_items(blob, info)
        assert items[0].call_target == 40000

    def test_call_target_too_large_rejected(self):
        info = {0: EntryInfo(length=1, is_call=True, target_size=1)}
        from repro.core.dictionary import EntryRef

        with pytest.raises(ItemStreamError, match="does not fit"):
            encode_items([EntryRef(base_ids=(5,), call_target=300)],
                         {(5,): 0}, info)


class TestBufferEdges:
    def test_permanent_demotion_when_starved(self):
        buf = TranslationBuffer(capacity=1000, permanent_fraction_limit=1.0)
        # Fill the permanent area with tiny functions...
        for findex in range(4):
            buf.call(findex, 250)
        assert buf.permanent_bytes == 1000
        # ...then force a large round-robin placement: the oldest
        # permanent resident must be demoted, not crash.
        buf.call(99, 600)
        assert buf.resident(99)

    def test_exact_threshold_function_not_permanent(self):
        buf = TranslationBuffer(capacity=100_000)
        buf.call(0, PERMANENT_SIZE_THRESHOLD)
        assert 0 in buf.round_robin
