"""Version-2 container format: CRCs, versioning, limits, integrity report."""

import zlib

import pytest

from repro.core import (
    DEFAULT_LIMITS,
    DecodeLimits,
    compress,
    decompress,
    integrity_report,
    parse,
    serialize,
)
from repro.core.container import FORMAT_VERSION, MAGIC, MAGIC_V2, container_version
from repro.errors import (
    ChecksumMismatch,
    CorruptContainer,
    LimitExceeded,
    ReproError,
    TruncatedStream,
)
from repro.isa import assemble

SOURCE = """
func main
    li r2, 9
    call helper
    trap 1
    ret
end
func helper
    li r1, 5
    mul r1, r1, r2
    ret
end
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE)


@pytest.fixture(scope="module")
def container(program):
    return compress(program).data


@pytest.fixture(scope="module")
def legacy(container):
    return serialize(parse(container), version=1)


class TestVersioning:
    def test_compress_emits_v2(self, container):
        assert container[:4] == MAGIC_V2 == b"SSD2"
        assert container[4] == FORMAT_VERSION == 2

    def test_container_version(self, container, legacy):
        assert container_version(container) == 2
        assert container_version(legacy) == 1
        assert legacy[:4] == MAGIC == b"SSD1"

    def test_unknown_magic_rejected(self):
        with pytest.raises(CorruptContainer):
            parse(b"SSD9" + b"\x00" * 32)

    def test_unknown_version_rejected(self, container):
        bumped = container[:4] + bytes([99]) + container[5:]
        with pytest.raises(CorruptContainer, match="version"):
            parse(bumped)


class TestRoundTrip:
    def test_v2_reserialization_is_byte_identical(self, container):
        assert serialize(parse(container)) == container

    def test_v1_reserialization_is_byte_identical(self, legacy):
        assert serialize(parse(legacy), version=1) == legacy

    def test_legacy_blob_still_loads(self, program, legacy):
        restored = decompress(legacy)
        assert [f.insns for f in restored.functions] == \
            [f.insns for f in program.functions]

    def test_v1_and_v2_decode_identically(self, container, legacy):
        assert decompress(container).functions == decompress(legacy).functions


class TestChecksums:
    def test_section_crc_detects_payload_corruption(self, container):
        report = integrity_report(container)
        # Corrupt one byte inside each section's payload; the named
        # section (or the container CRC) must report the damage.
        for span in report.spans:
            if span.length == 0 or span.name == "container":
                continue
            corrupted = bytearray(container)
            corrupted[span.data_offset] ^= 0xFF
            with pytest.raises(ChecksumMismatch):
                parse(bytes(corrupted))
            damaged = integrity_report(bytes(corrupted))
            assert any(bad.name == span.name
                       for bad in damaged.corrupt_sections), span.name

    def test_container_crc_covers_scaffolding(self, container):
        # Flip a byte that is *not* inside any per-section payload (the
        # entry-index varint, say): only the trailing container CRC sees it.
        corrupted = bytearray(container)
        corrupted[-1] ^= 0xFF  # the container CRC itself
        with pytest.raises(ChecksumMismatch):
            parse(bytes(corrupted))

    def test_crc_values_are_real_crc32(self, container):
        report = integrity_report(container)
        span = next(s for s in report.spans if s.name == "names" and s.length)
        payload = container[span.data_offset:span.data_offset + span.length]
        stored = int.from_bytes(
            container[span.crc_offset:span.crc_offset + 4], "little")
        assert stored == zlib.crc32(payload)


class TestIntegrityReport:
    def test_clean_report(self, container):
        report = integrity_report(container)
        assert report.ok
        assert report.version == 2
        assert report.error is None
        assert not report.corrupt_sections
        names = [span.name for span in report.spans]
        assert "names" in names and "container" in names

    def test_report_never_raises(self, container):
        for cut in range(0, len(container), 7):
            report = integrity_report(container[:cut])
            assert not report.ok

    def test_v1_report_has_no_verdicts(self, legacy):
        report = integrity_report(legacy)
        assert report.version == 1
        assert report.ok
        assert all(span.crc_ok is None for span in report.spans)


class TestLimits:
    def test_function_count_limit(self, container):
        tight = DecodeLimits(max_functions=1)
        with pytest.raises(LimitExceeded):
            parse(container, limits=tight)

    def test_blob_expansion_limit(self, container):
        tight = DecodeLimits(max_blob_output=4)
        with pytest.raises(LimitExceeded):
            decompress(container, limits=tight)

    def test_dict_entries_limit(self, container):
        tight = DecodeLimits(max_dict_entries=1)
        with pytest.raises(LimitExceeded):
            decompress(container, limits=tight)

    def test_default_limits_accept_real_containers(self, container):
        assert decompress(container, limits=DEFAULT_LIMITS)


class TestDiagnostics:
    def test_truncation_reports_offset(self, container):
        with pytest.raises(TruncatedStream, match="byte offset"):
            parse(container[:20])

    def test_taxonomy_is_backward_compatible(self, container):
        # Every taxonomy member is catchable as ValueError or EOFError.
        with pytest.raises((ValueError, EOFError)):
            parse(container[:20])
        with pytest.raises(ValueError):
            parse(b"XXXX" + container[4:])
        assert issubclass(ChecksumMismatch, ValueError)
        assert issubclass(TruncatedStream, EOFError)
        assert issubclass(LimitExceeded, ReproError)
