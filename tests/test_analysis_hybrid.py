"""Tests for the hybrid re-optimization overhead mode."""

import pytest

from repro.analysis import measure_overhead
from repro.isa import assemble

WORKLOAD = """
func main
    li r2, 40
    li r3, 0
loop:
    slt r4, r3, r2
    beqz r4, done
    lw r5, -8(r29)
    addi r5, r5, 3
    sw r5, -8(r29)
    addi r3, r3, 1
    jmp loop
done:
    mov r1, r3
    trap 1
    ret
end
"""


@pytest.fixture(scope="module")
def program():
    return assemble(WORKLOAD)


class TestHybridMode:
    def test_hybrid_erases_quality_overhead(self, program):
        report = measure_overhead(program, fuel=100_000, hybrid=True)
        assert report.quality_overhead_pct == pytest.approx(0.0, abs=1e-9)

    def test_hybrid_costs_more_translation(self, program):
        plain = measure_overhead(program, fuel=100_000)
        hybrid = measure_overhead(program, fuel=100_000, hybrid=True)
        assert hybrid.translation_cycles > plain.translation_cycles

    def test_hybrid_wins_on_long_sessions(self, program):
        plain = measure_overhead(program, fuel=100_000, session_seconds=600.0)
        hybrid = measure_overhead(program, fuel=100_000, session_seconds=600.0,
                                  hybrid=True)
        assert hybrid.total_overhead_pct < plain.total_overhead_pct

    def test_plain_wins_on_tiny_sessions(self, program):
        plain = measure_overhead(program, fuel=100_000, session_seconds=0.0001)
        hybrid = measure_overhead(program, fuel=100_000, session_seconds=0.0001,
                                  hybrid=True)
        assert hybrid.total_overhead_pct > plain.total_overhead_pct
