"""Tests for repro.delta: patch artifacts, chains, shared bases.

The subsystem's safety contract — a patch either reconstructs the
byte-exact target it names or fails with a typed ``repro.errors``
member — is asserted here at the library layer; the serve-side
fallback behavior rides on it in test_delta_serve.py.
"""

import hashlib

import pytest

from repro.core import compress, decompress, open_container
from repro.delta import (
    EMPTY_BASE_HASH,
    SHARED_BASE_NAME,
    apply_chain,
    apply_patch,
    is_patch,
    is_shared_base,
    make_patch,
    patch_info,
    train_shared_base,
)
from repro.errors import BaseMismatch, CorruptContainer, DeltaError, LimitExceeded
from repro.isa import assemble
from repro.workloads import benchmark_program
from repro.workloads.versions import evolve_program, version_chain

ASM = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


def _container(value: int) -> bytes:
    return compress(assemble(ASM.format(value=value))).data


class TestPatchRoundTrip:
    def test_small_pair_reconstructs_exactly(self):
        base, target = _container(3), _container(9)
        patch = make_patch(base, target)
        assert apply_patch(base, patch) == target

    def test_corpus_version_pair_reconstructs_exactly(self):
        old_program = benchmark_program("xlisp", scale=0.05)
        new_program = evolve_program(old_program, seed=1)
        base, target = compress(old_program).data, compress(new_program).data
        patch = make_patch(base, target)
        rebuilt = apply_patch(base, patch)
        assert rebuilt == target
        assert decompress(rebuilt) == new_program

    def test_patch_is_deterministic(self):
        base, target = _container(3), _container(9)
        assert make_patch(base, target) == make_patch(base, target)

    def test_identity_patch(self):
        base = _container(4)
        assert apply_patch(base, make_patch(base, base)) == base

    def test_standalone_patch_applies_to_empty_base(self):
        target = _container(7)
        patch = make_patch(b"", target)
        assert patch_info(patch).standalone
        assert patch_info(patch).base_hash == EMPTY_BASE_HASH
        assert apply_patch(b"", patch) == target


class TestPatchHeader:
    def test_info_names_both_digests(self):
        base, target = _container(3), _container(9)
        info = patch_info(make_patch(base, target))
        assert info.base_hash == hashlib.sha256(base).digest()
        assert info.target_hash == hashlib.sha256(target).digest()
        assert info.base_len == len(base)
        assert info.target_len == len(target)

    def test_is_patch_sniffs_correctly(self):
        base, target = _container(3), _container(9)
        assert is_patch(make_patch(base, target))
        assert not is_patch(base)
        assert not is_patch(b"")
        assert not is_patch(b"\x01" + b"\x00" * 10)


class TestPatchSafety:
    def test_wrong_base_is_refused_before_reconstruction(self):
        base, other, target = _container(3), _container(5), _container(9)
        patch = make_patch(base, target)
        with pytest.raises(BaseMismatch):
            apply_patch(other, patch)

    def test_truncated_patch_fails_typed(self):
        base, target = _container(3), _container(9)
        patch = make_patch(base, target)
        for cut in range(len(patch)):
            with pytest.raises(CorruptContainer):
                apply_patch(base, patch[:cut])

    def test_oversized_target_declaration_hits_limits(self):
        from repro.core import DecodeLimits

        base, target = _container(3), _container(9)
        patch = make_patch(base, target)
        with pytest.raises(LimitExceeded):
            apply_patch(base, patch,
                        limits=DecodeLimits(max_blob_output=4))

    def test_forged_target_hash_is_caught(self):
        base, target = _container(3), _container(9)
        patch = bytearray(make_patch(base, target))
        patch[40] ^= 0xFF                     # inside the target digest
        with pytest.raises(DeltaError):
            apply_patch(base, bytes(patch))


class TestPatchChains:
    def test_chain_composes_across_releases(self):
        program = benchmark_program("xlisp", scale=0.05)
        chain = version_chain(program, releases=3, seed=2)
        containers = [compress(version).data for version in chain]
        patches = [make_patch(containers[i], containers[i + 1])
                   for i in range(len(containers) - 1)]
        assert apply_chain(containers[0], patches) == containers[-1]

    def test_empty_chain_is_identity(self):
        base = _container(3)
        assert apply_chain(base, []) == base

    def test_cycle_is_detected_before_application(self):
        base, target = _container(3), _container(9)
        forward = make_patch(base, target)
        backward = make_patch(target, base)
        with pytest.raises(DeltaError, match="visited"):
            apply_chain(base, [forward, backward, forward])


class TestSharedBase:
    def test_trained_base_is_a_valid_container(self):
        programs = [benchmark_program(name, scale=0.05)
                    for name in ("xlisp", "compress")]
        shared = train_shared_base(programs)
        assert is_shared_base(shared)
        reader = open_container(shared)
        assert reader.function_count == 0
        assert reader.sections.program_name == SHARED_BASE_NAME

    def test_corpus_member_diffs_against_shared_base(self):
        programs = [benchmark_program(name, scale=0.05)
                    for name in ("xlisp", "compress")]
        shared = train_shared_base(programs)
        target = compress(programs[0]).data
        patch = make_patch(shared, target)
        assert apply_patch(shared, patch) == target

    def test_budget_caps_the_dictionary(self):
        from repro.delta.shared import count_base_entries

        programs = [benchmark_program("xlisp", scale=0.05)]
        small = train_shared_base(programs, budget=4)
        counts, _ = count_base_entries([small])
        assert 0 < len(counts) <= 4

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            train_shared_base([], budget=0)

    def test_real_containers_are_not_shared_bases(self):
        assert not is_shared_base(_container(3))
        assert not is_shared_base(b"garbage")
