"""Tests for repro.isa.encoding and repro.isa.asm."""

import pytest
from hypothesis import given, settings

from repro.isa import (
    AsmError,
    Instruction,
    Op,
    assemble,
    decode_program,
    disassemble,
    encode_program,
    instruction_size,
    program_size,
    validate_program,
)
from repro.isa.encoding import function_byte_offsets

from .strategies import programs

EXAMPLE = """
# compute 10 iterations
func main
    li   r1, 10
loop:
    addi r1, r1, -1
    bnez r1, loop
    call helper
    ret
end

func helper
    mov r2, r1
    ret
end
"""


class TestAssembler:
    def test_assemble_example(self):
        program = assemble(EXAMPLE)
        assert [fn.name for fn in program.functions] == ["main", "helper"]
        validate_program(program)

    def test_labels_resolve_backward(self):
        program = assemble(EXAMPLE)
        bnez = program.functions[0].insns[2]
        assert bnez.op is Op.BNEZ
        assert bnez.target == 1

    def test_forward_label(self):
        program = assemble("""
func main
    beqz r1, done
    addi r1, r1, 1
done:
    ret
end
""")
        assert program.functions[0].insns[0].target == 2

    def test_call_by_name(self):
        program = assemble(EXAMPLE)
        call = program.functions[0].insns[3]
        assert call.op is Op.CALL
        assert call.target == 1

    def test_memory_operands(self):
        program = assemble("""
func main
    lw r1, 8(r29)
    sw r1, -4(r30)
    ret
end
""")
        lw, sw = program.functions[0].insns[:2]
        assert (lw.rd, lw.rs1, lw.imm) == (1, 29, 8)
        assert (sw.rs2, sw.rs1, sw.imm) == (1, 30, -4)

    def test_entry_is_main(self):
        program = assemble("""
func helper
    ret
end
func main
    ret
end
""")
        assert program.entry == 1

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble("func main\n    frobnicate r1\nend\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AsmError, match="undefined label"):
            assemble("func main\n    jmp nowhere\n    ret\nend\n")

    def test_duplicate_function_rejected(self):
        with pytest.raises(AsmError, match="duplicate function"):
            assemble("func a\n    ret\nend\nfunc a\n    ret\nend\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate label"):
            assemble("func a\nx:\nx:\n    ret\nend\n")

    def test_operand_count_checked(self):
        with pytest.raises(AsmError, match="expected 3 operands"):
            assemble("func a\n    add r1, r2\n    ret\nend\n")

    def test_missing_end_rejected(self):
        with pytest.raises(AsmError, match="missing end"):
            assemble("func a\n    ret\n")

    def test_empty_function_rejected(self):
        with pytest.raises(AsmError, match="empty"):
            assemble("func a\nend\n")

    def test_instruction_outside_func_rejected(self):
        with pytest.raises(AsmError, match="outside func"):
            assemble("    nop\nfunc a\n    ret\nend\n")

    def test_no_functions_rejected(self):
        with pytest.raises(AsmError, match="no functions"):
            assemble("    nop\n")

    def test_disassemble_roundtrip_example(self):
        program = assemble(EXAMPLE)
        text = disassemble(program)
        again = assemble(text)
        assert [fn.insns for fn in again.functions] == [fn.insns for fn in program.functions]


class TestEncoding:
    def test_roundtrip_example(self):
        program = assemble(EXAMPLE)
        decoded = decode_program(encode_program(program))
        assert decoded.name == program.name
        assert decoded.entry == program.entry
        assert [fn.insns for fn in decoded.functions] == [fn.insns for fn in program.functions]

    def test_instruction_size_small_alu(self):
        # addi: opcode + mode + rd + rs1 + 1-byte imm = 5 bytes
        insn = Instruction(op=Op.ADDI, rd=1, rs1=1, imm=4)
        assert instruction_size(insn, 0) == 5

    def test_instruction_size_nop(self):
        assert instruction_size(Instruction(op=Op.NOP), 0) == 1

    def test_wide_immediates_cost_more(self):
        small = Instruction(op=Op.LI, rd=1, imm=5)
        wide = Instruction(op=Op.LI, rd=1, imm=1 << 20)
        assert instruction_size(wide, 0) > instruction_size(small, 0)

    def test_program_size_sums_instructions(self):
        program = assemble(EXAMPLE)
        total = program_size(program)
        assert total == sum(
            instruction_size(insn, i)
            for fn in program.functions
            for i, insn in enumerate(fn.insns)
        )

    def test_function_byte_offsets_monotone(self):
        program = assemble(EXAMPLE)
        offsets, total = function_byte_offsets(program.functions[0])
        assert offsets == sorted(offsets)
        assert total > offsets[-1]


@given(programs())
@settings(max_examples=50)
def test_property_encode_decode_roundtrip(program):
    decoded = decode_program(encode_program(program))
    assert [fn.insns for fn in decoded.functions] == [fn.insns for fn in program.functions]


@given(programs(max_functions=3, max_function_size=15))
@settings(max_examples=30)
def test_property_disassemble_assemble_roundtrip(program):
    text = disassemble(program)
    again = assemble(text)
    assert [fn.insns for fn in again.functions] == [fn.insns for fn in program.functions]
