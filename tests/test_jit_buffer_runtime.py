"""Tests for the translation buffer policy and the constrained runtime."""

import pytest

from repro.errors import BufferCapacityError
from repro.jit import (
    PERMANENT_SIZE_THRESHOLD,
    PureLRUBuffer,
    PureRoundRobinBuffer,
    RuntimeConfig,
    SSD_COSTS,
    TranslationBuffer,
    baseline_execution_cycles,
    simulate,
    sweep_buffer_sizes,
)
from repro.workloads import TraceSpec, generate_trace


class TestBufferPolicy:
    def test_miss_then_hit(self):
        buf = TranslationBuffer(capacity=10_000)
        assert buf.call(0, 1000) is False
        assert buf.call(0, 1000) is True
        assert buf.stats.hits == 1
        assert buf.stats.misses == 1

    def test_small_functions_go_permanent(self):
        buf = TranslationBuffer(capacity=10_000)
        buf.call(0, PERMANENT_SIZE_THRESHOLD - 1)
        assert 0 in buf.permanent

    def test_large_function_starts_in_round_robin(self):
        buf = TranslationBuffer(capacity=100_000)
        buf.call(0, 5000)
        assert 0 in buf.round_robin

    def test_churned_function_promoted_to_permanent(self):
        # Re-translate a large function until size * count exceeds the
        # round-robin area.
        buf = TranslationBuffer(capacity=10_000)
        size = 4000
        churn = [1, 2, 3]  # other functions that force evictions
        promoted = False
        for round_ in range(10):
            buf.call(0, size)
            if 0 in buf.permanent:
                promoted = True
                break
            for other in churn:
                buf.call(other, 3000)
        assert promoted

    def test_eviction_is_fifo(self):
        buf = TranslationBuffer(capacity=10_000)
        buf.call(0, 4000)
        buf.call(1, 4000)
        buf.call(2, 4000)  # evicts function 0
        assert not buf.resident(0)
        assert buf.resident(1)
        assert buf.resident(2)

    def test_function_larger_than_buffer_rejected(self):
        buf = TranslationBuffer(capacity=1000)
        with pytest.raises(BufferCapacityError):
            buf.call(0, 2000)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TranslationBuffer(capacity=0)

    def test_translated_bytes_accumulate(self):
        buf = TranslationBuffer(capacity=5000)
        buf.call(0, 3000)
        buf.call(1, 3000)  # evicts 0
        buf.call(0, 3000)  # retranslation
        assert buf.stats.translated_bytes == 9000

    def test_permanent_area_never_exceeds_limit(self):
        buf = TranslationBuffer(capacity=10_000, permanent_fraction_limit=0.5)
        for findex in range(100):
            buf.call(findex, 400)  # small -> permanent candidates
        assert buf.permanent_bytes <= 5000

    def test_pure_round_robin_never_promotes(self):
        buf = PureRoundRobinBuffer(capacity=10_000)
        buf.call(0, 100)
        assert 0 not in buf.permanent

    def test_lru_refreshes_recency(self):
        buf = PureLRUBuffer(capacity=7000)
        buf.call(0, 3000)
        buf.call(1, 3000)
        buf.call(0, 3000)  # hit: refresh 0
        buf.call(2, 3000)  # evicts 1, not 0
        assert buf.resident(0)
        assert not buf.resident(1)


class TestRuntime:
    SIZES = [600, 5000, 8000, 1200, 3000]

    def _trace(self):
        return [0, 1, 2, 3, 4, 1, 2, 1, 0, 4] * 50

    def test_unconstrained_buffer_translates_once(self):
        trace = self._trace()
        config = RuntimeConfig(buffer_bytes=10**7, dictionary_bytes=1000,
                               costs=SSD_COSTS)
        result = simulate(self.SIZES, trace, config)
        assert result.translated_bytes == sum(self.SIZES)
        assert result.misses == len(self.SIZES)

    def test_tight_buffer_retranslates(self):
        trace = self._trace()
        loose = simulate(self.SIZES, trace,
                         RuntimeConfig(buffer_bytes=10**7, dictionary_bytes=0,
                                       costs=SSD_COSTS))
        tight = simulate(self.SIZES, trace,
                         RuntimeConfig(buffer_bytes=11_000, dictionary_bytes=0,
                                       costs=SSD_COSTS))
        assert tight.translated_bytes > loose.translated_bytes
        assert tight.hit_rate < loose.hit_rate

    def test_dictionary_charged_against_buffer(self):
        trace = self._trace()
        with_dict = simulate(self.SIZES, trace,
                             RuntimeConfig(buffer_bytes=20_000,
                                           dictionary_bytes=9_000,
                                           costs=SSD_COSTS))
        without = simulate(self.SIZES, trace,
                           RuntimeConfig(buffer_bytes=20_000,
                                         dictionary_bytes=0,
                                         costs=SSD_COSTS))
        assert with_dict.translated_bytes >= without.translated_bytes

    def test_buffer_smaller_than_dictionary_rejected(self):
        with pytest.raises(BufferCapacityError):
            simulate(self.SIZES, self._trace(),
                     RuntimeConfig(buffer_bytes=1000, dictionary_bytes=2000,
                                   costs=SSD_COSTS))

    def test_overhead_positive_and_grows_when_tight(self):
        trace = self._trace()
        baseline = baseline_execution_cycles(self.SIZES, trace)
        loose = simulate(self.SIZES, trace,
                         RuntimeConfig(buffer_bytes=10**7, dictionary_bytes=0,
                                       costs=SSD_COSTS))
        tight = simulate(self.SIZES, trace,
                         RuntimeConfig(buffer_bytes=11_000, dictionary_bytes=0,
                                       costs=SSD_COSTS))
        assert loose.overhead_pct(baseline) >= 0
        assert tight.overhead_pct(baseline) > loose.overhead_pct(baseline)


class TestSweep:
    def test_sweep_shapes(self):
        # A Zipf trace over 200 functions: hit rate should rise and
        # retranslation fall as the buffer grows.
        sizes = [400 + (i * 97) % 4000 for i in range(200)]
        trace = generate_trace(TraceSpec(function_count=200,
                                         calls_per_phase=4000, phases=3,
                                         seed=11))
        x86_size = int(sum(sizes) * 1.0)
        points = sweep_buffer_sizes(sizes, trace, x86_size,
                                    ratios=[0.2, 0.35, 0.5],
                                    dictionary_bytes=x86_size // 20,
                                    costs=SSD_COSTS)
        hit_rates = [p.hit_rate_pct for p in points]
        translated = [p.megabytes_translated for p in points]
        overheads = [p.overhead_pct for p in points]
        assert hit_rates == sorted(hit_rates)
        assert translated == sorted(translated, reverse=True)
        assert overheads == sorted(overheads, reverse=True)


class TestDeprecatedAlias:
    def test_buffer_error_alias_warns_and_resolves(self):
        import repro.jit

        with pytest.warns(DeprecationWarning, match="BufferCapacityError"):
            alias = repro.jit.BufferError_
        assert alias is BufferCapacityError

    def test_unknown_attribute_still_raises(self):
        import repro.jit

        with pytest.raises(AttributeError):
            repro.jit.NoSuchThing_
