"""Layout invariance: physical placement never changes decoded bytes.

The profile-guided layout (docs/LAYOUT.md) reorders item streams and
attaches an advisory hint section.  The format contract under test:

* decoding a profile-reordered container is **identical** to decoding
  the source-order container — same functions, same instructions, same
  wire encodings — for any program and any permutation;
* a corrupt profile-hint section degrades to no-hint behaviour (clean
  decode, hints gone), never to wrong bytes;
* a corrupt function-order section is *fatal* (a silent remap would
  attach the wrong body to a function name).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import codec_ids, compress_with, get_codec, open_any
from repro.core import compress as ssd_compress
from repro.core import container as container_mod
from repro.core import decompress
from repro.core.hints import ProfileHints, encode_hints
from repro.errors import CorruptContainer
from repro.faults.harness import sweep
from repro.isa.encoding import encode_function
from repro.profile import AccessProfile, LayoutPlan, build_plan

from .strategies import programs

CONCRETE = [cid for cid in codec_ids() if get_codec(cid).wire_id]


@st.composite
def programs_with_plans(draw):
    """A random program plus a random (valid) layout plan for it."""
    program = draw(programs(min_functions=2, max_functions=6))
    count = len(program.functions)
    order = draw(st.permutations(range(count)))
    hot = tuple(order[:max(1, count // 2)])
    edges = tuple((order[i], order[i + 1], draw(st.integers(1, 9)))
                  for i in range(count - 1)
                  if order[i] != order[i + 1])
    return program, LayoutPlan(order=tuple(order), hot=hot, edges=edges)


@settings(max_examples=40, deadline=None)
@given(programs_with_plans())
def test_reordered_decode_byte_identical(program_and_plan):
    program, plan = program_and_plan
    plain = ssd_compress(program).data
    profiled = ssd_compress(program, layout_plan=plan).data
    if plan.is_identity:
        # Identity placement still appends order + hint sections.
        assert len(profiled) >= len(plain)
    decoded_plain = decompress(plain)
    decoded_profiled = decompress(profiled)
    assert decoded_profiled == decoded_plain == program
    # Byte-identical, not just equal: compare each function's wire form.
    for fn_plain, fn_prof in zip(decoded_plain.functions,
                                 decoded_profiled.functions):
        assert encode_function(fn_plain) == encode_function(fn_prof)


@settings(max_examples=25, deadline=None)
@given(programs(min_functions=2, max_functions=5))
def test_all_codecs_decode_unchanged_by_planning(program):
    """Planning is an SSD container concern; every registered codec's
    decode of the same program stays equal to the source — and SSD's
    profiled decode matches all of them."""
    count = len(program.functions)
    plan = build_plan(
        AccessProfile.from_trace([i % count for i in range(3 * count)]),
        count)
    for codec_id in CONCRETE:
        options = {"layout_plan": plan} if codec_id == "ssd" else {}
        data = compress_with(codec_id, program, **options).data
        reader = open_any(data)
        decoded = [reader.function(f) for f in range(reader.function_count)]
        assert [fn.insns for fn in decoded] == \
            [fn.insns for fn in program.functions], codec_id


@pytest.fixture(scope="module")
def profiled_container():
    from repro.workloads import benchmark_program

    program = benchmark_program("word97", scale=0.02)
    count = len(program.functions)
    # Descending walk: the affinity chain packs functions in reverse,
    # so the plan genuinely moves bodies around.
    trace = [count - 1 - (i % count) for i in range(4 * count)]
    plan = build_plan(AccessProfile.from_trace(trace), count)
    assert not plan.is_identity
    return program, ssd_compress(program).data, \
        ssd_compress(program, layout_plan=plan).data


class TestHintFaultInjection:
    def _hint_region(self, data: bytes):
        report = container_mod.integrity_report(data)
        spans = {span.name: span for span in report.spans}
        assert "profile_hints" in spans and "function_order" in spans
        return spans

    def test_corrupt_hints_degrade_to_no_hint_same_bytes(
            self, profiled_container):
        program, _, profiled = profiled_container
        span = self._hint_region(profiled)["profile_hints"]
        for offset in range(span.data_offset,
                            span.data_offset + span.length,
                            max(1, span.length // 17)):
            corrupt = bytearray(profiled)
            corrupt[offset] ^= 0xFF
            sections = container_mod.parse(bytes(corrupt))
            assert sections.profile_hints_blob == b""  # hints dropped
            assert decompress(bytes(corrupt)) == program  # bytes intact

    def test_corrupt_order_is_fatal(self, profiled_container):
        _, _, profiled = profiled_container
        span = self._hint_region(profiled)["function_order"]
        for offset in range(span.data_offset,
                            span.data_offset + span.length,
                            max(1, span.length // 17)):
            corrupt = bytearray(profiled)
            corrupt[offset] ^= 0xFF
            with pytest.raises(CorruptContainer):
                container_mod.parse(bytes(corrupt))

    def test_sweep_harness_over_profiled_container(self, profiled_container):
        """Random structured corruption over the whole profiled
        container: every case either raises a typed error or decodes a
        valid program — never crashes, never silently mis-decodes."""
        _, _, profiled = profiled_container
        report = sweep(profiled, cases=60, seed=7)
        assert report.ok, report.format()

    def test_truncated_hint_section_degrades(self, profiled_container):
        program, _, profiled = profiled_container
        span = self._hint_region(profiled)["profile_hints"]
        # Slice a few bytes out of the hint payload: its CRC fails,
        # so the parse keeps the container and drops the hints.
        corrupt = profiled[:span.data_offset + span.length - 3] + \
            profiled[span.data_offset + span.length:]
        try:
            sections = container_mod.parse(corrupt)
        except CorruptContainer:
            return  # rejecting outright is also safe
        assert sections.profile_hints_blob == b""
        assert decompress(corrupt) == program

    def test_oversized_hint_payload_rejected_by_decoder(self):
        from repro.core.hints import MAX_HINT_EDGES, decode_hints
        from repro.lz.varint import ByteWriter

        writer = ByteWriter()
        writer.write_uvarint(1)  # version
        writer.write_uvarint(0)  # no hot entries
        writer.write_uvarint(MAX_HINT_EDGES + 1)
        with pytest.raises(CorruptContainer):
            decode_hints(writer.getvalue())

    def test_readers_expose_hints_until_corrupted(self, profiled_container):
        from repro.core.decompressor import open_container

        _, plain, profiled = profiled_container
        assert open_container(plain).profile_hints is None
        hints = open_container(profiled).profile_hints
        assert isinstance(hints, ProfileHints) and hints

    def test_undecodable_hint_blob_on_reader_degrades(self):
        """A hint blob that passes CRC but fails structural decode is
        still advisory: the reader answers ``None``."""
        from repro.core.decompressor import open_container
        from repro.isa import assemble

        program = assemble(
            "func main\n    li r1, 1\n    trap 1\n    ret\nend\n")
        data = ssd_compress(
            program, layout_plan=LayoutPlan.identity(1)).data
        sections = container_mod.parse(data)
        sections.profile_hints_blob = b"\xff\xff\xff\xff"  # bad version
        rebuilt = container_mod.serialize(sections)
        assert open_container(rebuilt).profile_hints is None

    def test_hints_without_order_rejected_at_serialize(self):
        from repro.isa import assemble

        program = assemble(
            "func main\n    li r1, 1\n    trap 1\n    ret\nend\n")
        sections = container_mod.parse(ssd_compress(program).data)
        sections.profile_hints_blob = encode_hints(
            ProfileHints(hot=(0,)))
        with pytest.raises(CorruptContainer):
            container_mod.serialize(sections)


class TestSerializeRoundTrip:
    def test_profiled_container_reserializes_identically(
            self, profiled_container):
        _, plain, profiled = profiled_container
        assert container_mod.serialize(
            container_mod.parse(profiled)) == profiled
        assert container_mod.serialize(container_mod.parse(plain)) == plain
