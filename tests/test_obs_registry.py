"""Tests for the metrics registry (repro.obs.registry)."""

import threading

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0
        assert counter.total() == 0

    def test_inc_default_and_amount(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(41)
        assert counter.value() == 42

    def test_labels_are_independent_series(self):
        counter = Counter("c_total", "help")
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 2
        assert counter.total() == 3

    def test_label_order_does_not_matter(self):
        counter = Counter("c_total", "help")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_rejects_negative_increment(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_expose_unlabeled_zero(self):
        lines = Counter("c_total", "things").expose()
        assert lines == [
            "# HELP c_total things",
            "# TYPE c_total counter",
            "c_total 0",
        ]

    def test_expose_sorted_labels(self):
        counter = Counter("c_total", "things")
        counter.inc(kind="b")
        counter.inc(kind="a")
        lines = counter.expose()
        assert lines[2] == 'c_total{kind="a"} 1'
        assert lines[3] == 'c_total{kind="b"} 1'


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_can_go_negative(self):
        gauge = Gauge("g", "help")
        gauge.dec(2)
        assert gauge.value() == -2


class TestHistogramBucketEdges:
    def test_value_on_boundary_lands_in_that_bucket(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        (series,) = hist.collect().values()
        # Cumulative counts: <=1.0 none, <=2.0 one, <=4.0 one.
        assert series["buckets"] == [(1.0, 0), (2.0, 1), (4.0, 1)]

    def test_value_above_last_bound_is_inf_only(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0))
        hist.observe(100.0)
        (series,) = hist.collect().values()
        assert series["buckets"] == [(1.0, 0), (2.0, 0)]
        assert series["count"] == 1
        assert series["sum"] == 100.0

    def test_zero_lands_in_first_bucket(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0))
        hist.observe(0.0)
        (series,) = hist.collect().values()
        assert series["buckets"] == [(1.0, 1), (2.0, 1)]

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly"):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly"):
            Histogram("h", "help", buckets=(2.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", "help", buckets=())

    def test_default_bucket_tables_are_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)

    def test_exposition_is_cumulative_with_inf(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        lines = hist.expose()
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_sum 11" in lines
        assert "h_count 3" in lines


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "ignored")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "help")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        assert "a" in registry
        assert "missing" not in registry
        assert registry.names() == ["a", "b_total"]

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total").inc(kind="x")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(registry.snapshot()))
        assert payload["c_total"]["kind"] == "counter"
        assert payload["c_total"]["series"]['{kind="x"}'] == 1
        assert payload["h"]["series"]["_"]["count"] == 1

    def test_expose_text_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "last").inc()
        registry.counter("a_total", "first").inc(2)
        text = registry.expose_text()
        assert text.index("a_total") < text.index("z_total")
        assert text == registry.expose_text()
        assert text.endswith("\n")

    def test_process_registry_has_instrumented_families(self):
        # Importing the instrumented subsystems registers their schema.
        import repro.core.compressor  # noqa: F401
        import repro.jit.buffer  # noqa: F401

        assert "compress_programs_total" in REGISTRY
        assert "jit_buffer_evictions_total" in REGISTRY


class TestThreadSafety:
    THREADS = 8
    ROUNDS = 2500

    def test_counter_hammer(self):
        counter = Counter("c_total", "help")
        barrier = threading.Barrier(self.THREADS)

        def hammer(tid):
            barrier.wait()
            for _ in range(self.ROUNDS):
                counter.inc()
                counter.inc(2, worker=tid % 2)

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == self.THREADS * self.ROUNDS
        assert counter.total() == 3 * self.THREADS * self.ROUNDS

    def test_histogram_hammer(self):
        hist = Histogram("h", "help", buckets=(0.5, 1.5))
        barrier = threading.Barrier(self.THREADS)

        def hammer(tid):
            barrier.wait()
            for index in range(self.ROUNDS):
                hist.observe(index % 3, worker=tid % 2)

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = self.THREADS * self.ROUNDS
        assert hist.total_count() == total
        combined = sum(series["count"] for series in hist.collect().values())
        assert combined == total

    def test_registry_get_or_create_hammer(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        families = []
        lock = threading.Lock()

        def hammer():
            barrier.wait()
            for index in range(200):
                family = registry.counter(f"m{index % 10}_total")
                family.inc()
                with lock:
                    families.append(family)

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(registry.names()) == 10
        # Every thread got the same family object per name.
        by_name = {}
        for family in families:
            by_name.setdefault(family.name, family)
            assert by_name[family.name] is family
        total = sum(registry.get(name).total() for name in registry.names())
        assert total == self.THREADS * 200
