"""Tests for repro.workloads.generator, profiles, traces and corpus."""

import pytest

from repro.isa import validate_program
from repro.vm import run_program
from repro.workloads import (
    PROFILES,
    ProgramGenerator,
    TraceSpec,
    benchmark_program,
    clear_cache,
    corpus,
    generate_trace,
    profile,
    trace_statistics,
    training_corpus,
)

SCALE = 0.15  # tests run on scaled-down programs


@pytest.fixture(scope="module")
def small_programs():
    programs = {name: benchmark_program(name, scale=SCALE)
                for name in ("compress", "xlisp", "go")}
    yield programs
    clear_cache()


class TestProfiles:
    def test_all_nine_benchmarks_present(self):
        names = {p.name for p in PROFILES}
        assert names == {"word97", "gcc", "vortex", "perl", "go", "ijpeg",
                         "m88ksim", "xlisp", "compress"}

    def test_profiles_ordered_by_size(self):
        sizes = [p.table1.x86_bytes for p in PROFILES]
        assert sizes == sorted(sizes, reverse=True)

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            profile("doom")

    def test_paper_reuse_consistency(self):
        # Table 1's reuse column equals total/unique (sanity on transcription).
        for p in PROFILES:
            t1 = p.table1
            assert t1.total_instructions / t1.unique_instructions == pytest.approx(
                t1.avg_reuse, abs=0.11)


class TestGenerator:
    def test_deterministic(self):
        p = profile("compress")
        a = ProgramGenerator(p, scale=0.5).generate()
        b = ProgramGenerator(p, scale=0.5).generate()
        assert [fn.insns for fn in a.functions] == [fn.insns for fn in b.functions]

    def test_different_seeds_differ(self):
        p = profile("compress")
        a = ProgramGenerator(p, scale=0.5, seed=1).generate()
        b = ProgramGenerator(p, scale=0.5, seed=2).generate()
        assert [fn.insns for fn in a.functions] != [fn.insns for fn in b.functions]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ProgramGenerator(profile("compress"), scale=0)

    def test_generated_programs_validate(self, small_programs):
        for program in small_programs.values():
            validate_program(program)

    def test_size_near_target(self, small_programs):
        for name, program in small_programs.items():
            target = profile(name).table1.total_instructions * SCALE
            # Tiny targets carry fixed per-function overhead, so give them
            # generous headroom; larger programs must land close.
            upper = max(2.0 * target, 600)
            assert 0.5 * target <= program.instruction_count <= upper

    def test_programs_terminate_and_produce_output(self, small_programs):
        for name, program in small_programs.items():
            result = run_program(program, fuel=8_000_000)
            assert result.halted, name
            assert result.output, f"{name} produced no output"

    def test_reuse_grows_with_program_size(self):
        # The paper's core observation: larger programs re-use instructions
        # more.  Compare a small and a larger instance of the same profile.
        p = profile("go")
        small = ProgramGenerator(p, scale=0.05).generate()
        large = ProgramGenerator(p, scale=0.5).generate()

        def reuse(program):
            keys = program.match_keys()
            return len(keys) / len(set(keys))

        assert reuse(large) > reuse(small)

    def test_entry_is_first_function(self, small_programs):
        for program in small_programs.values():
            assert program.entry == 0
            assert program.functions[0].name == "main"

    def test_call_graph_is_acyclic(self, small_programs):
        for program in small_programs.values():
            for findex, fn in enumerate(program.functions):
                for insn in fn.insns:
                    if insn.is_call:
                        assert insn.target > findex


class TestCorpus:
    def test_corpus_subset(self):
        pairs = corpus(scale=SCALE, names=["compress"])
        assert len(pairs) == 1
        assert pairs[0][0].name == "compress"

    def test_corpus_caching(self):
        a = benchmark_program("compress", scale=SCALE)
        b = benchmark_program("compress", scale=SCALE)
        assert a is b

    def test_training_corpus_excludes(self):
        programs = training_corpus(scale=SCALE, exclude="compress")
        assert all(p.name != "compress" for p in programs)
        assert len(programs) == 8

    def teardown_method(self):
        clear_cache()


class TestTraces:
    def test_trace_length(self):
        spec = TraceSpec(function_count=100, calls_per_phase=1000, phases=3,
                         cold_sweep=False)
        assert len(generate_trace(spec)) == 3000

    def test_cold_sweep_touches_every_non_core_function(self):
        spec = TraceSpec(function_count=100, calls_per_phase=200, phases=2,
                         core_fraction=0.0, cold_sweep=True)
        trace = generate_trace(spec)
        # Sweeps guarantee every non-core function appears at least once.
        assert len(set(trace)) >= 95

    def test_trace_deterministic(self):
        spec = TraceSpec(function_count=50, calls_per_phase=500, seed=9)
        assert generate_trace(spec) == generate_trace(spec)

    def test_trace_indices_in_range(self):
        spec = TraceSpec(function_count=40, calls_per_phase=500)
        trace = generate_trace(spec)
        assert all(0 <= f < 40 for f in trace)

    def test_popularity_is_skewed(self):
        spec = TraceSpec(function_count=200, calls_per_phase=5000)
        stats = trace_statistics(generate_trace(spec))
        # Top 10% of functions should take far more than 10% of calls.
        assert stats["top10pct_share"] > 0.4

    def test_phases_shift_working_set(self):
        spec = TraceSpec(function_count=300, calls_per_phase=3000, phases=3,
                         core_fraction=0.0)
        trace = generate_trace(spec)
        phase1 = set(trace[:3000])
        phase2 = set(trace[3000:6000])
        overlap = len(phase1 & phase2) / max(1, len(phase1))
        assert overlap < 0.5  # mostly disjoint without the shared core

    def test_core_functions_span_phases(self):
        spec = TraceSpec(function_count=300, calls_per_phase=3000, phases=3,
                         core_fraction=0.5, seed=3)
        trace = generate_trace(spec)
        phase1 = set(trace[:3000])
        phase3 = set(trace[6000:])
        assert phase1 & phase3  # the hot core appears in every phase

    def test_too_few_functions_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(function_count=1)

    def test_bad_core_fraction_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(function_count=10, core_fraction=1.5)

    def test_statistics_empty_trace(self):
        stats = trace_statistics([])
        assert stats["calls"] == 0
