"""Tests for ``repro.perf.parallel`` and the parallel compression pipeline.

The pipeline's contract is strict: ``compress(program, jobs=k)`` must be
*byte-identical* to ``compress(program, jobs=1)`` for any ``k`` — the
fan-out only changes how the work is scheduled, never what is computed.
"""

import pytest
from hypothesis import given, settings

from repro.core import compress, decompress
from repro.perf.parallel import fanout, get_shared, resolve_jobs
from repro.core.dictionary import _split_by_weight

from .strategies import programs


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_auto_uses_cpu_count(self):
        import os
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs("auto") == expected

    def test_explicit_counts(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(16) == 16

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


def _double_with_shared(x):
    return x * get_shared()


class TestFanout:
    def test_serial_path_preserves_order(self):
        assert fanout(_double_with_shared, [1, 2, 3], jobs=1, shared=10) \
            == [10, 20, 30]

    def test_parallel_path_matches_serial(self):
        tasks = list(range(20))
        serial = fanout(_double_with_shared, tasks, jobs=1, shared=3)
        parallel = fanout(_double_with_shared, tasks, jobs=2, shared=3)
        assert parallel == serial

    def test_empty_tasks(self):
        assert fanout(_double_with_shared, [], jobs=4) == []

    def test_shared_cleared_after_call(self):
        fanout(_double_with_shared, [1], jobs=1, shared=5)
        assert get_shared() is None


class TestSplitByWeight:
    def test_partition_preserves_order_and_content(self):
        items = [[0] * n for n in (5, 1, 8, 2, 2, 7)]
        chunks = _split_by_weight(items, 3)
        flat = [item for chunk in chunks for item in chunk]
        assert flat == items
        assert 1 <= len(chunks) <= 3

    def test_single_part(self):
        items = [[0], [0, 0]]
        assert _split_by_weight(items, 1) == [items]

    def test_more_parts_than_items(self):
        items = [[0], [0, 0]]
        chunks = _split_by_weight(items, 8)
        assert [item for chunk in chunks for item in chunk] == items


class TestParallelByteIdentical:
    """The headline property: jobs=k output is byte-for-byte serial output."""

    @settings(max_examples=6, deadline=None)
    @given(programs(min_functions=2, max_functions=6, max_function_size=25))
    def test_jobs2_identical_and_roundtrips(self, program):
        serial = compress(program, jobs=1)
        parallel = compress(program, jobs=2)
        assert parallel.data == serial.data
        restored = decompress(parallel.data)
        assert [fn.insns for fn in restored.functions] \
            == [fn.insns for fn in program.functions]

    @settings(max_examples=4, deadline=None)
    @given(programs(min_functions=2, max_functions=6, max_function_size=25))
    def test_jobs4_identical(self, program):
        assert compress(program, jobs=4).data == compress(program, jobs=1).data

    @settings(max_examples=4, deadline=None)
    @given(programs(min_functions=1, max_functions=4, max_function_size=20))
    def test_optimal_mode_jobs2_identical(self, program):
        serial = compress(program, match_mode="optimal", jobs=1)
        parallel = compress(program, match_mode="optimal", jobs=2)
        assert parallel.data == serial.data

    def test_jobs_auto_accepted(self):
        from repro.workloads import benchmark_program
        program = benchmark_program("go", scale=0.02)
        assert compress(program, jobs=0).data == compress(program).data
