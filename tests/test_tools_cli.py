"""Tests for the ``ssd`` file-level CLI (repro.tools)."""

import pytest

from repro.tools import ToolError, build_parser, load_program, main

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
"""


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "program.asm"
    path.write_text(ASM)
    return path


@pytest.fixture()
def ssd_file(tmp_path, asm_file):
    path = tmp_path / "program.ssd"
    assert main(["compress", str(asm_file), "-o", str(path)]) == 0
    return path


class TestLoadProgram:
    def test_asm_file(self, asm_file):
        program = load_program(str(asm_file))
        assert len(program.functions) == 2

    def test_missing_file(self):
        with pytest.raises(ToolError, match="no such file"):
            load_program("/nonexistent/path.asm")

    def test_bench_reference(self):
        program = load_program("bench:compress@0.2")
        assert program.name == "compress"

    def test_bench_default_scale(self):
        assert load_program("bench:compress").name == "compress"

    def test_bad_bench_name(self):
        with pytest.raises(ToolError, match="unknown benchmark"):
            load_program("bench:doom")

    def test_bad_scale(self):
        with pytest.raises(ToolError, match="bad scale"):
            load_program("bench:compress@fast")


class TestCommands:
    def test_compress_writes_container(self, ssd_file):
        assert ssd_file.read_bytes()[:4] == b"SSD2"

    def test_decompress_roundtrip(self, ssd_file, tmp_path, capsys):
        out = tmp_path / "out.asm"
        assert main(["decompress", str(ssd_file), "-o", str(out)]) == 0
        from repro.isa import assemble

        original = assemble(ASM)
        restored = assemble(out.read_text())
        assert [f.insns for f in restored.functions] == \
            [f.insns for f in original.functions]

    def test_decompress_to_stdout(self, ssd_file, capsys):
        assert main(["decompress", str(ssd_file)]) == 0
        assert "func main" in capsys.readouterr().out

    def test_inspect(self, ssd_file, capsys):
        assert main(["inspect", str(ssd_file)]) == 0
        out = capsys.readouterr().out
        assert "functions: 2" in out
        assert "segment 0" in out

    def test_inspect_function_disassembly(self, ssd_file, capsys):
        assert main(["inspect", str(ssd_file), "--function", "1"]) == 0
        assert "add r1, r2, r2" in capsys.readouterr().out

    def test_inspect_bad_function_index(self, ssd_file, capsys):
        assert main(["inspect", str(ssd_file), "--function", "9"]) == 2

    def test_run(self, ssd_file, capsys):
        assert main(["run", str(ssd_file)]) == 0
        assert capsys.readouterr().out.strip() == "12"

    def test_run_lazy(self, ssd_file, capsys):
        assert main(["run", str(ssd_file), "--lazy"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "12"
        assert "lazily decompressed" in captured.err

    def test_run_with_inputs(self, tmp_path, capsys):
        asm = tmp_path / "io.asm"
        asm.write_text("func main\n    trap 2\n    trap 1\n    ret\nend\n")
        ssd = tmp_path / "io.ssd"
        assert main(["compress", str(asm), "-o", str(ssd)]) == 0
        capsys.readouterr()
        assert main(["run", str(ssd), "--read", "42"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_compress_bench(self, tmp_path, capsys):
        out = tmp_path / "bench.ssd"
        assert main(["compress", "bench:compress@0.2", "-o", str(out)]) == 0
        assert out.exists()

    def test_error_returns_exit_code_2(self, tmp_path, capsys):
        out = tmp_path / "x.ssd"
        assert main(["compress", "/nope.asm", "-o", str(out)]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_matching(self, ssd_file, asm_file, capsys):
        assert main(["verify", str(ssd_file), str(asm_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_mismatch(self, ssd_file, tmp_path, capsys):
        other = tmp_path / "other.asm"
        other.write_text("func main\n    li r1, 1\n    trap 1\n    ret\nend\n")
        assert main(["verify", str(ssd_file), str(other)]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_verify_integrity_clean(self, ssd_file, capsys):
        assert main(["verify", str(ssd_file)]) == 0
        out = capsys.readouterr().out
        assert "checksums match" in out
        assert "crc ok" in out

    def test_verify_integrity_corrupt_exits_1(self, ssd_file, tmp_path, capsys):
        data = bytearray(ssd_file.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.ssd"
        bad.write_bytes(bytes(data))
        assert main(["verify", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out + captured.err

    def test_fuzz_clean_container(self, ssd_file, capsys):
        assert main(["fuzz", str(ssd_file), "--cases", "40"]) == 0
        out = capsys.readouterr().out
        assert "40 cases" in out and "result: OK" in out

    def test_fuzz_compresses_asm_input(self, asm_file, capsys):
        assert main(["fuzz", str(asm_file), "--cases", "20", "--seed", "7"]) == 0
        assert "seed 7" in capsys.readouterr().out

    def test_fuzz_rejects_non_container(self, tmp_path, capsys):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00" * 64)
        assert main(["fuzz", str(junk)]) == 2

    def test_fuzz_rejects_bad_cases(self, ssd_file, capsys):
        assert main(["fuzz", str(ssd_file), "--cases", "0"]) == 2

    def test_fuzz_non_ssd_codec(self, asm_file, capsys):
        assert main(["fuzz", str(asm_file), "--cases", "20",
                     "--codec", "brisc"]) == 0
        assert "result: OK" in capsys.readouterr().out


class TestCodecsCommand:
    def test_codecs_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for codec_id in ("ssd", "brisc", "lz77-raw", "auto"):
            assert codec_id in out

    def test_codecs_json(self, capsys):
        import json

        assert main(["codecs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = [row["id"] for row in payload["codecs"]]
        assert {"ssd", "brisc", "lz77-raw", "auto"} <= set(ids)
        for row in payload["codecs"]:
            assert row["description"]

    @pytest.mark.parametrize("codec", ["brisc", "lz77-raw", "auto"])
    def test_compress_with_codec_round_trips(self, asm_file, tmp_path,
                                             capsys, codec):
        ssd = tmp_path / f"{codec}.ssd"
        assert main(["compress", str(asm_file), "-o", str(ssd),
                     "--codec", codec]) == 0
        assert ssd.read_bytes()[:3] == b"SSD"
        assert main(["verify", str(ssd), str(asm_file)]) == 0
        assert main(["run", str(ssd), "--lazy"]) == 0
        assert "12" in capsys.readouterr().out

    def test_inspect_non_ssd_container(self, asm_file, tmp_path, capsys):
        import json

        ssd = tmp_path / "brisc.ssd"
        assert main(["compress", str(asm_file), "-o", str(ssd),
                     "--codec", "brisc"]) == 0
        assert main(["inspect", str(ssd), "--json", "--function", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payload = json.loads(lines[-1])
        assert payload["codec"] == "brisc"
        assert payload["format_version"] == 3
        assert payload["function_names"] == ["main", "double"]
        assert payload["function"]["name"] == "double"

    def test_verify_integrity_non_ssd_container(self, asm_file, tmp_path,
                                                capsys):
        ssd = tmp_path / "lz.ssd"
        assert main(["compress", str(asm_file), "-o", str(ssd),
                     "--codec", "lz77-raw"]) == 0
        capsys.readouterr()
        assert main(["verify", str(ssd)]) == 0
        assert "format v3" in capsys.readouterr().out

    def test_compress_unknown_codec_exits_2(self, asm_file, tmp_path, capsys):
        out = tmp_path / "x.ssd"
        assert main(["compress", str(asm_file), "-o", str(out),
                     "--codec", "nope"]) == 2
        assert "unknown codec" in capsys.readouterr().err


class TestJsonOutput:
    def test_inspect_json(self, ssd_file, capsys):
        import json

        assert main(["inspect", str(ssd_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "asm"
        assert payload["functions"] == 2
        assert payload["function_names"] == ["main", "double"]
        assert payload["entry"] == 0
        assert payload["entry_name"] == "main"
        assert payload["format_version"] == 2
        assert len(payload["container_id"]) == 64
        assert payload["container_bytes"] > 0
        assert payload["segments"] and "base_entries" in payload["segments"][0]
        assert isinstance(payload["sections"], dict)
        assert "function" not in payload

    def test_inspect_json_with_function(self, ssd_file, capsys):
        import json

        assert main(["inspect", str(ssd_file), "--json",
                     "--function", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["function"]["index"] == 1
        assert payload["function"]["name"] == "double"
        assert any("add" in text
                   for text in payload["function"]["instructions"])

    def test_verify_json_clean(self, ssd_file, capsys):
        import json

        assert main(["verify", str(ssd_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["error"] is None
        assert payload["corrupt_sections"] == []
        assert all(span["crc_ok"] for span in payload["sections"])

    def test_verify_json_corrupt(self, ssd_file, tmp_path, capsys):
        import json

        data = bytearray(ssd_file.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.ssd"
        bad.write_bytes(bytes(data))
        assert main(["verify", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_verify_json_against_source(self, ssd_file, asm_file, capsys):
        import json

        assert main(["verify", str(ssd_file), str(asm_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["outputs_match"] is True
        assert payload["mismatches"] == []
        assert payload["functions"] == 2

    def test_verify_json_source_mismatch(self, ssd_file, tmp_path, capsys):
        import json

        other = tmp_path / "other.asm"
        other.write_text("func main\n    li r1, 1\n    trap 1\n    ret\nend\n")
        assert main(["verify", str(ssd_file), str(other), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["mismatches"]


class TestServeClientCLI:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve import serve_in_thread

        with serve_in_thread() as handle:
            yield handle

    @pytest.fixture(scope="class")
    def address(self, server):
        return f"{server.address[0]}:{server.port}"

    def test_client_put_then_get(self, server, address, ssd_file, capsys):
        assert main(["client", address, "put", str(ssd_file)]) == 0
        container_id = capsys.readouterr().out.strip()
        assert len(container_id) == 64
        assert main(["client", address, "get", container_id]) == 0
        out = capsys.readouterr().out
        assert "program:   asm" in out
        assert "functions: 2" in out

    def test_client_get_function_disassembly(self, address, ssd_file, capsys):
        assert main(["client", address, "get", str(ssd_file),
                     "--function", "1"]) == 0
        out = capsys.readouterr().out
        assert "func double" in out
        assert "add r1, r2, r2" in out

    def test_client_run_matches_local(self, address, ssd_file, capsys):
        assert main(["run", str(ssd_file)]) == 0
        local = capsys.readouterr().out
        assert main(["client", address, "run", str(ssd_file)]) == 0
        captured = capsys.readouterr()
        assert captured.out == local
        assert "remotely fetched 2/2 functions" in captured.err

    def test_client_stats(self, address, ssd_file, capsys):
        import json

        assert main(["client", address, "stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "requests" in payload
        assert payload["decodes_total"] >= 2

    def test_client_remote_error_exits_1(self, address, capsys):
        assert main(["client", address, "get", "ee" * 32]) == 1
        assert "server error" in capsys.readouterr().err

    def test_client_bad_address(self, ssd_file, capsys):
        assert main(["client", "nonsense", "stats"]) == 2

    def test_client_connection_refused(self, ssd_file, capsys):
        assert main(["client", "127.0.0.1:1", "stats"]) == 2

    def test_client_missing_target(self, address, capsys):
        assert main(["client", address, "run"]) == 2

    def test_stats_text_exposition(self, address, ssd_file, capsys):
        assert main(["client", address, "put", str(ssd_file)]) == 0
        capsys.readouterr()
        assert main(["stats", address]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serve_requests_total counter" in out
        assert "# TYPE serve_request_seconds histogram" in out
        assert 'serve_requests_total{type="PUT_CONTAINER"}' in out

    def test_stats_json(self, address, capsys):
        import json

        assert main(["stats", address, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests_total"] >= 1
        assert "latency" in payload

    def test_stats_connection_refused(self, capsys):
        assert main(["stats", "127.0.0.1:1"]) == 2


class TestTraceOutput:
    def test_compress_trace_tree(self, asm_file, tmp_path, capsys):
        import json

        ssd = tmp_path / "t.ssd"
        trace = tmp_path / "trace.json"
        assert main(["compress", str(asm_file), "-o", str(ssd),
                     "--trace", str(trace)]) == 0
        tree = json.loads(trace.read_text())
        assert tree["name"] == "cli.compress"
        assert tree["duration_s"] > 0
        children = {child["name"] for child in tree["children"]}
        assert "compress" in children
        (compress_span,) = [child for child in tree["children"]
                            if child["name"] == "compress"]
        phases = [child["name"] for child in compress_span["children"]]
        assert "dictionary.base_entries" in phases
        assert "serialize" in phases
        assert all(child["duration_s"] is not None
                   for child in compress_span["children"])

    def test_run_trace_tree(self, ssd_file, tmp_path, capsys):
        import json

        trace = tmp_path / "runtrace.json"
        assert main(["run", str(ssd_file), "--lazy",
                     "--trace", str(trace)]) == 0
        tree = json.loads(trace.read_text())
        assert tree["name"] == "cli.run"
        names = {child["name"] for child in tree.get("children", [])}
        assert "container.open" in names


class TestServePortFile:
    def test_port_file_written_atomically(self, ssd_file, tmp_path):
        import os
        import subprocess
        import sys
        import time

        from repro.serve import ServeClient

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        port_file = tmp_path / "ssd.port"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools", "serve", "--port", "0",
             "--port-file", str(port_file), "--preload", str(ssd_file)],
            env={**os.environ, "PYTHONPATH": src_dir},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30.0
            while not port_file.exists():
                assert proc.poll() is None, "server exited before binding"
                assert time.monotonic() < deadline, "port file never appeared"
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            assert port > 0
            # No .tmp remnant: the write is temp-file + rename.
            assert not (tmp_path / "ssd.port.tmp").exists()
            with ServeClient("127.0.0.1", port, timeout=10.0) as client:
                assert client.stats()["requests_total"] >= 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestDeltaCommand:
    @pytest.fixture()
    def version_files(self, tmp_path):
        old_asm = tmp_path / "old.asm"
        old_asm.write_text(ASM)
        new_asm = tmp_path / "new.asm"
        new_asm.write_text(ASM.replace("li r2, 6", "li r2, 9"))
        old = tmp_path / "old.ssd"
        new = tmp_path / "new.ssd"
        assert main(["compress", str(old_asm), "-o", str(old)]) == 0
        assert main(["compress", str(new_asm), "-o", str(new)]) == 0
        return old, new

    def test_make_then_apply_is_byte_identical(self, version_files, tmp_path,
                                               capsys):
        old, new = version_files
        patch = tmp_path / "update.ssdp"
        out = tmp_path / "rebuilt.ssd"
        assert main(["delta", "make", str(old), str(new),
                     "-o", str(patch)]) == 0
        assert "patch" in capsys.readouterr().out
        assert main(["delta", "apply", str(old), str(patch),
                     "-o", str(out)]) == 0
        assert out.read_bytes() == new.read_bytes()

    def test_apply_with_wrong_base_fails_cleanly(self, version_files,
                                                 tmp_path, capsys):
        old, new = version_files
        patch = tmp_path / "update.ssdp"
        assert main(["delta", "make", str(old), str(new),
                     "-o", str(patch)]) == 0
        out = tmp_path / "rebuilt.ssd"
        assert main(["delta", "apply", str(new), str(patch),
                     "-o", str(out)]) == 1
        assert "expects base" in capsys.readouterr().err
        assert not out.exists()

    def test_make_missing_file_is_a_tool_error(self, version_files, tmp_path):
        old, _new = version_files
        assert main(["delta", "make", str(old), str(tmp_path / "nope.ssd"),
                     "-o", str(tmp_path / "p.ssdp")]) == 2

    def test_push_measures_wire_cost(self, version_files, capsys):
        from repro.serve import serve_in_thread

        old, new = version_files
        with serve_in_thread() as handle:
            assert main(["delta", "push",
                         f"127.0.0.1:{handle.port}",
                         str(old), str(new)]) == 0
        captured = capsys.readouterr()
        assert "verified" in captured.err
        assert len(captured.out.strip()) == 64


class TestInspectWireId:
    def test_inspect_json_surfaces_codec_wire_id(self, ssd_file, capsys):
        import json

        from repro.codecs import get_codec

        assert main(["inspect", str(ssd_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["codec"] == "ssd"
        assert payload["codec_wire_id"] == get_codec("ssd").wire_id

    def test_inspect_json_wire_id_for_other_codecs(self, asm_file, tmp_path,
                                                   capsys):
        import json

        from repro.codecs import get_codec

        path = tmp_path / "program.lz"
        assert main(["compress", str(asm_file), "-o", str(path),
                     "--codec", "lz77-raw"]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["codec"] == "lz77-raw"
        assert payload["codec_wire_id"] == get_codec("lz77-raw").wire_id
