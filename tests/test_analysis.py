"""Tests for repro.analysis (redundancy, ratios, overhead, report)."""

import pytest

from repro.analysis import (
    ascii_chart,
    measure_overhead,
    measure_redundancy,
    measure_sizes,
    render_table,
)
from repro.brisc import train
from repro.isa import assemble

WORKLOAD = """
func main
    li r2, 6
    li r3, 0
loop:
    lw r4, -8(r29)
    addi r4, r4, 3
    sw r4, -8(r29)
    add r3, r3, r2
    addi r2, r2, -1
    bnez r2, loop
    call leaf
    mov r1, r3
    trap 1
    ret
end
func leaf
    li r1, 7
    lw r4, -8(r29)
    addi r4, r4, 3
    sw r4, -8(r29)
    ret
end
"""


@pytest.fixture(scope="module")
def program():
    return assemble(WORKLOAD)


class TestRedundancy:
    def test_counts(self, program):
        stats = measure_redundancy(program)
        assert stats.total_instructions == program.instruction_count
        assert 0 < stats.unique_instructions <= stats.total_instructions
        assert stats.avg_reuse >= 1.0

    def test_repeated_triple_raises_top_sequence_reuse(self, program):
        stats = measure_redundancy(program)
        # lw/addi/sw appears twice
        assert stats.top_sequence_reuse >= 2.0

    def test_digram_reuse_at_least_one(self, program):
        assert measure_redundancy(program).digram_reuse >= 1.0

    def test_x86_bytes_override(self, program):
        assert measure_redundancy(program, x86_bytes=1234).x86_bytes == 1234


class TestSizes:
    def test_all_sizes_positive(self, program):
        report = measure_sizes(program)
        assert report.x86_bytes > 0
        assert report.ssd_bytes > 0
        assert report.vm_bytes > 0
        assert report.lz_bytes > 0
        assert report.brisc_bytes is None

    def test_ratios_computed(self, program):
        report = measure_sizes(program)
        assert report.ssd_ratio == report.ssd_bytes / report.x86_bytes
        assert report.brisc_ratio is None
        assert report.lz_ratio > 0

    def test_with_brisc_dictionary(self, program):
        dictionary = train([program], budget=200)
        report = measure_sizes(program, brisc_dictionary=dictionary)
        assert report.brisc_bytes > 0
        assert report.brisc_ratio is not None

    def test_section_accounting(self, program):
        report = measure_sizes(program)
        assert report.ssd_dictionary_bytes + report.ssd_item_bytes <= report.ssd_bytes

    def test_codec_sizes_covers_registry(self, program):
        from repro.analysis import codec_sizes

        sizes = codec_sizes(program)
        assert {"ssd", "brisc", "lz77-raw"} <= set(sizes)
        assert "auto" not in sizes  # selectors never land on disk
        assert all(size > 0 for size in sizes.values())

    def test_codec_sizes_explicit_candidates(self, program):
        from repro.analysis import codec_sizes
        from repro.core import compress

        sizes = codec_sizes(program, candidates=["ssd"])
        assert set(sizes) == {"ssd"}
        assert sizes["ssd"] == compress(program).size


class TestOverhead:
    def test_decomposition_consistent(self, program):
        report = measure_overhead(program, fuel=100_000)
        assert report.total_overhead_pct == pytest.approx(
            report.jit_overhead_pct + report.quality_overhead_pct, abs=1e-6)

    def test_quality_overhead_non_negative(self, program):
        # Unfused code can never be faster than fused code.
        report = measure_overhead(program, fuel=100_000)
        assert report.quality_overhead_pct >= 0

    def test_decompression_small_relative_to_execution(self, program):
        # The paper's headline: decompression contributes far less than
        # code quality at session scale.
        report = measure_overhead(program, fuel=100_000)
        assert report.jit_overhead_pct < 5.0

    def test_only_executed_functions_translated(self, program):
        report = measure_overhead(program, fuel=100_000)
        assert report.functions_executed == 2

    def test_bad_session_rejected(self, program):
        with pytest.raises(ValueError):
            measure_overhead(program, fuel=100_000, session_seconds=0)

    def test_reuses_caller_artifacts(self, program):
        from repro.core import compress
        from repro.vm import run_program

        result = run_program(program, fuel=100_000)
        data = compress(program).data
        report = measure_overhead(program, result=result, compressed_data=data)
        assert report.native_cycles > 0


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "long"], [[1, 2.5], [333, None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]
        assert "-" in lines[3]  # None cell

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_ascii_chart_contains_markers(self):
        out = ascii_chart({"s1": [1, 2, 3], "s2": [3, 2, 1]}, [0.1, 0.2, 0.3])
        assert "*" in out
        assert "+" in out
        assert "s1" in out

    def test_ascii_chart_validates_lengths(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [1, 2]}, [0.1])

    def test_ascii_chart_needs_series(self):
        with pytest.raises(ValueError):
            ascii_chart({}, [])

    def test_chart_handles_flat_series(self):
        out = ascii_chart({"flat": [5.0, 5.0]}, [0, 1])
        assert "flat" in out
