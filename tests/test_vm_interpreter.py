"""Tests for repro.vm.interpreter."""

import pytest

from repro.isa import assemble
from repro.vm import (
    ControlFault,
    Interpreter,
    MemoryFault,
    OutOfFuel,
    run_program,
)


def run_asm(text, inputs=None, fuel=100_000):
    return run_program(assemble(text), inputs=inputs, fuel=fuel)


class TestArithmetic:
    def test_countdown_loop(self):
        result = run_asm("""
func main
    li r1, 5
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bnez r1, loop
    mov r1, r2
    trap 1
    ret
end
""")
        assert result.output == [15]
        assert result.halted

    def test_signed_division(self):
        result = run_asm("""
func main
    li r1, -7
    li r2, 2
    divs r3, r1, r2
    mov r1, r3
    trap 1
    ret
end
""")
        assert result.output == [-3]  # truncates toward zero

    def test_division_by_zero_defined(self):
        result = run_asm("""
func main
    li r1, 9
    li r2, 0
    divs r3, r1, r2
    rems r4, r1, r2
    mov r1, r3
    trap 1
    mov r1, r4
    trap 1
    ret
end
""")
        assert result.output == [0, 9]

    def test_remainder_sign_follows_dividend(self):
        result = run_asm("""
func main
    li r1, -7
    li r2, 3
    rems r3, r1, r2
    mov r1, r3
    trap 1
    ret
end
""")
        assert result.output == [-1]

    def test_wrapping_add(self):
        result = run_asm("""
func main
    li r1, 2147483647
    addi r1, r1, 1
    trap 1
    ret
end
""")
        assert result.output == [-2147483648]

    def test_shift_amount_masked(self):
        result = run_asm("""
func main
    li r1, 1
    li r2, 33
    shl r3, r1, r2
    mov r1, r3
    trap 1
    ret
end
""")
        assert result.output == [2]  # 33 & 31 == 1

    def test_arithmetic_shift_right(self):
        result = run_asm("""
func main
    li r1, -8
    sari r1, r1, 1
    trap 1
    ret
end
""")
        assert result.output == [-4]

    def test_logical_shift_right(self):
        result = run_asm("""
func main
    li r1, -8
    shri r1, r1, 1
    slti r2, r1, 0
    mov r1, r2
    trap 1
    ret
end
""")
        assert result.output == [0]  # top bit cleared

    def test_slt_signed_vs_sltu(self):
        result = run_asm("""
func main
    li r1, -1
    li r2, 1
    slt r3, r1, r2
    sltu r4, r1, r2
    mov r1, r3
    trap 1
    mov r1, r4
    trap 1
    ret
end
""")
        assert result.output == [1, 0]

    def test_register_zero_is_hardwired(self):
        result = run_asm("""
func main
    li r0, 42
    mov r1, r0
    trap 1
    ret
end
""")
        assert result.output == [0]


class TestMemory:
    def test_store_load_roundtrip(self):
        result = run_asm("""
func main
    li r1, 123456
    li r2, 256
    sw r1, 0(r2)
    lw r3, 0(r2)
    mov r1, r3
    trap 1
    ret
end
""")
        assert result.output == [123456]

    def test_byte_sign_extension(self):
        result = run_asm("""
func main
    li r1, 255
    li r2, 64
    sb r1, 0(r2)
    lb r3, 0(r2)
    lbu r4, 0(r2)
    mov r1, r3
    trap 1
    mov r1, r4
    trap 1
    ret
end
""")
        assert result.output == [-1, 255]

    def test_halfword_sign_extension(self):
        result = run_asm("""
func main
    li r1, 65535
    li r2, 64
    sh r1, 0(r2)
    lh r3, 0(r2)
    lhu r4, 0(r2)
    mov r1, r3
    trap 1
    mov r1, r4
    trap 1
    ret
end
""")
        assert result.output == [-1, 65535]

    def test_little_endian_layout(self):
        result = run_asm("""
func main
    li r1, 258
    li r2, 64
    sw r1, 0(r2)
    lbu r3, 0(r2)
    lbu r4, 1(r2)
    mov r1, r3
    trap 1
    mov r1, r4
    trap 1
    ret
end
""")
        assert result.output == [2, 1]

    def test_out_of_range_load_faults(self):
        with pytest.raises(MemoryFault):
            run_asm("""
func main
    li r2, -4
    lw r1, 0(r2)
    ret
end
""")

    def test_out_of_range_store_faults(self):
        with pytest.raises(MemoryFault):
            run_asm("""
func main
    li r2, 1000000000
    sw r1, 0(r2)
    ret
end
""")


class TestControl:
    def test_call_and_return(self):
        result = run_asm("""
func main
    li r2, 20
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
""")
        assert result.output == [40]

    def test_nested_calls(self):
        result = run_asm("""
func main
    li r2, 3
    call a
    trap 1
    ret
end
func a
    call b
    addi r1, r1, 1
    ret
end
func b
    add r1, r2, r2
    ret
end
""")
        assert result.output == [7]

    def test_recursion(self):
        # factorial(5) with an explicit stack
        result = run_asm("""
func main
    li r2, 5
    call fact
    trap 1
    ret
end
func fact
    bnez r2, recurse
    li r1, 1
    ret
recurse:
    addi r29, r29, -8
    sw r31, 0(r29)
    sw r2, 4(r29)
    addi r2, r2, -1
    call fact
    lw r2, 4(r29)
    lw r31, 0(r29)
    addi r29, r29, 8
    mul r1, r1, r2
    ret
end
""", fuel=10_000)
        assert result.output == [120]

    def test_ret_from_entry_halts(self):
        result = run_asm("func main\n    ret\nend\n")
        assert result.halted
        assert result.output == []

    def test_halt_stops_execution(self):
        result = run_asm("""
func main
    li r1, 1
    trap 1
    halt
end
""")
        assert result.output == [1]

    def test_fuel_exhaustion(self):
        with pytest.raises(OutOfFuel):
            run_asm("""
func main
spin:
    jmp spin
end
""", fuel=100)

    def test_trap_read_consumes_inputs(self):
        result = run_asm("""
func main
    trap 2
    trap 1
    trap 2
    trap 1
    ret
end
""", inputs=[11, 22])
        assert result.output == [11, 22]

    def test_trap_read_exhausted_returns_zero(self):
        result = run_asm("""
func main
    trap 2
    trap 1
    ret
end
""", inputs=[])
        assert result.output == [0]

    def test_unknown_trap_faults(self):
        with pytest.raises(ControlFault):
            run_asm("func main\n    trap 99\n    ret\nend\n")

    def test_indirect_call(self):
        result = run_asm("""
func main
    li r3, 1
    callr r3
    trap 1
    ret
end
func target
    li r1, 77
    ret
end
""")
        assert result.output == [77]

    def test_indirect_call_bad_target_faults(self):
        with pytest.raises(ControlFault):
            run_asm("""
func main
    li r3, 99
    callr r3
    ret
end
""")


class TestProfile:
    def test_profile_counts_loop_body(self):
        result = run_asm("""
func main
    li r1, 4
loop:
    addi r1, r1, -1
    bnez r1, loop
    ret
end
""")
        assert result.profile[(0, 1)] == 4  # addi executed 4 times
        assert result.profile[(0, 0)] == 1

    def test_call_counts_and_sequence(self):
        result = run_asm("""
func main
    call f
    call f
    ret
end
func f
    ret
end
""")
        assert result.call_counts[1] == 2
        assert result.call_sequence == [0, 1, 1]

    def test_profile_disabled(self):
        program = assemble("func main\n    ret\nend\n")
        result = Interpreter(collect_profile=False).run(program)
        assert result.profile == {}

    def test_steps_counted(self):
        result = run_asm("func main\n    nop\n    nop\n    ret\nend\n")
        assert result.steps == 3


class TestInterpreterConfig:
    def test_bad_memory_size_rejected(self):
        with pytest.raises(ValueError):
            Interpreter(memory_size=0)
        with pytest.raises(ValueError):
            Interpreter(memory_size=1001)
