"""Tests for lazy incremental decompression (repro.core.lazy)."""

import pytest

from repro.core import compress
from repro.core.lazy import lazy_program
from repro.isa import assemble
from repro.vm import run_program

SOURCE = """
func main
    li r2, 3
    call used
    trap 1
    ret
end
func used
    add r1, r2, r2
    ret
end
func never_called
    li r1, 999
    ret
end
func also_dead
    li r1, 998
    ret
end
"""


@pytest.fixture()
def lazy():
    return lazy_program(compress(assemble(SOURCE)).data)


class TestLazyProgram:
    def test_nothing_materialized_up_front(self, lazy):
        assert lazy.decompressed_count == 0

    def test_runs_directly_in_interpreter(self, lazy):
        result = run_program(lazy)
        assert result.output == [6]

    def test_only_executed_functions_decompressed(self, lazy):
        run_program(lazy)
        assert lazy.decompressed_functions == {0, 1}
        assert lazy.decompressed_fraction == pytest.approx(0.5)

    def test_output_matches_eager_decompression(self):
        program = assemble(SOURCE)
        data = compress(program).data
        eager = run_program(program)
        lazy = lazy_program(data)
        assert run_program(lazy).output == eager.output

    def test_materialized_functions_cached(self, lazy):
        first = lazy.functions[1]
        second = lazy.functions[1]
        assert first is second

    def test_materialized_matches_original(self, lazy):
        program = assemble(SOURCE)
        for findex in range(len(program.functions)):
            assert lazy.functions[findex].insns == program.functions[findex].insns

    def test_len_and_iteration(self, lazy):
        assert len(lazy.functions) == 4
        names = [fn.name for fn in lazy.functions]
        assert names == ["main", "used", "never_called", "also_dead"]

    def test_negative_index(self, lazy):
        assert lazy.functions[-1].name == "also_dead"

    def test_out_of_range_rejected(self, lazy):
        with pytest.raises(IndexError):
            lazy.functions[99]

    def test_slicing_rejected(self, lazy):
        with pytest.raises(TypeError):
            lazy.functions[0:2]

    def test_prefetch(self, lazy):
        lazy.prefetch([2, 3])
        assert lazy.decompressed_functions == {2, 3}

    def test_metadata_exposed(self, lazy):
        assert lazy.entry == 0
        assert lazy.name == "asm"
        assert lazy.reader.function_count == 4


class TestPrefetch:
    def test_prefetch_already_materialized_is_idempotent(self, lazy):
        lazy.prefetch([1])
        first = lazy.functions[1]
        lazy.prefetch([1, 1])
        assert lazy.functions[1] is first
        assert lazy.decompressed_functions == {1}
        assert lazy.decompressed_count == 1

    def test_prefetch_out_of_range_raises(self, lazy):
        with pytest.raises(IndexError):
            lazy.prefetch([99])
        with pytest.raises(IndexError):
            lazy.prefetch([-5])

    def test_prefetch_partial_failure_keeps_earlier_fetches(self, lazy):
        # Indices are fetched in order; the bad one raises after the
        # good one has already landed.
        with pytest.raises(IndexError):
            lazy.prefetch([2, 99])
        assert lazy.decompressed_functions == {2}

    def test_prefetch_everything(self, lazy):
        lazy.prefetch(range(len(lazy.functions)))
        assert lazy.decompressed_fraction == 1.0

    def test_prefetch_empty_is_a_noop(self, lazy):
        lazy.prefetch([])
        assert lazy.decompressed_count == 0


class TestDecompressedFraction:
    def test_fraction_starts_at_zero(self, lazy):
        assert lazy.decompressed_fraction == 0.0

    def test_fraction_tracks_each_materialization(self, lazy):
        lazy.functions[0]
        assert lazy.decompressed_fraction == pytest.approx(0.25)
        lazy.functions[3]
        assert lazy.decompressed_fraction == pytest.approx(0.5)
        # Re-touching an already materialized function changes nothing.
        lazy.functions[0]
        assert lazy.decompressed_fraction == pytest.approx(0.5)

    def test_two_lazy_views_track_independently(self):
        data = compress(assemble(SOURCE)).data
        first = lazy_program(data)
        second = lazy_program(data)
        first.functions[0]
        assert first.decompressed_count == 1
        assert second.decompressed_count == 0


class TestLazyBenchmark:
    def test_benchmark_program_runs_lazily(self):
        from repro.workloads import benchmark_program, clear_cache

        program = benchmark_program("compress", scale=0.5)
        data = compress(program).data
        lazy = lazy_program(data)
        eager = run_program(program, fuel=3_000_000)
        result = run_program(lazy, fuel=3_000_000)
        assert result.output == eager.output
        # A phased driver never touches everything.
        assert 0 < lazy.decompressed_count <= len(program.functions)
        clear_cache()
