"""Tests for basic-block-granularity translation."""

import pytest

from repro.core import CopyPhaseError, compress, open_container
from repro.core.copy_phase import copy_translate
from repro.isa import assemble
from repro.jit.block_translator import BlockTranslator, copy_translate_range

SOURCE = """
func main
    li r2, 9
loop:
    addi r2, r2, -1
    bnez r2, loop
    beqz r2, out
    nop
out:
    call helper
    trap 1
    ret
end
func helper
    li r1, 3
    ret
end
"""


@pytest.fixture()
def translator():
    reader = open_container(compress(assemble(SOURCE)).data)
    return BlockTranslator(reader)


class TestBlockLeaders:
    def test_item_zero_is_leader(self, translator):
        assert translator.block_leaders(0)[0] == 0

    def test_branch_targets_are_leaders(self, translator):
        items = translator.items_of(0)
        leaders = set(translator.block_leaders(0))
        for item_index, item in enumerate(items):
            if item.branch_displacement is not None:
                assert item_index + 1 + item.branch_displacement in leaders

    def test_blocks_partition_items(self, translator):
        leaders = translator.block_leaders(0)
        items = translator.items_of(0)
        covered = []
        for position, leader in enumerate(leaders):
            end = leaders[position + 1] if position + 1 < len(leaders) else len(items)
            covered.extend(range(leader, end))
        assert covered == list(range(len(items)))


class TestRangeTranslation:
    def test_whole_function_equals_monolithic(self, translator):
        # Translating every block and concatenating must produce the same
        # bytes as whole-function translation (external holes aside: the
        # monolithic path patches them, the fragments report them).
        items = translator.items_of(0)
        table = translator.tables.for_function(translator.reader, 0)
        whole = copy_translate(items, table)
        fragments = translator.translate_whole_function(0)
        stitched = bytearray()
        for fragment in fragments:
            stitched += fragment.code
        assert len(stitched) == whole.size
        # Bytes identical except inside external-branch holes.
        hole_positions = set()
        offset = 0
        for fragment in fragments:
            for ext in fragment.external_branches:
                for position in range(ext.hole_offset, ext.hole_offset + ext.hole_size):
                    hole_positions.add(offset + position)
            offset += fragment.size
        for position, (a, b) in enumerate(zip(stitched, whole.code)):
            if position not in hole_positions:
                assert a == b, f"byte {position} differs outside any hole"

    def test_external_branches_resolvable(self, translator):
        # Every external branch must target a block leader.
        leaders = set(translator.block_leaders(0))
        for fragment in translator.translate_whole_function(0):
            for ext in fragment.external_branches:
                assert ext.target_item in leaders

    def test_in_range_branch_patched(self, translator):
        # The backward loop branch stays within its block range only if
        # its target is in range; translate the whole function as one
        # range and check there are no externals.
        items = translator.items_of(0)
        table = translator.tables.for_function(translator.reader, 0)
        fragment = copy_translate_range(items, table, 0, len(items))
        assert fragment.external_branches == []

    def test_call_relocations_surface(self, translator):
        fragments = translator.translate_whole_function(0)
        callees = [r.callee for f in fragments for r in f.call_relocations]
        assert callees == [1]

    def test_bad_range_rejected(self, translator):
        items = translator.items_of(0)
        table = translator.tables.for_function(translator.reader, 0)
        with pytest.raises(CopyPhaseError, match="bad item range"):
            copy_translate_range(items, table, 3, 1)

    def test_fragments_cached(self, translator):
        first = translator.translate_block(0, 0)
        second = translator.translate_block(0, 0)
        assert first is second
        assert translator.blocks_translated >= 1

    def test_block_range_covers_item(self, translator):
        items = translator.items_of(0)
        for item_index in range(len(items)):
            start, end = translator.block_range(0, item_index)
            assert start <= item_index < end

    def test_out_of_range_item_rejected(self, translator):
        with pytest.raises(CopyPhaseError):
            translator.block_range(0, 999)


class TestIncrementality:
    def test_single_block_touch_translates_one_block(self, translator):
        translator.translate_block(0, 0)
        assert translator.blocks_translated == 1

    def test_benchmark_function_block_by_block(self):
        from repro.workloads import benchmark_program, clear_cache

        program = benchmark_program("compress", scale=0.3)
        reader = open_container(compress(program).data)
        translator = BlockTranslator(reader)
        fragments = translator.translate_whole_function(1)
        assert sum(f.size for f in fragments) > 0
        clear_cache()
