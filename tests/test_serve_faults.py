"""Flaky-transport fault injection against a live server (satellite 3).

The contract: under seeded dropped/delayed/truncated/corrupted frames the
server always answers with a protocol error or the client times out
cleanly — it never hangs, never crashes its event loop, and keeps
serving well-formed requests afterwards.
"""

import pytest

from repro.core import compress
from repro.errors import FaultInjectionError
from repro.faults import (
    TRANSPORT_KINDS,
    FlakyTransport,
    TransportFault,
    transport_sweep,
)
from repro.isa import assemble
from repro.serve import ServeClient, ServerConfig, protocol, serve_in_thread

ASM = """
func main
    li r2, 6
    call double
    trap 1
    ret
end
func double
    add r1, r2, r2
    ret
end
"""


def stats_frame() -> bytes:
    return protocol.encode_frame(
        protocol.Message(type=protocol.STATS, request_id=1))


class TestFlakyTransport:
    def test_same_seed_same_plan(self):
        first = FlakyTransport(seed=7).plan(50, 33)
        second = FlakyTransport(seed=7).plan(50, 33)
        assert first == second

    def test_different_seed_different_plan(self):
        assert FlakyTransport(seed=1).plan(50, 33) != \
            FlakyTransport(seed=2).plan(50, 33)

    def test_plan_covers_all_kinds(self):
        kinds = {fault.kind for fault in FlakyTransport(seed=0).plan(200, 64)}
        assert kinds == set(TRANSPORT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FlakyTransport(kinds=("deliver", "mangle"))

    def test_empty_kinds_rejected(self):
        with pytest.raises(FaultInjectionError):
            FlakyTransport(kinds=())

    def test_apply_deliver_is_identity(self):
        transport = FlakyTransport()
        fault = TransportFault(index=0, kind="deliver")
        assert transport.apply(b"abc", fault) == b"abc"

    def test_apply_drop_sends_nothing(self):
        fault = TransportFault(index=0, kind="drop")
        assert FlakyTransport().apply(b"abc", fault) is None

    def test_apply_truncate_is_a_prefix(self):
        fault = TransportFault(index=0, kind="truncate", position=2)
        assert FlakyTransport().apply(b"abcdef", fault) == b"ab"

    def test_apply_corrupt_flips_exactly_one_byte(self):
        frame = b"abcdef"
        fault = TransportFault(index=0, kind="corrupt", position=3)
        mutated = FlakyTransport().apply(frame, fault)
        assert len(mutated) == len(frame)
        diffs = [i for i, (a, b) in enumerate(zip(frame, mutated)) if a != b]
        assert diffs == [3]

    def test_apply_garbage_is_deterministic(self):
        fault = TransportFault(index=5, kind="garbage", position=16)
        assert FlakyTransport(seed=3).apply(b"x", fault) == \
            FlakyTransport(seed=3).apply(b"x", fault)


class TestSweep:
    @pytest.fixture(scope="class")
    def server(self):
        config = ServerConfig(request_timeout=5.0)
        with serve_in_thread(config=config) as handle:
            yield handle

    def test_sweep_never_hangs_or_crashes(self, server):
        """The acceptance sweep: zero unexpected outcomes, healthy after."""
        report = transport_sweep(*server.address, stats_frame(),
                                 cases=120, seed=1234, timeout=2.0)
        assert report.total == 120
        assert report.ok, report.format()
        assert report.unexpected == []
        # The sweep exercised more than the happy path.
        assert report.count("answered") > 0
        assert report.count("closed") > 0

    def test_corrupt_frames_are_refused_not_served(self, server):
        report = transport_sweep(*server.address, stats_frame(),
                                 cases=60, seed=9, timeout=2.0,
                                 kinds=("corrupt",))
        assert report.ok, report.format()
        # A flipped byte must never be accepted as a valid request:
        # every case is either an ERROR frame (CRC/version/parse reject)
        # or a close — the CRC canary at work on the wire.
        assert report.count("answered") == 0

    def test_server_still_serves_real_requests_after_sweep(self, server):
        transport_sweep(*server.address, stats_frame(),
                        cases=40, seed=7, timeout=2.0)
        container = compress(assemble(ASM)).data
        with ServeClient(*server.address) as client:
            container_id, count, _ = client.put(container)
            assert count == 2
            function = client.function(container_id, 1)
            assert function.name == "double"
        assert server.is_alive()

    def test_report_format_is_printable(self, server):
        report = transport_sweep(*server.address, stats_frame(),
                                 cases=10, seed=0, timeout=2.0)
        text = report.format()
        assert "transport sweep: 10 cases" in text
        assert "server healthy after sweep: yes" in text

    def test_sweep_rejects_non_positive_cases(self, server):
        with pytest.raises(FaultInjectionError):
            transport_sweep(*server.address, stats_frame(), cases=0)
