"""Unit and property tests for repro.lz.delta and repro.lz.lz77."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lz.delta import decode_deltas, encode_deltas
from repro.lz.lz77 import compress, decompress


class TestDelta:
    def test_empty_sequence(self):
        assert decode_deltas(encode_deltas([])) == []

    def test_single_value(self):
        assert decode_deltas(encode_deltas([42])) == [42]

    def test_monotone_run_is_compact(self):
        values = list(range(1000, 2000))
        encoded = encode_deltas(values)
        # 1000 deltas of +1 -> roughly one byte each plus header.
        assert len(encoded) < 1100
        assert decode_deltas(encoded) == values

    def test_large_deltas_use_escape(self):
        values = [0, 10**6, -(10**6), 0]
        assert decode_deltas(encode_deltas(values)) == values

    def test_negative_start(self):
        values = [-500, -400, -650]
        assert decode_deltas(encode_deltas(values)) == values

    def test_boundary_deltas(self):
        # Exactly at the small-delta boundary, both sides.
        values = [0, 127, 0, -127, 0, 128, 0, -128]
        assert decode_deltas(encode_deltas(values)) == values

    def test_sorted_field_beats_raw_varints(self):
        # The use case from the paper: a sorted immediate field.
        values = sorted((v * 37) % 5000 for v in range(2000))
        encoded = encode_deltas(values)
        raw_size = 2 * len(values)  # 16-bit literal encoding
        assert len(encoded) < raw_size


class TestLZ77:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"abc"
        assert decompress(compress(data)) == data

    def test_repetitive_input_compresses(self):
        data = b"the quick brown fox " * 200
        compressed = compress(data)
        assert len(compressed) < len(data) // 5
        assert decompress(compressed) == data

    def test_overlapping_copy(self):
        # A run like 'aaaa...' forces distance < length (overlap).
        data = b"a" * 1000
        compressed = compress(data)
        assert decompress(compressed) == data
        assert len(compressed) < 40

    def test_incompressible_random_bytes_roundtrip(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(4096))
        assert decompress(compress(data)) == data

    def test_binary_with_structure(self):
        # Simulates concatenated sorted instruction groups: repeated
        # 4-byte records with slowly varying fields.
        records = b"".join(
            bytes([op, i % 16, 0, 0])
            for op in range(16)
            for i in range(64)
        )
        compressed = compress(records)
        assert decompress(compressed) == records
        assert len(compressed) < len(records)

    def test_corrupt_distance_detected(self):
        from repro.lz.varint import ByteWriter

        w = ByteWriter()
        w.write_uvarint(10)  # claim 10 bytes
        w.write_uvarint(1)   # match of length 4
        w.write_uvarint(5)   # distance 5 with empty output -> corrupt
        with pytest.raises(ValueError):
            decompress(w.getvalue())


@given(st.binary(max_size=2048))
@settings(max_examples=60)
def test_property_lz77_roundtrip(data):
    assert decompress(compress(data)) == data


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
def test_property_delta_roundtrip(values):
    assert decode_deltas(encode_deltas(values)) == values


@given(st.binary(min_size=1, max_size=512), st.integers(min_value=2, max_value=8))
@settings(max_examples=30)
def test_property_lz77_repetition_always_helps(chunk, repeats):
    data = chunk * (repeats * 8)
    assert len(compress(data)) < len(data) + 16
    assert decompress(compress(data)) == data
