"""Patch-aware fault injection (repro.faults PatchCorruptor/patch_sweep).

The sweep is the apply-side acceptance proof: no corruption of a patch
— header lie, truncated diff, chain cycle, or random bit flip — may
make ``apply_patch`` return container bytes other than the true target.
"""

import pytest

from repro.core import compress
from repro.delta import apply_chain, apply_patch, make_patch
from repro.errors import (
    BaseMismatch,
    DeltaError,
    FaultInjectionError,
    ReproError,
)
from repro.faults import PATCH_KINDS, PatchCorruptor, patch_sweep
from repro.isa import assemble
from repro.workloads import benchmark_program
from repro.workloads.versions import evolve_program

ASM = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


def _pair():
    base = compress(assemble(ASM.format(value=3))).data
    target = compress(assemble(ASM.format(value=9))).data
    return base, target


class TestPatchCorruptor:
    def test_deterministic_per_seed_and_index(self):
        base, target = _pair()
        patch = make_patch(base, target)
        a = PatchCorruptor(patch, seed=5)
        b = PatchCorruptor(patch, seed=5)
        for index in range(8):
            assert a.corruption(index) == b.corruption(index)
        assert a.corruption(0).data != PatchCorruptor(patch, seed=6) \
            .corruption(0).data

    def test_kinds_cycle_round_robin(self):
        base, target = _pair()
        corruptor = PatchCorruptor(make_patch(base, target), seed=0)
        kinds = [corruption.kind for corruption
                 in corruptor.corruptions(len(PATCH_KINDS))]
        # degenerate draws may degrade to bitflip, but the scheduled
        # kinds must cover the full vocabulary over one cycle
        assert set(kinds) <= set(PATCH_KINDS)
        assert "base_hash_lie" in kinds and "diff_truncate" in kinds

    def test_base_hash_lie_triggers_base_mismatch(self):
        base, target = _pair()
        patch = make_patch(base, target)
        corruption = PatchCorruptor(patch, seed=1,
                                    kinds=("base_hash_lie",)).corruption(0)
        with pytest.raises(BaseMismatch):
            apply_patch(base, corruption.data)

    def test_chain_cycle_is_refused_by_the_chain_applier(self):
        base, target = _pair()
        patch = make_patch(base, target)
        cyclic = PatchCorruptor(patch, seed=1,
                                kinds=("chain_cycle",)).corruption(0)
        # the forged patch claims base -> base: applying it would revisit
        # the chain's starting state, which the cycle detector refuses
        with pytest.raises(DeltaError, match="visited"):
            apply_chain(base, [cyclic.data])

    def test_rejects_headerless_input(self):
        with pytest.raises(FaultInjectionError):
            PatchCorruptor(b"short")

    def test_rejects_unknown_kind(self):
        base, target = _pair()
        with pytest.raises(FaultInjectionError):
            PatchCorruptor(make_patch(base, target), kinds=("blob_swap",))


class TestPatchSweep:
    def test_small_pair_sweep_is_clean(self):
        base, target = _pair()
        report = patch_sweep(base, target, cases=200, seed=0)
        assert report.total == 200
        assert report.ok, report.format()
        assert report.typed_errors > 0

    def test_corpus_pair_sweep_is_clean(self):
        old_program = benchmark_program("xlisp", scale=0.05)
        new_program = evolve_program(old_program, seed=1)
        base = compress(old_program).data
        target = compress(new_program).data
        report = patch_sweep(base, target, cases=150, seed=2)
        assert report.ok, report.format()

    def test_sweep_is_replayable(self):
        base, target = _pair()
        a = patch_sweep(base, target, cases=50, seed=4)
        b = patch_sweep(base, target, cases=50, seed=4)
        assert [(c.kind, c.outcome) for c in a.cases] == \
            [(c.kind, c.outcome) for c in b.cases]

    def test_every_outcome_is_classified(self):
        base, target = _pair()
        report = patch_sweep(base, target, cases=100, seed=0)
        for case in report.cases:
            assert case.outcome in ("typed-error", "decoded", "unexpected")
            if case.outcome == "typed-error":
                assert case.error_type
