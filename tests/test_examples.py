"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "embedded_device.py", "app_startup.py",
            "dictionary_explorer.py", "incremental_jit.py"} <= names
