"""Tests for the copy phase, instruction tables and per-function translation."""

import pytest

from repro.core import (
    CopyPhaseError,
    DecodedItem,
    TableEntry,
    compress,
    copy_translate,
    open_container,
    read_patched_displacement,
)
from repro.isa import assemble
from repro.jit import Translator, build_tables
from repro.vm import lower_function

EXAMPLE = """
func main
    li r2, 9
    call helper
loop:
    addi r2, r2, -1
    bnez r2, loop
    beqz r2, fwd
    nop
fwd:
    ret
end
func helper
    li r1, 42
    ret
end
"""


def _translator(text=EXAMPLE):
    program = assemble(text)
    reader = open_container(compress(program).data)
    return program, Translator(reader)


class TestCopyPhaseUnit:
    def _table(self):
        return {
            0: TableEntry(data=b"\xAA\xBB"),
            1: TableEntry(data=b"\xCC\x00", hole_offset=1, hole_size=1),
            2: TableEntry(data=b"\xE8\x00\x00\x00\x00", hole_offset=1,
                          hole_size=4, is_call=True),
        }

    def test_plain_items_concatenate(self):
        items = [DecodedItem(dict_index=0, length=1),
                 DecodedItem(dict_index=0, length=1)]
        out = copy_translate(items, self._table())
        assert bytes(out.code) == b"\xAA\xBB\xAA\xBB"
        assert out.item_offsets == [0, 2]

    def test_backward_branch_patched_immediately(self):
        items = [
            DecodedItem(dict_index=0, length=1),
            DecodedItem(dict_index=1, length=1, branch_displacement=-2),
        ]
        out = copy_translate(items, self._table())
        # hole at offset 3; branch targets item 0 at offset 0; native
        # displacement = 0 - (3+1) = -4
        assert read_patched_displacement(out.code, 3, 1) == -4

    def test_forward_branch_patched_in_step3(self):
        items = [
            DecodedItem(dict_index=1, length=1, branch_displacement=1),
            DecodedItem(dict_index=0, length=1),
            DecodedItem(dict_index=0, length=1),
        ]
        out = copy_translate(items, self._table())
        # hole at 1..2, target = item 2 at offset 4: disp = 4 - 2 = 2
        assert read_patched_displacement(out.code, 1, 1) == 2

    def test_call_generates_relocation(self):
        items = [DecodedItem(dict_index=2, length=1, call_target=5)]
        out = copy_translate(items, self._table())
        assert len(out.call_relocations) == 1
        reloc = out.call_relocations[0]
        assert reloc.callee == 5
        assert reloc.hole_offset == 1
        assert reloc.hole_size == 4

    def test_unknown_index_rejected(self):
        with pytest.raises(CopyPhaseError, match="no instruction-table entry"):
            copy_translate([DecodedItem(dict_index=9, length=1)], self._table())

    def test_branch_into_nowhere_rejected(self):
        items = [DecodedItem(dict_index=1, length=1, branch_displacement=5)]
        with pytest.raises(CopyPhaseError, match="out of range"):
            copy_translate(items, self._table())

    def test_target_on_holeless_entry_rejected(self):
        items = [DecodedItem(dict_index=0, length=1, branch_displacement=0)]
        with pytest.raises(CopyPhaseError, match="no branch hole"):
            copy_translate(items, self._table())


class TestInstructionTables:
    def test_tables_cover_every_index(self):
        program = assemble(EXAMPLE)
        reader = open_container(compress(program).data)
        tables = build_tables(reader)
        for layout, table in zip(reader.layouts, tables.tables):
            assert set(table) == set(layout.paths_of)

    def test_sequence_entries_concatenate_bases(self):
        program = assemble(EXAMPLE)
        reader = open_container(compress(program).data)
        tables = build_tables(reader)
        layout = reader.layouts[0]
        table = tables.tables[0]
        # Each multi-instruction entry must be exactly as long as the sum
        # of its constituent base chunks.
        base_size = {}
        for index, path in layout.paths_of.items():
            if len(path) == 1:
                base_size[path[0]] = table[index].size
        for index, path in layout.paths_of.items():
            if len(path) > 1 and all(p in base_size for p in path):
                assert table[index].size == sum(base_size[p] for p in path)

    def test_total_bytes_positive(self):
        program = assemble(EXAMPLE)
        reader = open_container(compress(program).data)
        assert build_tables(reader).total_bytes > 0


class TestTranslator:
    def test_translated_size_matches_unoptimized_lowering(self):
        # The JIT path must produce exactly the per-instruction lowering
        # of the original function (same bytes modulo target patching).
        program, translator = _translator()
        for findex, fn in enumerate(program.functions):
            jit_size = translator.translate_function(findex).size
            assert jit_size == lower_function(fn, optimize=False).size

    def test_translate_program_covers_all_functions(self):
        program, translator = _translator()
        results = translator.translate_program()
        assert len(results) == len(program.functions)

    def test_branch_holes_patched_consistently(self):
        # Translate and verify the backward loop branch points backwards.
        program, translator = _translator()
        result = translator.translate_function(0)
        fn = program.functions[0]
        lowered = lower_function(fn, optimize=False)
        offsets = lowered.byte_offsets()
        # Find the bnez (index 3 in main: li, call, addi, bnez, ...)
        bnez_index = next(i for i, insn in enumerate(fn.insns)
                          if insn.op.value == "bnez")
        chunk = lowered.chunks[bnez_index]
        hole_at = offsets[bnez_index] + chunk.hole_offset
        disp = read_patched_displacement(result.translated.code, hole_at,
                                         chunk.hole_size)
        target_offset = offsets[fn.insns[bnez_index].target]
        assert disp == target_offset - (hole_at + chunk.hole_size)

    def test_call_relocations_point_at_callees(self):
        program, translator = _translator()
        result = translator.translate_function(0)
        callees = [r.callee for r in result.translated.call_relocations]
        assert callees == [1]

    def test_native_function_sizes(self):
        program, translator = _translator()
        sizes = translator.native_function_sizes()
        assert len(sizes) == 2
        assert all(s > 0 for s in sizes)
