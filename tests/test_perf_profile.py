"""Tests for ``repro.perf.profile`` and the pipeline's phase instrumentation."""

import pytest

from repro import tools
from repro.core import compress, decompress
from repro.perf import NULL_PROFILE, PhaseProfile
from repro.perf.profile import ensure
from repro.workloads import benchmark_program


@pytest.fixture(scope="module")
def small_program():
    return benchmark_program("go", scale=0.02)


class TestPhaseProfile:
    def test_phase_accumulates(self):
        profile = PhaseProfile()
        with profile.phase("a"):
            pass
        with profile.phase("a"):
            pass
        with profile.phase("b"):
            pass
        assert set(profile.timings) == {"a", "b"}
        assert profile.counts["a"] == 2
        assert profile.counts["b"] == 1
        assert profile.total == pytest.approx(sum(profile.timings.values()))

    def test_record_direct(self):
        profile = PhaseProfile()
        profile.record("x", 0.25)
        profile.record("x", 0.25)
        assert profile.timings["x"] == pytest.approx(0.5)

    def test_phase_records_on_exception(self):
        profile = PhaseProfile()
        with pytest.raises(RuntimeError):
            with profile.phase("failing"):
                raise RuntimeError("boom")
        assert "failing" in profile.timings

    def test_format_lists_every_phase(self):
        profile = PhaseProfile()
        profile.record("alpha", 0.010)
        profile.record("beta", 0.030)
        report = profile.format(title="demo")
        assert report.startswith("demo:")
        assert "alpha" in report and "beta" in report
        assert "total" in report
        assert "%" in report

    def test_null_profile_measures_nothing(self):
        with NULL_PROFILE.phase("anything"):
            pass
        NULL_PROFILE.record("anything", 1.0)
        assert NULL_PROFILE.timings == {}

    def test_ensure(self):
        profile = PhaseProfile()
        assert ensure(profile) is profile
        assert ensure(None) is NULL_PROFILE


class TestPipelinePhases:
    def test_compress_phases(self, small_program):
        profile = PhaseProfile()
        compress(small_program, profile=profile)
        for phase in ("dictionary.base_entries", "dictionary.ngrams",
                      "dictionary.segmentation", "dictionary.rewrite",
                      "partition", "layout", "items", "serialize"):
            assert phase in profile.timings, f"missing phase {phase}"
        assert profile.total > 0

    def test_decompress_phases(self, small_program):
        data = compress(small_program).data
        profile = PhaseProfile()
        decompress(data, profile=profile)
        for phase in ("parse", "dictionary_phase", "copy_phase"):
            assert phase in profile.timings, f"missing phase {phase}"

    def test_profile_does_not_change_output(self, small_program):
        plain = compress(small_program)
        profiled = compress(small_program, profile=PhaseProfile())
        assert profiled.data == plain.data


class TestCLI:
    def test_compress_profile_and_jobs_flags(self, tmp_path, capsys):
        out = tmp_path / "go.ssd"
        rc = tools.main(["compress", "bench:go@0.02", "-o", str(out),
                         "--jobs", "2", "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "compress phases" in captured.err
        assert "dictionary.ngrams" in captured.err
        assert out.stat().st_size > 0

    def test_decompress_profile_flag(self, tmp_path, capsys):
        container = tmp_path / "go.ssd"
        assert tools.main(["compress", "bench:go@0.02",
                           "-o", str(container)]) == 0
        asm = tmp_path / "go.asm"
        rc = tools.main(["decompress", str(container), "-o", str(asm),
                         "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "decompress phases" in captured.err
        assert "copy_phase" in captured.err

    def test_jobs_flag_output_identical(self, tmp_path, capsys):
        serial = tmp_path / "serial.ssd"
        parallel = tmp_path / "parallel.ssd"
        assert tools.main(["compress", "bench:go@0.02", "-o", str(serial)]) == 0
        assert tools.main(["compress", "bench:go@0.02", "-o", str(parallel),
                           "--jobs", "2"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
