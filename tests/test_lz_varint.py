"""Unit and property tests for repro.lz.varint."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lz.varint import (
    ByteReader,
    ByteWriter,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class TestUvarint:
    def test_zero_is_one_byte(self):
        assert encode_uvarint(0) == b"\x00"

    def test_small_values_one_byte(self):
        assert encode_uvarint(127) == b"\x7f"

    def test_128_takes_two_bytes(self):
        assert encode_uvarint(128) == b"\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_decode_returns_next_offset(self):
        data = encode_uvarint(300) + b"\xAA"
        value, offset = decode_uvarint(data)
        assert value == 300
        assert data[offset] == 0xAA

    def test_truncated_raises_eof(self):
        with pytest.raises(EOFError):
            decode_uvarint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80" * 12 + b"\x01")


class TestZigzag:
    @pytest.mark.parametrize("value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)])
    def test_known_mapping(self, value, expected):
        assert zigzag_encode(value) == expected
        assert zigzag_decode(expected) == value

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            zigzag_decode(-1)


class TestSvarint:
    def test_roundtrip_extremes(self):
        for value in (0, -1, 1, 2**31 - 1, -(2**31), 2**40, -(2**40)):
            decoded, _ = decode_svarint(encode_svarint(value))
            assert decoded == value


class TestByteWriterReader:
    def test_fixed_width_roundtrip(self):
        w = ByteWriter()
        w.write_u8(0xAB)
        w.write_u16(0xCDEF)
        w.write_u32(0x12345678)
        r = ByteReader(w.getvalue())
        assert r.read_u8() == 0xAB
        assert r.read_u16() == 0xCDEF
        assert r.read_u32() == 0x12345678
        assert r.at_end()

    def test_u8_range_check(self):
        with pytest.raises(ValueError):
            ByteWriter().write_u8(256)

    def test_u16_range_check(self):
        with pytest.raises(ValueError):
            ByteWriter().write_u16(1 << 16)

    def test_u32_range_check(self):
        with pytest.raises(ValueError):
            ByteWriter().write_u32(1 << 32)

    def test_read_bytes_truncated(self):
        r = ByteReader(b"ab")
        with pytest.raises(EOFError):
            r.read_bytes(3)

    def test_remaining_and_position(self):
        r = ByteReader(b"abcd", offset=1)
        assert r.position == 1
        assert r.remaining == 3
        r.read_bytes(2)
        assert r.position == 3
        assert r.remaining == 1

    def test_mixed_varints(self):
        w = ByteWriter()
        w.write_uvarint(999)
        w.write_svarint(-999)
        r = ByteReader(w.getvalue())
        assert r.read_uvarint() == 999
        assert r.read_svarint() == -999


@given(st.integers(min_value=0, max_value=2**62))
def test_property_uvarint_roundtrip(value):
    decoded, offset = decode_uvarint(encode_uvarint(value))
    assert decoded == value
    assert offset == len(encode_uvarint(value))


@given(st.integers(min_value=-(2**60), max_value=2**60))
def test_property_svarint_roundtrip(value):
    decoded, _ = decode_svarint(encode_svarint(value))
    assert decoded == value


@given(st.integers(min_value=-(2**60), max_value=2**60))
def test_property_zigzag_roundtrip(value):
    assert zigzag_decode(zigzag_encode(value)) == value
