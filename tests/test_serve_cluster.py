"""Integration tests for the sharded serve cluster
(repro.serve.{ring,router,cluster}): placement, replication fan-out,
failover, quorum refusal, drain hand-off, restart recovery, and the
router's observability surface.
"""

import time

import pytest

from repro.core import compress
from repro.errors import RemoteError, UnavailableError
from repro.isa import assemble
from repro.serve import (
    ClusterConfig,
    LocalCluster,
    RouterConfig,
    ServeClient,
    container_id_of,
)
from repro.serve import protocol
from repro.serve.client import RetryPolicy

ASM = """
func main
    li r2, 5
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
func spare
    li r1, 77
    ret
end
"""


def fast_cluster(shards=3, replication=2):
    return LocalCluster(ClusterConfig(
        shards=shards, replication=replication,
        router=RouterConfig(probe_interval=0.05, probe_timeout=0.5,
                            attempt_timeout=2.0, breaker_cooldown=0.2,
                            fail_threshold=2, rise_threshold=2, seed=11)))


@pytest.fixture(scope="module")
def container():
    return compress(assemble(ASM)).data


@pytest.fixture()
def cluster():
    with fast_cluster() as cluster:
        yield cluster


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestTopology:
    def test_config_validates(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, replication=3)

    def test_quorum_formula(self):
        assert ClusterConfig(shards=3, replication=2).quorum == 2
        assert ClusterConfig(shards=5, replication=3).quorum == 3
        assert ClusterConfig(shards=4, replication=1).quorum == 4

    def test_specs_and_live_count(self, cluster):
        specs = cluster.specs()
        assert [spec.shard_id for spec in specs] == \
            ["shard-0", "shard-1", "shard-2"]
        assert all(spec.port > 0 for spec in specs)
        assert cluster.live_count == 3
        assert cluster.above_quorum


class TestReplication:
    def test_put_fans_out_to_all_replicas(self, cluster, container):
        cid = container_id_of(container)
        with cluster.client() as client:
            put_id, count, _entry = client.put(container)
        assert put_id == cid
        assert count == 3
        replicas = cluster.replicas_for(cid)
        assert len(replicas) == 2
        for shard_id in replicas:
            assert cid in cluster.stores[shard_id]
        for shard_id in set(cluster.shard_ids) - set(replicas):
            assert cid not in cluster.stores[shard_id]

    def test_put_is_idempotent_across_retries(self, cluster, container):
        with cluster.client() as client:
            first = client.put(container)
            second = client.put(container)
        assert first == second

    def test_reads_work_through_router(self, cluster, container):
        with cluster.client() as client:
            cid, _count, _entry = client.put(container)
            meta = client.meta(cid)
            assert meta.function_names == ["main", "helper", "spare"]
            function = client.function(cid, 1)
            assert function.name == "helper"
            total, insns = client.block(cid, 0, 0, 2)
            assert total >= 2
            assert len(insns) == 2


class TestFailover:
    def test_kill_one_replica_reads_fail_over(self, cluster, container):
        with cluster.client() as client:
            cid, _count, _entry = client.put(container)
            replicas = cluster.replicas_for(cid)
            cluster.kill_shard(replicas[0])
            meta = client.meta(cid)   # served by the surviving replica
            assert meta.program_name == "asm"
        assert cluster.router.metrics.failovers >= 1

    def test_draining_shard_hands_off(self, cluster, container):
        with cluster.client() as client:
            cid, _count, _entry = client.put(container)
            replicas = cluster.replicas_for(cid)
            assert cluster.drain_shard(replicas[0], timeout=5.0)
            assert client.function(cid, 0).name == "main"
            # probes saw the drain or the kill; the shard is not routable
            assert wait_until(lambda: replicas[0] not in
                              cluster.router.router.live_shards)

    def test_all_replicas_dead_is_clean_unavailable(self, cluster,
                                                    container):
        with cluster.client(retry_policy=RetryPolicy(
                retries=1, base_delay=0.01, max_delay=0.05,
                seed=3)) as client:
            cid, _count, _entry = client.put(container)
            for shard_id in cluster.replicas_for(cid):
                cluster.kill_shard(shard_id)
            assert not cluster.above_quorum
            with pytest.raises((UnavailableError, RemoteError)) as excinfo:
                client.meta(cid)
            if isinstance(excinfo.value, RemoteError):
                assert excinfo.value.code == protocol.E_UNAVAILABLE
        assert cluster.router.metrics.unavailable >= 1

    def test_restart_recovers_data_and_routing(self, cluster, container):
        with cluster.client() as client:
            cid, _count, _entry = client.put(container)
            replicas = cluster.replicas_for(cid)
            for shard_id in replicas:
                cluster.kill_shard(shard_id)
            spec = cluster.restart_shard(replicas[0])
            assert spec.port > 0
            # same store came back: the data survived the "crash"
            assert cid in cluster.stores[replicas[0]]
            meta = client.meta(cid)
            assert meta.program_name == "asm"

    def test_probes_mark_down_then_up(self, cluster, container):
        victim = cluster.shard_ids[0]
        cluster.kill_shard(victim)
        assert wait_until(lambda: victim not in
                          cluster.router.router.live_shards)
        cluster.restart_shard(victim)
        assert wait_until(lambda: victim in
                          cluster.router.router.live_shards)

    def test_breaker_opens_on_dead_shard(self, container):
        # R=1: every request for the victim's keys hammers only it
        with fast_cluster(shards=2, replication=1) as cluster:
            with cluster.client(retry_policy=RetryPolicy(
                    retries=0)) as client:
                cid, _count, _entry = client.put(container)
                victim = cluster.replicas_for(cid)[0]
                cluster.kill_shard(victim)
                for _ in range(6):
                    with pytest.raises((UnavailableError, RemoteError)):
                        client.meta(cid)
            text = cluster.router.metrics.expose_text()
            assert "cluster_breaker_transitions_total" in text
            assert f'shard="{victim}"' in text


class TestRouterObservability:
    def test_router_health_reports_live_shards(self, cluster):
        host, port = cluster.address
        with ServeClient(host, port) as client:
            status = client.health()
            assert status.ok
            assert status.containers == 3   # live shard count
        cluster.kill_shard("shard-1")
        assert wait_until(lambda: len(cluster.router.router.live_shards) == 2)
        with ServeClient(host, port) as client:
            assert client.health().containers == 2

    def test_router_stats_snapshot_shape(self, cluster, container):
        with cluster.client() as client:
            client.put(container)
            stats = client.stats()
        assert stats["replication"] == 2
        assert stats["quorum"] == 2
        assert stats["requests"].get("PUT_CONTAINER", 0) >= 1
        assert set(stats["shards"]) == set(cluster.shard_ids)

    def test_router_metrics_exposition(self, cluster, container):
        with cluster.client() as client:
            client.put(container)
            text = client.metrics_text()
        for family in ("cluster_requests_total", "cluster_shard_state",
                       "cluster_hops_bucket", "cluster_request_seconds"):
            assert family in text, family

    def test_shard_state_gauge_tracks_kill(self, cluster):
        cluster.kill_shard("shard-2")
        assert wait_until(lambda: 'cluster_shard_state{shard="shard-2"} 3'
                          in cluster.router.metrics.expose_text())


class TestUnknownTypeAndBadFrames:
    def test_unknown_request_type_is_bad_request(self, cluster):
        host, port = cluster.address
        with ServeClient(host, port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client._request(0x55, b"", op="stats")
            assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_short_get_body_is_bad_request(self, cluster):
        host, port = cluster.address
        with ServeClient(host, port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client._request(protocol.GET_META, b"\x01\x02",
                                op="meta")
            assert excinfo.value.code == protocol.E_BAD_REQUEST
