"""Integration tests for hot-shard rebalance, the router response
cache, and multi-router gossip (repro.serve.{router,cluster}).
"""

import time

import pytest

from repro.core import compress
from repro.isa import assemble
from repro.serve import ClusterConfig, LocalCluster, RouterConfig, ServeClient

ASM_TEMPLATE = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


def build_container(value=5):
    return compress(assemble(ASM_TEMPLATE.format(value=value))).data


def fast_config(**overrides):
    defaults = dict(probe_interval=0.05, probe_timeout=0.5,
                    attempt_timeout=2.0, breaker_cooldown=0.2,
                    fail_threshold=2, rise_threshold=2,
                    rebalance_interval=0.0, sync_interval=0.0, seed=11)
    defaults.update(overrides)
    return RouterConfig(**defaults)


def start_cluster(routers=1, **router_overrides):
    return LocalCluster(ClusterConfig(
        shards=3, replication=2, routers=routers,
        router=fast_config(**router_overrides))).start()


def wait_for(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestResponseCache:
    def test_repeat_gets_hit_the_cache(self):
        with start_cluster(cache_bytes=1 << 20) as cluster:
            with cluster.client() as client:
                cid, _count, _entry = client.put(build_container())
                first = client.meta(cid)
                second = client.meta(cid)
                assert first == second
                stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["current_bytes"] > 0

    def test_cache_serves_when_every_replica_is_dead(self):
        """Content-addressed responses are immutable, so a warmed cache
        keeps answering even with zero live shards behind the router."""
        with start_cluster(cache_bytes=1 << 20) as cluster:
            with cluster.client() as client:
                cid, _count, _entry = client.put(build_container())
                warmed = client.function(cid, 0)
                for shard_id in list(cluster.shard_ids):
                    cluster.kill_shard(shard_id)
                again = client.function(cid, 0)
                assert [str(i) for i in again] == [str(i) for i in warmed]

    def test_cache_disabled_by_default(self):
        with start_cluster() as cluster:
            with cluster.client() as client:
                cid, _count, _entry = client.put(build_container())
                client.meta(cid)
                client.meta(cid)
                stats = client.stats()
        assert stats["cache"] == {"hits": 0, "misses": 0, "evictions": 0,
                                  "current_bytes": 0}

    def test_tiny_budget_evicts(self):
        with start_cluster(cache_bytes=600) as cluster:
            with cluster.client() as client:
                ids = []
                for value in range(6):
                    cid, _count, _entry = client.put(build_container(value + 1))
                    ids.append(cid)
                for cid in ids:
                    client.meta(cid)
                stats = client.stats()
        cache = stats["cache"]
        assert cache["evictions"] >= 1
        assert cache["current_bytes"] <= 600


class TestRebalance:
    def test_sustained_skew_triggers_rebalance(self):
        with start_cluster() as cluster:
            router = cluster.routers[0].router
            hot = max(router._served,
                      key=lambda sid: router.ring.load_split(512)[sid])
            for _tick in range(4):
                for shard_id in router._served:
                    router._served[shard_id] += 400 if shard_id == hot else 10
                cluster.routers[0]._loop.call_soon_threadsafe(
                    router._rebalance_tick)
                assert wait_for(
                    lambda: router._last_served[hot] == router._served[hot])
            assert wait_for(lambda: router.weights_epoch >= 1)
            assert router.ring.weights[hot] < 1.0
            stats = router.metrics.snapshot()
            assert stats["rebalances"] >= 1
            assert stats["vnode_weights"][hot] == \
                pytest.approx(router.ring.weights[hot])

    def test_single_spike_does_not_rebalance(self):
        """One imbalanced tick is a spike, not sustained skew."""
        with start_cluster() as cluster:
            router = cluster.routers[0].router
            router._served["shard-0"] += 1000
            cluster.routers[0]._loop.call_soon_threadsafe(
                router._rebalance_tick)
            assert wait_for(lambda: router._last_served["shard-0"] >= 1000)
            assert router.weights_epoch == 0
            assert router.ring.weights == {s: 1.0 for s in cluster.shard_ids}

    def test_idle_ticks_never_rebalance(self):
        with start_cluster() as cluster:
            router = cluster.routers[0].router
            for _ in range(5):
                router._rebalance_tick()
            assert router.weights_epoch == 0

    def test_noise_floor_ignores_trickle_traffic(self):
        """A lone put lands on exactly R shards — 100% 'skew' on a
        handful of requests must never move vnode weights."""
        with start_cluster() as cluster:
            router = cluster.routers[0].router
            for _tick in range(6):
                router._served["shard-0"] += 2
                cluster.routers[0]._loop.call_soon_threadsafe(
                    router._rebalance_tick)
            assert wait_for(lambda: router._last_served["shard-0"] >= 12)
            assert router.weights_epoch == 0

    def test_reads_chase_keys_moved_by_rebalance(self):
        """A container stored under the old ring stays readable after a
        weight shift moves its replica set: the router chases live
        E_NOT_FOUND answers across the remaining shards."""
        with start_cluster() as cluster:
            router = cluster.routers[0].router
            with cluster.client() as client:
                cid, _count, _entry = client.put(build_container())
                # an extreme weight swing reshuffles most placements
                cluster.routers[0]._loop.call_soon_threadsafe(
                    router.apply_weights,
                    {"shard-0": 4.0, "shard-1": 0.125, "shard-2": 0.125},
                    router.weights_epoch + 1)
                assert wait_for(lambda: router.weights_epoch >= 1)
                assert client.meta(cid).container_id == cid
                function = client.function(cid, 0)
                assert function.insns

    def test_unknown_container_still_not_found(self):
        from repro.errors import RemoteError
        with start_cluster() as cluster:
            with cluster.client() as client:
                with pytest.raises(RemoteError, match="E_NOT_FOUND"):
                    client.meta("00" * 32)


class TestMultiRouterGossip:
    def test_weights_converge_across_routers(self):
        with start_cluster(routers=2, sync_interval=0.05) as cluster:
            first = cluster.routers[0].router
            second = cluster.routers[1].router
            cluster.routers[0]._loop.call_soon_threadsafe(
                first.apply_weights, {"shard-1": 2.0},
                first.weights_epoch + 1)
            assert wait_for(
                lambda: second.ring.weights["shard-1"] == pytest.approx(2.0))
            assert second.weights_epoch == first.weights_epoch
            assert second.metrics.snapshot()["vnode_weights"]["shard-1"] == \
                pytest.approx(2.0)

    def test_older_epoch_is_not_adopted(self):
        with start_cluster(routers=2, sync_interval=0.05) as cluster:
            first = cluster.routers[0].router
            cluster.routers[0]._loop.call_soon_threadsafe(
                first.apply_weights, {"shard-0": 3.0},
                first.weights_epoch + 7)
            assert wait_for(lambda: first.weights_epoch >= 7)
            # a stale epoch must be a no-op even with different weights
            first.apply_weights({"shard-0": 0.5}, 3)
            assert first.ring.weights["shard-0"] == pytest.approx(3.0)

    def test_both_routers_answer_clients(self):
        with start_cluster(routers=2) as cluster:
            container = build_container()
            with cluster.client() as client:
                cid, _count, _entry = client.put(container)
            for host, port in cluster.addresses:
                with ServeClient(host, port, retries=4) as direct:
                    assert direct.meta(cid).container_id == cid

    def test_router_death_is_absorbed_by_fallback(self):
        with start_cluster(routers=2) as cluster:
            with cluster.client() as client:
                cid, _count, _entry = client.put(build_container())
                assert client.meta(cid).container_id == cid
                cluster.kill_router(0)
                assert wait_for(lambda: len(cluster.addresses) == 1)
                meta = client.meta(cid)   # retries reconnect via fallback
                assert meta.container_id == cid
                assert client.reconnect_count >= 1

    def test_single_router_cluster_keeps_old_shape(self):
        with start_cluster(routers=1) as cluster:
            assert cluster.router is cluster.routers[0]
            assert cluster.addresses == [cluster.address]


class TestClientFallback:
    def test_connects_via_fallback_when_primary_is_down(self):
        with start_cluster(routers=2) as cluster:
            live = cluster.addresses
            with cluster.client() as seeder:
                cid, _count, _entry = seeder.put(build_container())
            # point the client's primary address at a dead port
            client = ServeClient("127.0.0.1", 1, retries=4,
                                 fallback=live)
            try:
                assert client.meta(cid).container_id == cid
                assert (client.host, client.port) in [tuple(a) for a in live]
            finally:
                client.close()

    def test_all_addresses_down_raises(self):
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", 1, fallback=[("127.0.0.1", 2)])
