"""Unit tests for ``repro.kernels``: backend selection and plumbing.

The differential properties (scalar vs vectorized equivalence) live in
``test_kernels_differential.py``; this file covers the selection
machinery itself — ``REPRO_KERNELS`` parsing, ``set_backend``, the
metrics hooks, and the :class:`ItemPlanes` container.
"""

import sys

import pytest

from repro import kernels
from repro.kernels import (
    BATCH_DECODES,
    FALLBACKS,
    KIND_BRANCH,
    KIND_CALL,
    KIND_PLAIN,
    ItemPlanes,
)


class TestBackendDetection:
    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        expected = "numpy" if kernels.has_numpy() else "python"
        assert kernels._detect_backend() == expected

    def test_explicit_auto_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        monkeypatch.delenv("REPRO_KERNELS")
        default = kernels._detect_backend()
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        assert kernels._detect_backend() == default

    def test_python_can_be_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert kernels._detect_backend() == "python"

    def test_value_is_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "  PYTHON ")
        assert kernels._detect_backend() == "python"

    def test_unknown_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            kernels._detect_backend()

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert kernels._detect_backend() == "python"

    def test_numpy_forced_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ImportError, match="REPRO_KERNELS=numpy"):
            kernels._detect_backend()

    def test_module_backend_is_valid(self):
        assert kernels.BACKEND in ("numpy", "python")
        assert kernels.backend() in ("numpy", "python")


class TestSetBackend:
    def test_returns_previous_and_switches(self):
        previous = kernels.set_backend("python")
        try:
            assert kernels.backend() == "python"
        finally:
            assert kernels.set_backend(previous) == "python"
        assert kernels.backend() == previous

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert not kernels.has_numpy()
        before = kernels.backend()
        with pytest.raises(ImportError):
            kernels.set_backend("numpy")
        assert kernels.backend() == before  # failed switch changes nothing


class TestMetricsHooks:
    def test_record_batch_counts_by_kind_and_backend(self):
        backend = kernels.backend()
        before = BATCH_DECODES.value(kind="test_kind", backend=backend)
        kernels.record_batch("test_kind")
        kernels.record_batch("test_kind", count=17)
        after = BATCH_DECODES.value(kind="test_kind", backend=backend)
        assert after == before + 2

    def test_record_batch_backend_override(self):
        before = BATCH_DECODES.value(kind="test_kind", backend="python")
        kernels.record_batch("test_kind", backend_name="python")
        after = BATCH_DECODES.value(kind="test_kind", backend="python")
        assert after == before + 1

    def test_record_fallback_counts_by_kind(self):
        before = FALLBACKS.value(kind="test_kind")
        kernels.record_fallback("test_kind")
        assert FALLBACKS.value(kind="test_kind") == before + 1


class TestItemPlanes:
    def test_kind_codes_are_distinct(self):
        assert len({KIND_PLAIN, KIND_BRANCH, KIND_CALL}) == 3

    def test_empty(self):
        planes = ItemPlanes(indices=[], kinds=[], values=[], lengths=[],
                            starts=[])
        assert planes.count == 0
        assert planes.instruction_count == 0

    def test_counts(self):
        planes = ItemPlanes(indices=[3, 1, 4], kinds=[0, 1, 2],
                            values=[0, -1, 2], lengths=[2, 1, 3],
                            starts=[0, 2, 3])
        assert planes.count == 3
        assert planes.instruction_count == 6
