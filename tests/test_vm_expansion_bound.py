"""Pins the NATIVE_EXPANSION_BOUND contract.

The target-size classes in ``repro.isa.instruction`` assume no VM
instruction lowers to more than NATIVE_EXPANSION_BOUND native bytes; if a
lowering ever grows past it, Algorithm 3 could overflow a branch hole.
These tests enumerate the worst case of every opcode.
"""

from hypothesis import given, settings

from repro.isa import Instruction, Kind, NUM_REGISTERS, Op, info
from repro.isa.instruction import NATIVE_EXPANSION_BOUND
from repro.vm import lower_instruction

from .strategies import non_control_instruction

_WIDE = 2**31 - 1


def _worst_case_instances(op):
    """Instructions maximizing the encoded size for ``op``."""
    meta = info(op)
    kind = meta.kind
    regs = dict(rd=NUM_REGISTERS - 1, rs1=NUM_REGISTERS - 2, rs2=NUM_REGISTERS - 3)
    if kind is Kind.ALU_RR:
        yield Instruction(op=op, **regs)
    elif kind is Kind.ALU_RI:
        yield Instruction(op=op, rd=1, rs1=2, imm=_WIDE)
        yield Instruction(op=op, rd=1, rs1=1, imm=_WIDE)
    elif kind is Kind.UNARY:
        yield Instruction(op=op, rd=1, rs1=2)
    elif kind is Kind.CONST:
        yield Instruction(op=op, rd=1, imm=_WIDE)
    elif kind is Kind.LOAD:
        yield Instruction(op=op, rd=1, rs1=2, imm=_WIDE)
    elif kind is Kind.STORE:
        yield Instruction(op=op, rs1=2, rs2=3, imm=_WIDE)
    elif kind is Kind.BRANCH:
        yield Instruction(op=op, rs1=1, target=0,
                          **({"rs2": 2} if meta.uses_rs2 else {}))
    elif kind is Kind.JUMP:
        yield Instruction(op=op, target=0)
    elif kind is Kind.CALL:
        yield Instruction(op=op, target=0)
    elif kind in (Kind.CALL_INDIRECT, Kind.JUMP_INDIRECT):
        yield Instruction(op=op, rs1=1)
    elif op is Op.TRAP:
        yield Instruction(op=op, imm=_WIDE)
    else:
        yield Instruction(op=op)


def test_every_opcode_within_expansion_bound():
    for op in Op:
        meta = info(op)
        for insn in _worst_case_instances(op):
            if meta.uses_target and meta.is_branch:
                for size in (1, 2, 4):
                    chunk = lower_instruction(insn, size)
                    assert chunk.size <= NATIVE_EXPANSION_BOUND, (op, size)
            else:
                chunk = lower_instruction(insn)
                assert chunk.size <= NATIVE_EXPANSION_BOUND, op


@given(non_control_instruction())
@settings(max_examples=200)
def test_property_random_instructions_within_bound(insn):
    assert lower_instruction(insn).size <= NATIVE_EXPANSION_BOUND
