"""Tests for dictionary partitioning (common + sub-dictionaries)."""

import pytest

from repro.core import (
    build_dictionary,
    compress,
    decompress,
    open_container,
    plan_partition,
)
from repro.core import partition as partition_module
from repro.core.partition import PartitionError, _tree_node_count
from repro.isa import assemble


def _diverse_program(functions=12, insns_per_fn=40):
    """A program with many unique instructions (pressure on the capacity)."""
    lines = []
    value = 0
    for findex in range(functions):
        lines.append(f"func f{findex}")
        for _ in range(insns_per_fn):
            value += 7
            lines.append(f"    li r1, {value}")
        lines.append("    ret")
        lines.append("end")
    return assemble("\n".join(lines))


class TestTreeNodeCount:
    def test_counts_shared_prefixes_once(self):
        assert _tree_node_count({(1, 2, 3), (1, 2, 4)}) == 3

    def test_empty(self):
        assert _tree_node_count(set()) == 0


class TestUnpartitioned:
    def test_single_segment_when_small(self):
        program = assemble("func main\n    li r1, 1\n    ret\nend\n")
        plan = plan_partition(build_dictionary(program))
        assert len(plan.segments) == 1
        assert plan.common_base_ids == []
        assert not plan.is_partitioned


class TestPartitioned:
    @pytest.fixture()
    def tiny_capacity(self, monkeypatch):
        monkeypatch.setattr(partition_module, "SEGMENT_CAPACITY", 220)
        return 220

    def test_multiple_segments_created(self, tiny_capacity):
        program = _diverse_program()
        plan = plan_partition(build_dictionary(program), common_budget=60)
        assert len(plan.segments) > 1
        assert plan.is_partitioned

    def test_segment_functions_contiguous(self, tiny_capacity):
        program = _diverse_program()
        plan = plan_partition(build_dictionary(program), common_budget=60)
        seen = []
        for segment in plan.segments:
            seen.extend(segment.function_indices)
        assert seen == list(range(len(program.functions)))

    def test_common_sequences_use_common_bases(self, monkeypatch):
        monkeypatch.setattr(partition_module, "SEGMENT_CAPACITY", 260)
        # Diverse constants plus one hot idiom repeated in every function,
        # so the common dictionary has a sequence worth promoting.
        lines = []
        value = 0
        for findex in range(14):
            lines.append(f"func f{findex}")
            lines.append("    addi r29, r29, -8")
            lines.append("    sw r30, 4(r29)")
            lines.append("    mov r30, r29")
            for _ in range(25):
                value += 7
                lines.append(f"    li r1, {value}")
            lines.append("    ret")
            lines.append("end")
        program = assemble("\n".join(lines))
        plan = plan_partition(build_dictionary(program), common_budget=60)
        assert plan.common_sequences, "expected a promoted common sequence"
        common = set(plan.common_base_ids)
        for sequence in plan.common_sequences:
            assert all(base in common for base in sequence)

    def test_capacity_respected(self, tiny_capacity):
        program = _diverse_program()
        plan = plan_partition(build_dictionary(program), common_budget=60)
        common_space = len(plan.common_base_ids) + _tree_node_count(
            set(plan.common_sequences))
        for segment in plan.segments:
            space = (common_space + len(segment.local_base_ids)
                     + _tree_node_count(segment.local_sequences))
            assert space <= tiny_capacity

    def test_oversized_function_rejected(self, monkeypatch):
        monkeypatch.setattr(partition_module, "SEGMENT_CAPACITY", 10)
        program = _diverse_program(functions=1, insns_per_fn=50)
        with pytest.raises(PartitionError):
            plan_partition(build_dictionary(program), common_budget=0)

    def test_partitioned_roundtrip(self, monkeypatch):
        monkeypatch.setattr(partition_module, "SEGMENT_CAPACITY", 300)
        program = _diverse_program(functions=16, insns_per_fn=30)
        compressed = compress(program, common_budget=80)
        assert compressed.partition_stats["segments"] > 1
        restored = decompress(compressed.data)
        assert [f.insns for f in restored.functions] == \
            [f.insns for f in program.functions]

    def test_partitioned_reader_segment_mapping(self, monkeypatch):
        monkeypatch.setattr(partition_module, "SEGMENT_CAPACITY", 300)
        program = _diverse_program(functions=16, insns_per_fn=30)
        reader = open_container(compress(program, common_budget=80).data)
        assert len(reader.layouts) > 1
        assert len(set(reader.segment_of_function)) == len(reader.layouts)
