"""Unit and property tests for repro.lz.bitio."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lz.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit_sets_lsb(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == b"\x01"

    def test_eight_bits_fill_one_byte(self):
        w = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b01010101])

    def test_ninth_bit_starts_second_byte(self):
        w = BitWriter()
        for _ in range(8):
            w.write_bit(0)
        w.write_bit(1)
        assert w.getvalue() == b"\x00\x01"

    def test_write_bits_lsb_first(self):
        w = BitWriter()
        w.write_bits(0b1101, 4)
        assert w.getvalue() == bytes([0b1101])

    def test_write_bits_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(16, 4)

    def test_write_bits_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 4)

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_len_counts_bits(self):
        w = BitWriter()
        assert len(w) == 0
        w.write_bits(0, 3)
        assert len(w) == 3
        w.write_bits(0, 7)
        assert len(w) == 10

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""


class TestBitReader:
    def test_read_past_end_raises(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(b"\xff")
        assert r.bits_remaining == 8
        r.read_bits(3)
        assert r.bits_remaining == 5

    def test_read_bits_matches_written(self):
        w = BitWriter()
        w.write_bits(0x2B, 6)
        w.write_bits(0x3, 2)
        r = BitReader(w.getvalue())
        assert r.read_bits(6) == 0x2B
        assert r.read_bits(2) == 0x3

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-1)


class TestUnary:
    def test_unary_zero(self):
        w = BitWriter()
        w.write_unary(0)
        assert BitReader(w.getvalue()).read_unary() == 0

    def test_unary_roundtrip_small_values(self):
        for value in range(20):
            w = BitWriter()
            w.write_unary(value)
            assert BitReader(w.getvalue()).read_unary() == value

    def test_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**24 - 1),
                          st.integers(min_value=0, max_value=24))))
def test_property_bits_roundtrip(pairs):
    pairs = [(v & ((1 << w) - 1) if w else 0, w) for v, w in pairs]
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in pairs:
        assert reader.read_bits(width) == value


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1))
def test_property_single_bits_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in bits] == bits
