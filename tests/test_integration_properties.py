"""Cross-module property tests on randomly generated programs.

These pin the system-level invariants that individual module tests can't:
lazy execution equals eager execution, block-at-a-time translation equals
monolithic translation, and every compression mode preserves behaviour
end to end.
"""

from hypothesis import given, settings

from repro.core import compress, decompress, open_container
from repro.core.copy_phase import copy_translate
from repro.core.lazy import lazy_program
from repro.jit import BlockTranslator, build_tables
from repro.vm import run_program

from .strategies import programs


def _outputs(program, fuel=60_000):
    from repro.vm import VMError

    try:
        result = run_program(program, fuel=fuel)
        return ("ok", tuple(result.output), result.steps)
    except VMError as exc:
        return ("fault", type(exc).__name__)


@given(programs(max_functions=4, max_function_size=25))
@settings(max_examples=25, deadline=None)
def test_property_lazy_execution_equals_eager(program):
    data = compress(program).data
    eager = _outputs(decompress(data))
    lazy = lazy_program(data)
    assert _outputs(lazy) == eager


@given(programs(max_functions=4, max_function_size=30))
@settings(max_examples=25, deadline=None)
def test_property_block_translation_stitches_to_whole_function(program):
    reader = open_container(compress(program).data)
    tables = build_tables(reader)
    translator = BlockTranslator(reader, tables)
    for findex in range(reader.function_count):
        items = reader.decoded_items(findex)
        table = tables.for_function(reader, findex)
        whole = copy_translate(items, table)
        fragments = translator.translate_whole_function(findex)
        stitched = bytearray()
        hole_positions = set()
        for fragment in fragments:
            base = len(stitched)
            for ext in fragment.external_branches:
                hole_positions.update(
                    range(base + ext.hole_offset,
                          base + ext.hole_offset + ext.hole_size))
            stitched += fragment.code
        assert len(stitched) == whole.size
        for position, (a, b) in enumerate(zip(stitched, whole.code)):
            if position not in hole_positions:
                assert a == b


@given(programs(max_functions=3, max_function_size=20))
@settings(max_examples=15, deadline=None)
def test_property_behaviour_preserved_across_all_modes(program):
    baseline = _outputs(program)
    for kwargs in ({}, {"codec": "delta"}, {"max_len": 2},
                   {"branch_targets": "absolute"}, {"match_mode": "optimal"}):
        restored = decompress(compress(program, **kwargs).data)
        assert _outputs(restored) == baseline, kwargs


@given(programs(max_functions=4, max_function_size=25))
@settings(max_examples=20, deadline=None)
def test_property_item_counts_consistent(program):
    # Items decoded from the container equal the dictionary's ref streams.
    from repro.core import build_dictionary

    dictionary = build_dictionary(program)
    reader = open_container(compress(program).data)
    for findex in range(reader.function_count):
        decoded = reader.decoded_items(findex)
        refs = dictionary.function_refs[findex]
        assert [item.length for item in decoded] == [ref.length for ref in refs]
