"""Integration tests for the experiment harness (tiny scale for speed)."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import (
    ablations,
    codecs,
    delta,
    figure3,
    table1,
    table5,
    table6,
    throughput,
)
from repro.experiments.runner import build_parser, main

SCALE = 0.05  # tiny: these tests check plumbing and shape, not calibration


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=SCALE, train_scale=0.05)


class TestContext:
    def test_program_cached(self, context):
        assert context.program("compress") is context.program("compress")

    def test_x86_size_positive(self, context):
        assert context.x86_size("compress") > 0

    def test_ssd_dictionary_bytes_below_total(self, context):
        assert 0 < context.ssd_dictionary_bytes("compress") < context.ssd("compress").size

    def test_item_counts_cover_functions(self, context):
        counts = context.item_counts("compress")
        assert len(counts) == len(context.program("compress").functions)

    def test_leave_one_out_dictionary(self, context):
        d = context.brisc_dictionary(exclude="compress")
        assert len(d) > 0


class TestTable1:
    def test_runs_and_mentions_all_benchmarks(self, context):
        out = table1.run(context, names=["compress", "xlisp"])
        assert "compress" in out
        assert "xlisp" in out
        assert "reuse" in out


class TestTable5:
    def test_size_only_run(self, context):
        out = table5.run(context, names=["compress"], include_brisc=False,
                         include_overhead=False)
        assert "ssd(ours)" in out
        assert "average" in out

    def test_with_overhead(self, context):
        out = table5.run(context, names=["compress"], include_brisc=False,
                         include_overhead=True)
        assert "qual%(ours)" in out


class TestBufferExperiments:
    def test_table6_runs(self, context):
        out = table6.run(context)
        assert "hit%(ours)" in out

    def test_table6_monotone_hit_rate(self, context):
        points = table6.sweep(context, ratios=[0.25, 0.5])
        assert points[0].hit_rate_pct <= points[1].hit_rate_pct
        assert points[0].megabytes_translated >= points[1].megabytes_translated

    def test_figure3_runs(self, context):
        out = figure3.run(context)
        assert "SSD ovh%" in out
        assert "BRISC ovh%" in out

    def test_figure3_overheads_monotone_nonincreasing(self, context):
        data = figure3.sweep_both(context, ratios=[0.25, 0.35, 0.5])
        ssd = [p.overhead_pct for p in data["ssd"]]
        assert ssd == sorted(ssd, reverse=True)


class TestThroughput:
    def test_reports_positive_rates(self, context):
        report = throughput.measure(context, name="compress")
        assert report.measured_copy_mbps > 0
        assert report.modelled_copy_mbps > report.modelled_brisc_mbps

    def test_render(self, context):
        out = throughput.run(context, name="compress")
        assert "copy phase" in out


class TestAblations:
    def test_branch_target_ablation(self, context):
        out = ablations.branch_target_ablation(context, names=["xlisp"])
        assert "relative wins by %" in out

    def test_base_codec_ablation(self, context):
        out = ablations.base_codec_ablation(context, names=["xlisp"])
        assert "lz vs delta %" in out

    def test_sequence_length_ablation(self, context):
        out = ablations.sequence_length_ablation(context, name="compress",
                                                 lengths=(2, 4))
        assert "ratio" in out

    def test_buffer_policy_ablation(self, context):
        out = ablations.buffer_policy_ablation(context, ratios=(0.3,))
        assert "pure LRU" in out


class TestCodecsExhibit:
    def test_covers_every_concrete_codec(self, context):
        out = codecs.run(context, names=["compress", "xlisp"])
        for column in ("ssd B", "brisc B", "lz77-raw B", "auto pick"):
            assert column in out, column
        assert "compress" in out and "xlisp" in out

    def test_concrete_codec_ids_exclude_selectors(self):
        ids = codecs.concrete_codec_ids()
        assert "auto" not in ids
        assert {"ssd", "brisc", "lz77-raw"} <= set(ids)

    def test_parser_accepts_codecs_exhibit(self):
        assert build_parser().parse_args(["codecs"]).exhibit == "codecs"


class TestDeltaExhibit:
    def test_reports_update_and_cold_install_columns(self, context):
        out = delta.run(context, names=["xlisp", "go"])
        for column in ("update B", "update %", "cold B", "cold %", "median"):
            assert column in out, column
        assert "xlisp" in out and "go" in out
        assert "shared base" in out

    def test_parser_accepts_delta_exhibit(self):
        assert build_parser().parse_args(["delta"]).exhibit == "delta"


class TestRunnerCLI:
    def test_parser_accepts_exhibits(self):
        args = build_parser().parse_args(["table1", "--scale", "0.1"])
        assert args.exhibit == "table1"
        assert args.scale == 0.1

    def test_main_runs_table1(self, capsys, tmp_path):
        out_file = tmp_path / "out.txt"
        code = main(["table1", "--scale", "0.05", "--out", str(out_file)])
        assert code == 0
        assert "reuse" in out_file.read_text()
