"""Unit tests for the shard-health and circuit-breaker state machines
(repro.serve.health) — every transition, driven with a fake clock."""

import pytest

from repro.serve.health import (
    CLOSED,
    CircuitBreaker,
    DOWN,
    DRAINING,
    HALF_OPEN,
    OPEN,
    ShardHealth,
    SUSPECT,
    UP,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestShardHealth:
    def test_starts_up_and_routable(self):
        health = ShardHealth("s")
        assert health.state == UP
        assert health.routable

    def test_single_failure_is_suspect_not_down(self):
        health = ShardHealth("s", fail_threshold=3)
        health.record_failure()
        assert health.state == SUSPECT
        assert health.routable          # still worth trying

    def test_consecutive_failures_mark_down(self):
        health = ShardHealth("s", fail_threshold=3)
        for _ in range(3):
            health.record_failure()
        assert health.state == DOWN
        assert not health.routable

    def test_success_resets_failure_streak(self):
        health = ShardHealth("s", fail_threshold=3)
        health.record_failure()
        health.record_failure()
        health.record_success()
        assert health.state == UP
        health.record_failure()
        assert health.state == SUSPECT  # streak restarted, not continued

    def test_rise_threshold_guards_mark_up(self):
        health = ShardHealth("s", fail_threshold=2, rise_threshold=2)
        health.record_failure()
        health.record_failure()
        assert health.state == DOWN
        health.record_success()
        assert health.state == DOWN     # one success is not enough
        health.record_success()
        assert health.state == UP

    def test_failure_mid_rise_resets_rise_streak(self):
        health = ShardHealth("s", fail_threshold=2, rise_threshold=2)
        health.record_failure()
        health.record_failure()
        health.record_success()
        health.record_failure()
        health.record_success()
        assert health.state == DOWN     # rise streak restarted
        health.record_success()
        assert health.state == UP

    def test_draining_not_routable(self):
        health = ShardHealth("s")
        health.record_draining()
        assert health.state == DRAINING
        assert not health.routable

    def test_draining_shard_that_stops_answering_goes_down(self):
        health = ShardHealth("s", fail_threshold=2)
        health.record_draining()
        health.record_failure()
        assert health.state == DRAINING
        health.record_failure()
        assert health.state == DOWN

    def test_draining_shard_recovers_via_rise_threshold(self):
        health = ShardHealth("s", rise_threshold=2)
        health.record_draining()
        health.record_success()
        assert health.state == DRAINING
        health.record_success()
        assert health.state == UP

    def test_transitions_counted(self):
        health = ShardHealth("s", fail_threshold=1)
        health.record_failure()   # up -> down
        health.record_success()
        health.record_success()   # down -> up (default rise=2)
        assert health.transitions == 2

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            ShardHealth("s", fail_threshold=0)
        with pytest.raises(ValueError):
            ShardHealth("s", rise_threshold=0)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_gates_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()          # the half-open trial
        assert breaker.state == HALF_OPEN

    def test_half_open_allows_exactly_one_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert not breaker.allow()      # trial outcome still pending

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_and_rearms_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()      # cooldown restarted at re-open
        clock.advance(1.1)
        assert breaker.allow()

    def test_transitions_counted(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()        # closed -> open
        clock.advance(1.1)
        breaker.allow()                 # open -> half-open
        breaker.record_success()        # half-open -> closed
        assert breaker.transitions == 3

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)
