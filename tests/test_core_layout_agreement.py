"""Property tests: compressor and decompressor layouts must agree.

The whole index-assignment scheme rests on both sides deriving identical
16-bit indices from the canonical serialization orders (DESIGN.md).
These tests rebuild the decode-side layouts from the container sections
and compare them, entry by entry, against the compressor's layouts — for
random programs and for both partitioned and unpartitioned dictionaries.
"""

from hypothesis import assume, given, settings

from repro.core import build_dictionary, plan_partition
from repro.core.partition import PartitionError
from repro.core.layout import build_layouts, layouts_from_sections
from repro.isa import assemble

from .strategies import programs


def _agree(program, common_budget=16384, monkey_capacity=None):
    dictionary = build_dictionary(program)
    if monkey_capacity is not None:
        import repro.core.partition as pm

        original = pm.SEGMENT_CAPACITY
        pm.SEGMENT_CAPACITY = monkey_capacity
        try:
            plan = plan_partition(dictionary, common_budget=common_budget)
        finally:
            pm.SEGMENT_CAPACITY = original
    else:
        plan = plan_partition(dictionary, common_budget=common_budget)
    enc_layouts, common_base_blob, common_tree_blob, segments = build_layouts(
        dictionary, plan)
    dec_layouts = layouts_from_sections(common_base_blob, common_tree_blob,
                                        segments)
    assert len(enc_layouts) == len(dec_layouts)
    for enc, dec in zip(enc_layouts, dec_layouts):
        assert enc.addr_bases == dec.addr_bases
        assert enc.info_of == dec.info_of
        assert enc.paths_of == dec.paths_of
        # Every compressor-side reference index must resolve to the same
        # entry content on the decode side.
        for ref_ids, index in enc.index_of.items():
            path = dec.paths_of[index]
            enc_keys = [dictionary.base_entries[p].key for p in ref_ids]
            dec_keys = [dec.addr_bases[a].key for a in path]
            assert enc_keys == dec_keys
    return plan


class TestAgreementExamples:
    def test_small_program(self):
        program = assemble("""
func main
    li r1, 1
    li r2, 2
    li r1, 1
    li r2, 2
    bnez r1, out
out:
    call f
    ret
end
func f
    li r1, 1
    li r2, 2
    ret
end
""")
        plan = _agree(program)
        assert len(plan.segments) == 1

    def test_partitioned_program(self):
        lines = []
        value = 0
        for findex in range(12):
            lines.append(f"func f{findex}")
            lines.append("    addi r29, r29, -8")
            lines.append("    sw r30, 4(r29)")
            for _ in range(20):
                value += 3
                lines.append(f"    li r1, {value}")
            lines.append("    ret")
            lines.append("end")
        plan = _agree(assemble("\n".join(lines)), common_budget=50,
                      monkey_capacity=200)
        assert len(plan.segments) > 1


@given(programs(max_functions=5, max_function_size=35))
@settings(max_examples=30, deadline=None)
def test_property_layout_agreement(program):
    _agree(program)


@given(programs(max_functions=6, max_function_size=30))
@settings(max_examples=15, deadline=None)
def test_property_layout_agreement_forced_partition(program):
    # Force tiny segments so the partitioned paths get property coverage.
    dictionary = build_dictionary(program)
    needed = len(dictionary.base_entries)
    try:
        _agree(program, common_budget=max(8, needed // 4),
               monkey_capacity=max(needed // 2 + 8, 48))
    except PartitionError:
        # The forced capacity can be infeasible for a single function
        # (its private dictionary alone overflows a segment); that is
        # the partitioner's documented answer, not a layout bug, and
        # agreement is vacuous for such examples.
        assume(False)
