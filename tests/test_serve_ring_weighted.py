"""Property tests for the weighted consistent-hash ring
(repro.serve.ring): weight-proportional splits, minimal movement under
rebalance, and replica sets that never collapse below R distinct shards.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import (
    DEFAULT_REBALANCE_STEP,
    HashRing,
    MAX_WEIGHT,
    MIN_WEIGHT,
)

SHARDS_5 = [f"shard-{index}" for index in range(5)]

weights_strategy = st.lists(
    st.floats(min_value=MIN_WEIGHT, max_value=MAX_WEIGHT,
              allow_nan=False, allow_infinity=False),
    min_size=5, max_size=5)

load_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=5, max_size=5)


def keys(count=512):
    return [f"key:{index}" for index in range(count)]


class TestWeightedConstruction:
    def test_default_weights_are_uniform(self):
        ring = HashRing(SHARDS_5)
        assert ring.weights == {shard: 1.0 for shard in SHARDS_5}
        assert all(ring.vnode_count(s) == ring.vnodes for s in SHARDS_5)

    def test_uniform_weights_match_unweighted_ring(self):
        plain = HashRing(SHARDS_5)
        weighted = HashRing(SHARDS_5, weights={s: 1.0 for s in SHARDS_5})
        for key in keys(128):
            assert plain.primary_for(key) == weighted.primary_for(key)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            HashRing(SHARDS_5, weights={"shard-0": 0.0})
        with pytest.raises(ValueError):
            HashRing(SHARDS_5, weights={"shard-0": -1.0})
        with pytest.raises(ValueError):
            HashRing(SHARDS_5, weights={"nope": 1.0})

    def test_weight_floor_keeps_shard_on_ring(self):
        ring = HashRing(SHARDS_5, vnodes=4,
                        weights={"shard-0": MIN_WEIGHT / 100})
        assert ring.vnode_count("shard-0") >= 1
        assert "shard-0" in ring.replicas_for("anything", 5)

    @given(weights=weights_strategy)
    @settings(max_examples=25, deadline=None)
    def test_load_split_reflects_weights(self, weights):
        """A shard's keyspace share tracks weight/total, within vnode
        noise.  This is the property the rebalancer relies on: raising
        a weight visibly grows that shard's share."""
        mapping = dict(zip(SHARDS_5, weights))
        ring = HashRing(SHARDS_5, weights=mapping)
        split = ring.load_split(samples=4096)
        total = sum(ring.vnode_count(s) for s in SHARDS_5)
        for shard in SHARDS_5:
            expected = ring.vnode_count(shard) / total
            assert split[shard] == pytest.approx(expected, abs=0.09)

    @given(weights=weights_strategy)
    @settings(max_examples=25, deadline=None)
    def test_replicas_never_collapse_below_r(self, weights):
        """R-way replication survives any weight assignment: replica
        sets are R *distinct* shards even when one shard owns most of
        the ring and another sits at the weight floor."""
        mapping = dict(zip(SHARDS_5, weights))
        ring = HashRing(SHARDS_5, weights=mapping)
        for replication in (2, 3, 5):
            for key in keys(64):
                replicas = ring.replicas_for(key, replication)
                assert len(replicas) == replication
                assert len(set(replicas)) == replication


class TestMinimalMovement:
    @given(weights=weights_strategy, load=load_strategy)
    @settings(max_examples=25, deadline=None)
    def test_key_moves_only_when_its_owner_changed_weight(self, weights,
                                                         load):
        """The minimal-movement contract: a key's primary changes only
        if its old or new primary's vnode count changed.  Keys whose
        owners were untouched by the rebalance stay put — by
        construction, since an unchanged shard contributes the exact
        same ring points."""
        before = HashRing(SHARDS_5, weights=dict(zip(SHARDS_5, weights)))
        after = before.rebalance(dict(zip(SHARDS_5, load)))
        changed = {shard for shard in SHARDS_5
                   if before.vnode_count(shard) != after.vnode_count(shard)}
        for key in keys(256):
            old = before.primary_for(key)
            new = after.primary_for(key)
            if old != new:
                assert old in changed or new in changed

    @given(load=load_strategy)
    @settings(max_examples=25, deadline=None)
    def test_rebalance_movement_is_bounded(self, load):
        """One bounded-step round moves a bounded slice of the keyspace:
        at most the fraction of ring points that were added or removed
        (plus sampling slack), never a full reshuffle."""
        before = HashRing(SHARDS_5)
        after = before.rebalance(dict(zip(SHARDS_5, load)),
                                 max_step=DEFAULT_REBALANCE_STEP)
        total = sum(before.vnode_count(s) for s in SHARDS_5)
        churn = sum(abs(after.vnode_count(s) - before.vnode_count(s))
                    for s in SHARDS_5)
        moved = after.movement_from(before, samples=2048)
        assert moved <= churn / total + 0.05

    def test_rebalance_shifts_weight_off_the_hot_shard(self):
        ring = HashRing(SHARDS_5)
        hot = {shard: 10.0 for shard in SHARDS_5}
        hot["shard-2"] = 500.0
        rebalanced = ring.rebalance(hot)
        assert rebalanced.weights["shard-2"] < 1.0
        assert all(rebalanced.weights[s] >= 1.0
                   for s in SHARDS_5 if s != "shard-2")
        # repeated rounds keep shrinking the hot shard, down to the floor
        for _ in range(32):
            rebalanced = rebalanced.rebalance(hot)
        assert rebalanced.weights["shard-2"] == pytest.approx(MIN_WEIGHT)

    def test_rebalance_step_is_bounded_per_round(self):
        ring = HashRing(SHARDS_5)
        extreme = {shard: 1.0 for shard in SHARDS_5}
        extreme["shard-0"] = 1e9
        rebalanced = ring.rebalance(extreme, max_step=0.25)
        for shard in SHARDS_5:
            ratio = rebalanced.weights[shard] / ring.weights[shard]
            assert 0.75 - 1e-9 <= ratio <= 1.25 + 1e-9

    def test_rebalance_without_load_is_identity(self):
        ring = HashRing(SHARDS_5, weights={"shard-1": 2.0})
        assert ring.rebalance({}) is ring
        assert ring.rebalance({s: 0.0 for s in SHARDS_5}) is ring

    def test_rebalance_on_balanced_load_changes_nothing(self):
        ring = HashRing(SHARDS_5)
        rebalanced = ring.rebalance({shard: 7.0 for shard in SHARDS_5})
        assert rebalanced.weights == ring.weights

    def test_rebalance_rejects_bad_step(self):
        ring = HashRing(SHARDS_5)
        with pytest.raises(ValueError):
            ring.rebalance({"shard-0": 1.0}, max_step=0.0)
        with pytest.raises(ValueError):
            ring.rebalance({"shard-0": 1.0}, max_step=1.0)


class TestWeightPlumbing:
    def test_with_weights_merges_over_current(self):
        ring = HashRing(SHARDS_5, weights={"shard-0": 2.0})
        bumped = ring.with_weights({"shard-1": 3.0})
        assert bumped.weights["shard-0"] == 2.0
        assert bumped.weights["shard-1"] == 3.0
        assert ring.weights["shard-1"] == 1.0   # original untouched

    def test_without_preserves_surviving_weights(self):
        ring = HashRing(SHARDS_5,
                        weights={"shard-0": 2.0, "shard-3": 0.5})
        survivor = ring.without("shard-0")
        assert "shard-0" not in survivor.weights
        assert survivor.weights["shard-3"] == 0.5

    def test_movement_from_is_zero_for_identical_rings(self):
        ring = HashRing(SHARDS_5, weights={"shard-2": 1.5})
        clone = HashRing(SHARDS_5, weights={"shard-2": 1.5})
        assert ring.movement_from(clone, samples=512) == 0.0
