"""A simple byte-oriented LZ77 codec.

The paper uses "a simple form of LZ compression" over the concatenated,
sorted instruction groups when compressing base dictionary entries
(section 2.2.1), and cites byte-oriented LZ as the canonical
stream-oriented, *non*-interpretable compressor (section 2).  This module
plays both roles:

* :func:`compress` / :func:`decompress` are used by
  ``repro.core.base_entries`` to pack the split streams.
* ``repro.analysis.ratios`` uses the same codec as a whole-program
  byte-oriented baseline, illustrating why split-stream methods beat
  byte-aligned matching on instruction data.

The format is deliberately simple (the paper stresses that SSD needs only a
few pages of code): a token stream where each token is either a literal run
or a back-reference, with varint-coded lengths and distances.  Matching uses
a hash table over 4-byte prefixes with bounded chain search — greedy, like
the original LZ77 family.
"""

from __future__ import annotations

from .varint import ByteReader, ByteWriter

_MIN_MATCH = 4
_MAX_CHAIN = 32
_WINDOW = 1 << 16


def _hash4(data: bytes, pos: int) -> int:
    return (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    ) * 2654435761 & 0xFFFFFFFF


def compress(data: bytes) -> bytes:
    """Compress ``data``; always decompressible by :func:`decompress`.

    Token format (varints):

    * literal run:   ``0, length, <length raw bytes>``
    * back-reference: ``length (>= 1), distance`` meaning "copy ``length + 3``
      bytes from ``distance`` bytes back".  Overlapping copies are allowed.
    """
    writer = ByteWriter()
    writer.write_uvarint(len(data))
    table: dict = {}
    pos = 0
    literal_start = 0
    n = len(data)

    def flush_literals(end: int) -> None:
        if end > literal_start:
            writer.write_uvarint(0)
            writer.write_uvarint(end - literal_start)
            writer.write_bytes(data[literal_start:end])

    while pos + _MIN_MATCH <= n:
        key = _hash4(data, pos)
        candidates = table.get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            for cand in candidates[-_MAX_CHAIN:][::-1]:
                dist = pos - cand
                if dist > _WINDOW:
                    continue
                # Extend the match as far as it goes.
                length = 0
                limit = n - pos
                while length < limit and data[cand + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = dist
        if best_len >= _MIN_MATCH:
            flush_literals(pos)
            writer.write_uvarint(best_len - _MIN_MATCH + 1)
            writer.write_uvarint(best_dist)
            # Register hash entries inside the match so later data can refer
            # into it (sparsely, to bound compressor time).
            end = pos + best_len
            step = 1 if best_len <= 32 else 4
            while pos < end and pos + _MIN_MATCH <= n:
                table.setdefault(_hash4(data, pos), []).append(pos)
                pos += step
            pos = end
            literal_start = pos
        else:
            table.setdefault(key, []).append(pos)
            pos += 1
    flush_literals(n)
    return writer.getvalue()


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    reader = ByteReader(data)
    expected = reader.read_uvarint()
    out = bytearray()
    while len(out) < expected:
        tag = reader.read_uvarint()
        if tag == 0:
            length = reader.read_uvarint()
            out += reader.read_bytes(length)
        else:
            length = tag + _MIN_MATCH - 1
            dist = reader.read_uvarint()
            if dist == 0 or dist > len(out):
                raise ValueError(
                    f"corrupt LZ stream: distance {dist} at output size {len(out)}"
                )
            start = len(out) - dist
            for i in range(length):  # byte-at-a-time handles overlap
                out.append(out[start + i])
    if len(out) != expected:
        raise ValueError(
            f"corrupt LZ stream: expected {expected} bytes, produced {len(out)}"
        )
    return bytes(out)
