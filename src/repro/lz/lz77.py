"""A simple byte-oriented LZ77 codec.

The paper uses "a simple form of LZ compression" over the concatenated,
sorted instruction groups when compressing base dictionary entries
(section 2.2.1), and cites byte-oriented LZ as the canonical
stream-oriented, *non*-interpretable compressor (section 2).  This module
plays both roles:

* :func:`compress` / :func:`decompress` are used by
  ``repro.core.base_entries`` to pack the split streams.
* ``repro.analysis.ratios`` uses the same codec as a whole-program
  byte-oriented baseline, illustrating why split-stream methods beat
  byte-aligned matching on instruction data.

The format is deliberately simple (the paper stresses that SSD needs only a
few pages of code): a token stream where each token is either a literal run
or a back-reference, with varint-coded lengths and distances.  Matching uses
a hash table over 4-byte prefixes with bounded chain search — greedy, like
the original LZ77 family.
"""

from __future__ import annotations

from typing import Optional

from .. import kernels as _kernels
from ..errors import CorruptContainer, LimitExceeded
from ..kernels.varints import TABLE_MAX_BYTES, TABLE_MIN_BYTES, uvarint_table
from ..obs import REGISTRY
from .varint import ByteReader, ByteWriter

_ENCODE_BYTES = REGISTRY.counter(
    "lz_encode_bytes_total", "Raw bytes fed into the LZ77 encoder.")
_DECODE_BYTES = REGISTRY.counter(
    "lz_decode_bytes_total", "Bytes reconstructed by the LZ77 decoder.")

#: default cap on the declared decompressed size — corrupt or hostile
#: streams cannot make :func:`decompress` allocate beyond this.
MAX_OUTPUT_BYTES = 1 << 26

_MIN_MATCH = 4
_MAX_CHAIN = 32
_WINDOW = 1 << 16
#: Hash-chain lists are trimmed back to ``_MAX_CHAIN`` entries once they
#: grow past this, bounding memory on degenerate (highly repetitive) input.
#: Only the most recent ``_MAX_CHAIN`` candidates are ever consulted, so
#: trimming older ones never changes the output.
_CHAIN_CAP = 4 * _MAX_CHAIN


def _hash4(data: bytes, pos: int) -> int:
    return (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    ) * 2654435761 & 0xFFFFFFFF


def compress(data: bytes) -> bytes:
    """Compress ``data``; always decompressible by :func:`decompress`.

    Token format (varints):

    * literal run:   ``0, length, <length raw bytes>``
    * back-reference: ``length (>= 1), distance`` meaning "copy ``length + 3``
      bytes from ``distance`` bytes back".  Overlapping copies are allowed.
    """
    writer = ByteWriter()
    writer.write_uvarint(len(data))
    table: dict = {}
    pos = 0
    literal_start = 0
    n = len(data)

    def flush_literals(end: int) -> None:
        if end > literal_start:
            writer.write_uvarint(0)
            writer.write_uvarint(end - literal_start)
            writer.write_bytes(data[literal_start:end])

    table_get = table.get
    table_setdefault = table.setdefault

    while pos + _MIN_MATCH <= n:
        key = _hash4(data, pos)
        candidates = table_get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            # Walk the newest _MAX_CHAIN candidates in place, most recent
            # first.  Distance grows monotonically as we walk back, so the
            # first out-of-window candidate ends the scan.
            limit = n - pos
            lo = len(candidates) - _MAX_CHAIN
            if lo < 0:
                lo = 0
            for cidx in range(len(candidates) - 1, lo - 1, -1):
                cand = candidates[cidx]
                dist = pos - cand
                if dist > _WINDOW:
                    break
                if best_len:
                    if best_len >= limit:
                        break
                    # A candidate can only beat best_len if it also matches
                    # at offset best_len; reject cheaply otherwise.
                    if data[cand + best_len] != data[pos + best_len]:
                        continue
                # Extend the match: 16-byte slice compares, then a byte tail.
                length = 0
                while (length + 16 <= limit
                       and data[cand + length:cand + length + 16]
                       == data[pos + length:pos + length + 16]):
                    length += 16
                while length < limit and data[cand + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = dist
        if best_len >= _MIN_MATCH:
            flush_literals(pos)
            writer.write_uvarint(best_len - _MIN_MATCH + 1)
            writer.write_uvarint(best_dist)
            # Register hash entries inside the match so later data can refer
            # into it (sparsely, to bound compressor time).
            end = pos + best_len
            step = 1 if best_len <= 32 else 4
            while pos < end and pos + _MIN_MATCH <= n:
                chain = table_setdefault(_hash4(data, pos), [])
                chain.append(pos)
                if len(chain) > _CHAIN_CAP:
                    del chain[:-_MAX_CHAIN]
                pos += step
            pos = end
            literal_start = pos
        else:
            chain = table_setdefault(key, [])
            chain.append(pos)
            if len(chain) > _CHAIN_CAP:
                del chain[:-_MAX_CHAIN]
            pos += 1
    flush_literals(n)
    _ENCODE_BYTES.inc(n)
    return writer.getvalue()


def decompress(data: bytes, max_output: int = MAX_OUTPUT_BYTES) -> bytes:
    """Inverse of :func:`compress`.

    Every token's declared length is validated against the stream's
    declared output size *before* any bytes are materialized, so a lying
    length field raises :class:`~repro.errors.CorruptContainer` (or
    :class:`~repro.errors.LimitExceeded` for the declared size itself)
    instead of over-allocating or silently producing short output.

    On the numpy backend, mid-size streams take a split-plane fast path:
    all varints are pre-decoded into a per-offset table (one vectorized
    pass) and the token walk does only list indexing.  The fast path is
    speculative — any anomaly re-runs this scalar decoder, which owns the
    error semantics.
    """
    if (_kernels.backend() == "numpy"
            and TABLE_MIN_BYTES <= len(data) <= TABLE_MAX_BYTES):
        result = _decompress_table(data, max_output)
        if result is not None:
            _DECODE_BYTES.inc(len(result))
            _kernels.record_batch("lz77")
            return result
        _kernels.record_fallback("lz77")
    return _decompress_scalar(data, max_output)


def _decompress_table(data: bytes, max_output: int) -> Optional[bytes]:
    """Token walk over the pre-decoded varint plane; ``None`` on anomaly."""
    values, nexts = uvarint_table(data)
    n = len(data)
    if n == 0:
        return None
    expected = values[0]
    pos = nexts[0]
    if pos < 0 or expected > max_output:
        return None
    out = bytearray()
    data_mv = memoryview(data)
    while len(out) < expected:
        if not 0 <= pos < n:
            return None  # truncated token stream
        tag = values[pos]
        pos = nexts[pos]
        # Every token carries a second varint; a cursor at/past the end
        # here means the stream was cut mid-token.
        if not 0 <= pos < n:
            return None
        if tag == 0:
            length = values[pos]
            run_at = nexts[pos]
            if run_at < 0 or length > expected - len(out) or run_at + length > n:
                return None
            out += data_mv[run_at:run_at + length]
            pos = run_at + length
        else:
            length = tag + _MIN_MATCH - 1
            dist = values[pos]
            pos = nexts[pos]
            if pos < 0 or length > expected - len(out):
                return None
            if dist == 0 or dist > len(out):
                return None
            start = len(out) - dist
            if dist >= length:
                out += out[start:start + length]
            else:
                chunk = bytes(out[start:])
                while len(chunk) < length:
                    chunk += chunk
                out += chunk[:length]
    return bytes(out)


def _decompress_scalar(data: bytes, max_output: int) -> bytes:
    reader = ByteReader(data)
    expected = reader.read_uvarint()
    if expected > max_output:
        raise LimitExceeded(
            f"LZ stream declares {expected} output bytes, limit {max_output}",
            offset=0)
    out = bytearray()
    while len(out) < expected:
        token_at = reader.position
        tag = reader.read_uvarint()
        if tag == 0:
            length = reader.read_uvarint()
            if length > expected - len(out):
                raise CorruptContainer(
                    f"corrupt LZ stream: literal run of {length} overruns the "
                    f"declared {expected}-byte output at {len(out)}",
                    offset=token_at)
            out += reader.read_bytes(length)
        else:
            length = tag + _MIN_MATCH - 1
            dist = reader.read_uvarint()
            if length > expected - len(out):
                raise CorruptContainer(
                    f"corrupt LZ stream: copy of {length} overruns the "
                    f"declared {expected}-byte output at {len(out)}",
                    offset=token_at)
            if dist == 0 or dist > len(out):
                raise CorruptContainer(
                    f"corrupt LZ stream: distance {dist} at output size {len(out)}",
                    offset=token_at)
            start = len(out) - dist
            if dist >= length:
                out += out[start:start + length]
            else:
                # Overlapping copy: the source region repeats with period
                # ``dist``.  Double a seed slice until it covers ``length``
                # instead of appending byte by byte.
                chunk = bytes(out[start:])
                while len(chunk) < length:
                    chunk += chunk
                out += chunk[:length]
    _DECODE_BYTES.inc(len(out))
    return bytes(out)
