"""Byte- and bit-level codec substrate.

These are the low-level codecs SSD builds on: bit-granular I/O for
split-stream fields, varints for the container format, delta coding and a
simple LZ77 for base-entry compression (paper section 2.2.1).
"""

from . import arith
from .arith import FenwickTable
from .bitio import BitReader, BitWriter
from .delta import decode_deltas, encode_deltas
from .lz77 import compress, decompress
from .varint import (
    ByteReader,
    ByteWriter,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "FenwickTable",
    "arith",
    "ByteReader",
    "ByteWriter",
    "compress",
    "decompress",
    "decode_deltas",
    "encode_deltas",
    "decode_svarint",
    "decode_uvarint",
    "encode_svarint",
    "encode_uvarint",
]
