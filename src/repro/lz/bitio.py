"""Bit-granular readers and writers.

Split-stream compression (paper section 2) works on fields that are not
byte-aligned, so the codecs in this package need a way to emit and consume
values a bit at a time.  Bits are packed least-significant-bit first within
each byte, which keeps single-bit flags cheap and makes the packing order
easy to reason about in tests.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits LSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bitpos = 0  # bits already used in the final byte (0..7)

    def __len__(self) -> int:
        """Return the number of bits written so far."""
        if not self._bytes:
            return 0
        return 8 * (len(self._bytes) - 1) + (self._bitpos or 8)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if self._bitpos == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 1 << self._bitpos
        self._bitpos = (self._bitpos + 1) % 8

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, least-significant bit first."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if width and value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width):
            self.write_bit((value >> i) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero-bit."""
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return the packed bytes, zero-padding the final partial byte."""
        return bytes(self._bytes)


class BitReader:
    """Reads bits LSB-first from a byte buffer produced by BitWriter."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def bits_remaining(self) -> int:
        """Number of bits left in the underlying buffer (includes padding)."""
        return 8 * len(self._data) - self._pos

    def read_bit(self) -> int:
        """Consume and return one bit."""
        if self._pos >= 8 * len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (self._pos & 7)) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        value = 0
        for i in range(width):
            value |= self.read_bit() << i
        return value

    def read_unary(self) -> int:
        """Consume a unary-coded value (count of one-bits before a zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count
