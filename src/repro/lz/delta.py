"""Delta coding with escape codes for occasional large deltas.

Section 2.2.1 of the paper describes the first of two base-entry codecs the
authors tried: within an instruction group sorted by its largest field,
"delta coding expresses each value as an increment from the previous value
(with suitable escape codes for occasional large deltas)".

The encoding here follows that description:

* Each delta that fits in a signed byte around zero is written as one byte.
* Larger deltas emit an escape byte followed by a signed varint.

The paper found plain LZ over the concatenated groups compressed better;
this module is retained both as a usable codec and to drive the
``ablation-base`` experiment that reproduces that comparison.
"""

from __future__ import annotations

from typing import Iterable, List

from .varint import ByteReader, ByteWriter

# Deltas in [-127, 127] map to a single byte 0..254; byte 255 escapes to a
# signed varint carrying the full delta.
_ESCAPE = 0xFF
_BIAS = 127
_MAX_SMALL = 127
_MIN_SMALL = -127


def encode_deltas(values: Iterable[int]) -> bytes:
    """Delta-code a sequence of integers.

    The first value is stored as a full signed varint; every later value is
    stored as a (possibly escaped) delta from its predecessor.
    """
    writer = ByteWriter()
    values = list(values)
    writer.write_uvarint(len(values))
    if not values:
        return writer.getvalue()
    writer.write_svarint(values[0])
    previous = values[0]
    for value in values[1:]:
        delta = value - previous
        previous = value
        if _MIN_SMALL <= delta <= _MAX_SMALL:
            writer.write_u8(delta + _BIAS)
        else:
            writer.write_u8(_ESCAPE)
            writer.write_svarint(delta)
    return writer.getvalue()


def decode_deltas(data: bytes) -> List[int]:
    """Inverse of :func:`encode_deltas`."""
    reader = ByteReader(data)
    count = reader.read_uvarint()
    if count == 0:
        return []
    first = reader.read_svarint()
    values = [first]
    previous = first
    for _ in range(count - 1):
        byte = reader.read_u8()
        if byte == _ESCAPE:
            delta = reader.read_svarint()
        else:
            delta = byte - _BIAS
        previous += delta
        values.append(previous)
    return values
