"""Adaptive arithmetic coding (the archival baseline from section 2).

The paper cites arithmetic coding strategies as "the most effective
archival program compression solutions" — and, like LZ, fundamentally
stream-oriented: you cannot randomly access a basic block in the middle
of an arithmetically coded stream, which is exactly why SSD exists.  This
module supplies that baseline so the analysis layer can show the full
landscape: interpretable (SSD, BRISC) vs non-interpretable (LZ77,
arithmetic coding) compressors on the same programs.

The implementation is a classic 32-bit integer range coder with an
adaptive order-1 byte model (one frequency table per preceding byte,
periodically halved).  Frequency tables are Fenwick (binary-indexed)
trees, so updates and cumulative lookups are O(log n) per symbol.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..obs import REGISTRY
from .varint import ByteReader, ByteWriter

_ENCODE_BYTES = REGISTRY.counter(
    "arith_encode_bytes_total",
    "Raw bytes fed into the arithmetic encoder.")
_DECODE_BYTES = REGISTRY.counter(
    "arith_decode_bytes_total",
    "Bytes reconstructed by the arithmetic decoder.")

_TOP = 1 << 24
_BOTTOM = 1 << 16
_MAX_RANGE = (1 << 32) - 1
#: rescale threshold for each context's total frequency
_RESCALE = 1 << 13

_SYMBOLS = 257  # 256 bytes + EOF
_EOF = 256
#: tree size: next power of two above the alphabet
_TREE_SIZE = 512


class FenwickTable:
    """Frequency table with O(log n) prefix sums and point updates."""

    def __init__(self, symbols: int = _SYMBOLS) -> None:
        self.symbols = symbols
        self._tree = [0] * (_TREE_SIZE + 1)
        self.total = 0
        for symbol in range(symbols):
            self.add(symbol, 1)

    def add(self, symbol: int, delta: int) -> None:
        self.total += delta
        index = symbol + 1
        while index <= _TREE_SIZE:
            self._tree[index] += delta
            index += index & (-index)

    def cumulative(self, symbol: int) -> int:
        """Sum of frequencies of symbols < ``symbol``."""
        total = 0
        index = symbol
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def frequency(self, symbol: int) -> int:
        return self.cumulative(symbol + 1) - self.cumulative(symbol)

    def locate(self, scaled: int) -> Tuple[int, int, int]:
        """(symbol, cumulative_low, frequency) covering position ``scaled``."""
        if not 0 <= scaled < self.total:
            raise ValueError(f"cumulative position {scaled} outside total {self.total}")
        index = 0
        remaining = scaled
        mask = _TREE_SIZE
        while mask:
            probe = index + mask
            if probe <= _TREE_SIZE and self._tree[probe] <= remaining:
                index = probe
                remaining -= self._tree[probe]
            mask >>= 1
        symbol = index  # index = count of symbols fully below the target
        low = scaled - remaining
        return symbol, low, self.frequency(symbol)

    def halve(self) -> None:
        frequencies = [max(1, (self.frequency(s) + 1) >> 1)
                       for s in range(self.symbols)]
        self._tree = [0] * (_TREE_SIZE + 1)
        self.total = 0
        for symbol, frequency in enumerate(frequencies):
            self.add(symbol, frequency)


class _Model:
    """Adaptive order-1 model: one Fenwick table per preceding byte."""

    def __init__(self) -> None:
        self._contexts: Dict[int, FenwickTable] = {}

    def table(self, context: int) -> FenwickTable:
        table = self._contexts.get(context)
        if table is None:
            table = FenwickTable()
            self._contexts[context] = table
        return table

    def update(self, context: int, symbol: int, increment: int = 32) -> None:
        table = self.table(context)
        table.add(symbol, increment)
        if table.total >= _RESCALE:
            table.halve()


def compress(data: bytes) -> bytes:
    """Arithmetically encode ``data`` (order-1 adaptive model)."""
    model = _Model()
    low = 0
    range_ = _MAX_RANGE
    out = bytearray()
    context = 0

    def encode_symbol(symbol: int) -> None:
        nonlocal low, range_, context
        table = model.table(context)
        cum_low = table.cumulative(symbol)
        frequency = table.frequency(symbol)
        range_ //= table.total
        low = (low + cum_low * range_) & _MAX_RANGE
        range_ *= frequency
        while True:
            if (low ^ (low + range_)) < _TOP:
                pass  # top byte settled
            elif range_ < _BOTTOM:
                range_ = (-low) & (_BOTTOM - 1)
            else:
                break
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MAX_RANGE
            range_ = (range_ << 8) & _MAX_RANGE
        model.update(context, symbol)
        context = symbol if symbol != _EOF else 0

    for byte in data:
        encode_symbol(byte)
    encode_symbol(_EOF)
    for _ in range(4):
        out.append((low >> 24) & 0xFF)
        low = (low << 8) & _MAX_RANGE

    writer = ByteWriter()
    writer.write_uvarint(len(data))
    writer.write_bytes(bytes(out))
    _ENCODE_BYTES.inc(len(data))
    return writer.getvalue()


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    reader = ByteReader(blob)
    expected = reader.read_uvarint()
    payload = reader.read_bytes(reader.remaining)

    model = _Model()
    low = 0
    range_ = _MAX_RANGE
    code = 0
    position = 0
    for _ in range(4):
        code = ((code << 8) | (payload[position] if position < len(payload) else 0)) & _MAX_RANGE
        position += 1

    out = bytearray()
    context = 0
    while True:
        if position > len(payload) + 8:
            raise ValueError("corrupt arithmetic stream: ran past the payload")
        table = model.table(context)
        range_ //= table.total
        if range_ == 0:
            raise ValueError("corrupt arithmetic stream: range collapsed")
        scaled = ((code - low) & _MAX_RANGE) // range_
        if scaled >= table.total:
            raise ValueError("corrupt arithmetic stream")
        symbol, cum_low, frequency = table.locate(scaled)
        low = (low + cum_low * range_) & _MAX_RANGE
        range_ *= frequency
        while True:
            if (low ^ (low + range_)) < _TOP:
                pass
            elif range_ < _BOTTOM:
                range_ = (-low) & (_BOTTOM - 1)
            else:
                break
            code = ((code << 8) | (payload[position] if position < len(payload) else 0)) & _MAX_RANGE
            position += 1
            low = (low << 8) & _MAX_RANGE
            range_ = (range_ << 8) & _MAX_RANGE
        model.update(context, symbol)
        if symbol == _EOF:
            break
        out.append(symbol)
        context = symbol
        if len(out) > expected:
            raise ValueError("corrupt arithmetic stream: overlong output")
    if len(out) != expected:
        raise ValueError(
            f"corrupt arithmetic stream: expected {expected} bytes, got {len(out)}")
    _DECODE_BYTES.inc(len(out))
    return bytes(out)
