"""LEB128-style variable-length integers.

The container format (``repro.core.container``) stores counts, offsets and
field values with these helpers so small values cost one byte.  Signed
values use zig-zag mapping, which keeps small-magnitude negatives short —
important for the delta coder, whose deltas hover around zero.
"""

from __future__ import annotations

from .. import kernels as _kernels
from ..errors import LimitExceeded, TruncatedStream
from ..kernels import varints as _kernel_varints

#: below this run length the vectorized varint kernel's setup costs more
#: than the scalar loop
_RUN_KERNEL_MIN = 8


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 bytes."""
    if value < 0:
        raise ValueError(f"uvarint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> "tuple[int, int]":
    """Decode a LEB128 integer from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise TruncatedStream("truncated uvarint", offset=pos)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise LimitExceeded(
                "uvarint too long (more than 9 continuation bytes)",
                offset=offset)


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one with small magnitudes first."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise ValueError(f"zigzag-encoded value must be non-negative, got {value}")
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer (zig-zag + LEB128)."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> "tuple[int, int]":
    """Decode a signed integer written by :func:`encode_svarint`."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


class ByteReader:
    """Cursor over a byte buffer with varint/fixed-width accessors."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def read_uvarint(self) -> int:
        value, self._pos = decode_uvarint(self._data, self._pos)
        return value

    def read_svarint(self) -> int:
        value, self._pos = decode_svarint(self._data, self._pos)
        return value

    def read_uvarint_run(self, count: int) -> "list[int]":
        """Read ``count`` consecutive uvarints, bulk-decoded when possible.

        The numpy kernel is speculative: truncated or overlong runs fall
        back to the scalar loop, which raises the documented errors at
        the exact failing offset.
        """
        if count <= 0:
            return []
        if _kernels.backend() == "numpy" and count >= _RUN_KERNEL_MIN:
            decoded = _kernel_varints.try_decode_uvarint_run(
                self._data, self._pos, count)
            if decoded is not None:
                values, self._pos = decoded
                _kernels.record_batch("varint_run")
                return values
            _kernels.record_fallback("varint_run")
        read = self.read_uvarint
        return [read() for _ in range(count)]

    def read_svarint_run(self, count: int) -> "list[int]":
        """Zig-zag variant of :meth:`read_uvarint_run`."""
        if count <= 0:
            return []
        if _kernels.backend() == "numpy" and count >= _RUN_KERNEL_MIN:
            decoded = _kernel_varints.try_decode_svarint_run(
                self._data, self._pos, count)
            if decoded is not None:
                values, self._pos = decoded
                _kernels.record_batch("varint_run")
                return values
            _kernels.record_fallback("varint_run")
        read = self.read_svarint
        return [read() for _ in range(count)]

    def read_u8_run(self, count: int) -> "list[int]":
        """Read ``count`` bytes as a list of ints (one slab slice).

        Truncation raises exactly what the ``count``-th scalar
        :meth:`read_u8` would: the cursor stops at the end of the buffer
        and the error reports the single missing byte there.
        """
        if count <= 0:
            return []
        if self.remaining < count:
            self._pos = len(self._data)
            raise TruncatedStream(
                "truncated byte block: need 1 bytes, 0 remain",
                offset=self._pos)
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return list(chunk)

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self._pos + count > len(self._data):
            raise TruncatedStream(
                f"truncated byte block: need {count} bytes, "
                f"{len(self._data) - self._pos} remain", offset=self._pos)
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def read_u8(self) -> int:
        return self.read_bytes(1)[0]

    def read_u16(self) -> int:
        chunk = self.read_bytes(2)
        return chunk[0] | (chunk[1] << 8)

    def read_u32(self) -> int:
        chunk = self.read_bytes(4)
        return chunk[0] | (chunk[1] << 8) | (chunk[2] << 16) | (chunk[3] << 24)


class ByteWriter:
    """Growable byte buffer with varint/fixed-width emitters."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def write_uvarint(self, value: int) -> None:
        self._buf += encode_uvarint(value)

    def write_svarint(self, value: int) -> None:
        self._buf += encode_svarint(value)

    def write_bytes(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        if not 0 <= value < 1 << 8:
            raise ValueError(f"u8 out of range: {value}")
        self._buf.append(value)

    def write_u16(self, value: int) -> None:
        if not 0 <= value < 1 << 16:
            raise ValueError(f"u16 out of range: {value}")
        self._buf.append(value & 0xFF)
        self._buf.append(value >> 8)

    def write_u32(self, value: int) -> None:
        if not 0 <= value < 1 << 32:
            raise ValueError(f"u32 out of range: {value}")
        for shift in (0, 8, 16, 24):
            self._buf.append((value >> shift) & 0xFF)

    def getvalue(self) -> bytes:
        return bytes(self._buf)
