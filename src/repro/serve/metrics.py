"""Server-side observability: request counts, latencies, decode accounting.

One :class:`ServerMetrics` instance per server, updated from the event
loop and from decode worker threads.  Since the observability layer
landed, the counters themselves live in a :class:`~repro.obs.MetricsRegistry`
(per-server by default, so tests don't cross-pollute; pass
``registry=REGISTRY`` to publish into the process-wide one) — the
``STATS`` payload built by :meth:`ServerMetrics.snapshot` is a *view*
over those registry families, and :meth:`ServerMetrics.expose_text`
serves the same numbers in Prometheus text format for ``GET_METRICS``.

Registry families, all prefixed ``serve_``:

* ``serve_requests_total{type=...}``     — requests answered, by wire type
* ``serve_errors_total{code=...}``       — ERROR frames sent, by code name
* ``serve_bytes_in_total`` / ``serve_bytes_out_total``
* ``serve_connections_total{event=opened|closed}``
* ``serve_connections_active``           — gauge, opened minus closed
* ``serve_protocol_failures_total``      — lost frame boundaries
* ``serve_timeouts_total``               — requests past the deadline
* ``serve_coalesced_total``              — requests that joined an
  in-flight decode instead of starting one
* ``serve_decodes_total``                — decode work actually performed
* ``serve_delta_patches_total``          — GET_DELTA requests answered
  with a patch
* ``serve_delta_bytes_saved_total``      — full-transfer bytes avoided
  by those patches (full container size minus patch size)
* ``serve_prefetch_issued_total``        — background decodes issued by
  the markov prefetcher
* ``serve_prefetch_hits_total``          — GET_FUNCTION requests served
  from a prefetched cache entry
* ``serve_delta_no_base_total``          — GET_DELTA requests refused
  E_NO_BASE (the client fell back to a full transfer)
* ``serve_request_seconds{type=...}``    — request latency histogram
* ``serve_decode_seconds``               — cache-miss decode latency
  (the ``serve.decode`` span only; cache hits and coalesced joins are
  excluded)

Latency *percentiles* (p50/p99/max in the STATS payload) still come from
a bounded per-request-type reservoir (the most recent
:data:`RESERVOIR_SIZE` samples) — exact for test-sized runs, constant
memory under unbounded traffic — while the registry histogram gives
scrapers fixed-bucket cumulative counts.

Per-function decode attribution (``decodes_for``, the acceptance check
"only the functions reached were decompressed, exactly once") keeps its
own exact ``(container_id, findex)`` table; the registry family carries
the total, not the per-function cardinality.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from ..obs import DEFAULT_TIME_BUCKETS, MetricsRegistry

#: samples kept per request type for percentile estimation
RESERVOIR_SIZE = 2048


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServerMetrics:
    """Thread-safe server counters backed by a metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._requests = self.registry.counter(
            "serve_requests_total", "Requests answered, by wire type.")
        self._errors = self.registry.counter(
            "serve_errors_total", "ERROR frames sent, by error code name.")
        self._bytes_in = self.registry.counter(
            "serve_bytes_in_total", "Request body bytes received.")
        self._bytes_out = self.registry.counter(
            "serve_bytes_out_total", "Response frame bytes sent.")
        self._connections = self.registry.counter(
            "serve_connections_total",
            "Connection lifecycle events (event=opened|closed).")
        self._active = self.registry.gauge(
            "serve_connections_active", "Connections currently open.")
        self._protocol_failures = self.registry.counter(
            "serve_protocol_failures_total",
            "Connections dropped after a lost frame boundary.")
        self._timeouts = self.registry.counter(
            "serve_timeouts_total", "Requests past the per-request deadline.")
        self._coalesced = self.registry.counter(
            "serve_coalesced_total",
            "Requests that joined an in-flight decode.")
        self._decodes = self.registry.counter(
            "serve_decodes_total", "Decode work actually performed.")
        self._delta_patches = self.registry.counter(
            "serve_delta_patches_total",
            "GET_DELTA requests answered with a patch.")
        self._delta_bytes_saved = self.registry.counter(
            "serve_delta_bytes_saved_total",
            "Full-transfer bytes avoided by GET_DELTA patches.")
        self._delta_no_base = self.registry.counter(
            "serve_delta_no_base_total",
            "GET_DELTA requests refused E_NO_BASE (full-transfer fallback).")
        self._prefetch_issued = self.registry.counter(
            "serve_prefetch_issued_total",
            "Background decodes issued by the markov prefetcher.")
        self._prefetch_hits = self.registry.counter(
            "serve_prefetch_hits_total",
            "GET_FUNCTION requests answered from a prefetched cache entry.")
        self._latency_hist = self.registry.histogram(
            "serve_request_seconds", "Request latency, by wire type.",
            buckets=DEFAULT_TIME_BUCKETS)
        self._decode_hist = self.registry.histogram(
            "serve_decode_seconds",
            "Cache-miss decode latency (the serve.decode span).",
            buckets=DEFAULT_TIME_BUCKETS)
        #: decode work actually performed: (container_id, findex) -> count.
        #: A function served from cache or a coalesced request does NOT
        #: increment this — the acceptance check "only the functions
        #: reached were decompressed, exactly once" reads it directly.
        self.decode_counts: Counter = Counter()
        self._latency: Dict[str, Deque[float]] = {}
        #: cache-miss decode latency reservoir (mirrors the per-type
        #: request reservoirs: exact percentiles for test-sized runs).
        self._decode_latency: Deque[float] = deque(maxlen=RESERVOIR_SIZE)

    # -- recording ----------------------------------------------------------

    def record_connection(self, opened: bool) -> None:
        if opened:
            self._connections.inc(event="opened")
            self._active.inc()
        else:
            self._connections.inc(event="closed")
            self._active.dec()

    def record_request(self, type_name: str, seconds: float,
                       bytes_in: int, bytes_out: int) -> None:
        self._requests.inc(type=type_name)
        self._bytes_in.inc(bytes_in)
        self._bytes_out.inc(bytes_out)
        self._latency_hist.observe(seconds, type=type_name)
        with self._lock:
            reservoir = self._latency.get(type_name)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[type_name] = reservoir
            reservoir.append(seconds)

    def record_error(self, code_name: str) -> None:
        self._errors.inc(code=code_name)

    def record_timeout(self) -> None:
        self._timeouts.inc()

    def record_protocol_failure(self) -> None:
        self._protocol_failures.inc()

    def record_coalesced(self) -> None:
        self._coalesced.inc()

    def record_delta(self, patch_bytes: int, full_bytes: int) -> None:
        self._delta_patches.inc()
        self._delta_bytes_saved.inc(max(0, full_bytes - patch_bytes))

    def record_prefetch_issued(self) -> None:
        self._prefetch_issued.inc()

    def record_prefetch_hit(self) -> None:
        self._prefetch_hits.inc()

    def record_delta_no_base(self) -> None:
        self._delta_no_base.inc()

    def record_decode(self, container_id: str, findex: int,
                      seconds: Optional[float] = None) -> None:
        self._decodes.inc()
        if seconds is not None:
            self._decode_hist.observe(seconds)
        with self._lock:
            self.decode_counts[(container_id, findex)] += 1
            if seconds is not None:
                self._decode_latency.append(seconds)

    # -- registry-backed views (back-compat attribute surface) ---------------

    @property
    def requests(self) -> Counter:
        return Counter({dict(labels).get("type", ""): count
                        for labels, count in self._requests.collect().items()})

    @property
    def errors(self) -> Counter:
        return Counter({dict(labels).get("code", ""): count
                        for labels, count in self._errors.collect().items()})

    @property
    def bytes_in(self) -> int:
        return int(self._bytes_in.value())

    @property
    def bytes_out(self) -> int:
        return int(self._bytes_out.value())

    @property
    def connections_opened(self) -> int:
        return int(self._connections.value(event="opened"))

    @property
    def connections_closed(self) -> int:
        return int(self._connections.value(event="closed"))

    @property
    def protocol_failures(self) -> int:
        return int(self._protocol_failures.value())

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value())

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.value())

    @property
    def delta_patches(self) -> int:
        return int(self._delta_patches.value())

    @property
    def delta_bytes_saved(self) -> int:
        return int(self._delta_bytes_saved.value())

    @property
    def delta_no_base(self) -> int:
        return int(self._delta_no_base.value())

    @property
    def prefetch_issued(self) -> int:
        return int(self._prefetch_issued.value())

    @property
    def prefetch_hits(self) -> int:
        return int(self._prefetch_hits.value())

    # -- reading ------------------------------------------------------------

    def decodes_for(self, container_id: str) -> Dict[int, int]:
        """Per-function decode counts for one container."""
        with self._lock:
            return {findex: count
                    for (cid, findex), count in self.decode_counts.items()
                    if cid == container_id}

    def expose_text(self) -> str:
        """Prometheus text exposition of this server's registry."""
        return self.registry.expose_text()

    def snapshot(self, cache_stats: Optional[dict] = None,
                 store_stats: Optional[dict] = None,
                 admission_stats: Optional[dict] = None) -> dict:
        """JSON-safe, stable-keyed metrics snapshot (the STATS payload)."""
        with self._lock:
            latency = {}
            for type_name, reservoir in sorted(self._latency.items()):
                samples = list(reservoir)
                latency[type_name] = {
                    "count": len(samples),
                    "p50_ms": percentile(samples, 0.50) * 1e3,
                    "p99_ms": percentile(samples, 0.99) * 1e3,
                    "max_ms": (max(samples) * 1e3) if samples else 0.0,
                }
            decode_samples = list(self._decode_latency)
            decode_latency = {
                "count": len(decode_samples),
                "p50_ms": percentile(decode_samples, 0.50) * 1e3,
                "p99_ms": percentile(decode_samples, 0.99) * 1e3,
                "max_ms": (max(decode_samples) * 1e3) if decode_samples
                          else 0.0,
            }
            decoded: Dict[str, Dict[str, int]] = {}
            for (cid, _findex), count in self.decode_counts.items():
                entry = decoded.setdefault(cid, {"functions": 0, "decodes": 0})
                entry["functions"] += 1
                entry["decodes"] += count
            decodes_total = sum(self.decode_counts.values())
        requests = self.requests
        errors = self.errors
        snapshot = {
            "requests": dict(sorted(requests.items())),
            "requests_total": sum(requests.values()),
            "errors": dict(sorted(errors.items())),
            "errors_total": sum(errors.values()),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "connections": {
                "opened": self.connections_opened,
                "closed": self.connections_closed,
                "active": self.connections_opened - self.connections_closed,
            },
            "protocol_failures": self.protocol_failures,
            "timeouts": self.timeouts,
            "coalesced": self.coalesced,
            "latency": latency,
            "decode_latency": decode_latency,
            "decoded": dict(sorted(decoded.items())),
            "decodes_total": decodes_total,
            "delta": {
                "patches": self.delta_patches,
                "bytes_saved": self.delta_bytes_saved,
                "no_base": self.delta_no_base,
            },
            "prefetch": {
                "issued": self.prefetch_issued,
                "hits": self.prefetch_hits,
            },
        }
        if cache_stats is not None:
            snapshot["cache"] = cache_stats
        if store_stats is not None:
            snapshot["store"] = store_stats
        if admission_stats is not None:
            snapshot["cache_admission"] = admission_stats
        return snapshot


#: numeric encoding of shard health states for the state gauge
#: (gauges carry floats; dashboards map the value back to the name)
SHARD_STATE_CODES = {"up": 0, "suspect": 1, "draining": 2, "down": 3}

#: numeric encoding of breaker states for the breaker gauge
BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}

#: router hop histogram buckets: attempts consumed per request
HOP_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0)


class RouterMetrics:
    """Thread-safe cluster-router counters backed by a metrics registry.

    Families, all prefixed ``cluster_``, mirror :class:`ServerMetrics`'
    registry pattern; the router's ``STATS`` payload is a view over them
    just like a shard's.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._requests = self.registry.counter(
            "cluster_requests_total",
            "Requests routed through the cluster front-end, by wire type.")
        self._errors = self.registry.counter(
            "cluster_errors_total",
            "ERROR frames the router sent to clients, by error code name.")
        self._shard_state = self.registry.gauge(
            "cluster_shard_state",
            "Health state per shard (0=up 1=suspect 2=draining 3=down).")
        self._failovers = self.registry.counter(
            "cluster_failovers_total",
            "Requests re-routed to another replica after a shard failed.")
        self._retries = self.registry.counter(
            "cluster_retries_total",
            "Backoff-then-retry attempts the router made on behalf of "
            "clients.")
        self._breaker_state = self.registry.gauge(
            "cluster_breaker_state",
            "Circuit-breaker state per shard (0=closed 1=half-open 2=open).")
        self._breaker_transitions = self.registry.counter(
            "cluster_breaker_transitions_total",
            "Circuit-breaker state entries, by shard and state entered.")
        self._hops = self.registry.histogram(
            "cluster_hops",
            "Shard attempts consumed per routed request.",
            buckets=HOP_BUCKETS)
        self._unavailable = self.registry.counter(
            "cluster_unavailable_total",
            "Requests answered E_UNAVAILABLE (no live replica remained).")
        self._probe_failures = self.registry.counter(
            "cluster_probe_failures_total",
            "Health probes that failed, by shard.")
        self._latency_hist = self.registry.histogram(
            "cluster_request_seconds",
            "End-to-end routed request latency, by wire type.",
            buckets=DEFAULT_TIME_BUCKETS)
        self._rebalances = self.registry.counter(
            "cluster_rebalances_total",
            "Vnode-weight rebalance rounds the router applied.")
        self._vnode_weight = self.registry.gauge(
            "cluster_vnode_weight",
            "Current consistent-hash vnode weight per shard (1.0=uniform).")
        self._syncs = self.registry.counter(
            "cluster_syncs_total",
            "SYNC_STATE gossip exchanges, by direction (sent/received).")
        self._cache_hits = self.registry.counter(
            "router_cache_hits_total",
            "Routed GETs answered from the router response cache.")
        self._cache_misses = self.registry.counter(
            "router_cache_misses_total",
            "Cacheable routed GETs that had to reach a shard.")
        self._cache_evictions = self.registry.counter(
            "router_cache_evictions_total",
            "Response-cache entries evicted to respect the byte budget.")
        self._cache_bytes = self.registry.gauge(
            "router_cache_bytes",
            "Bytes currently held by the router response cache.")
        self._latency: Dict[str, Deque[float]] = {}

    # -- recording ----------------------------------------------------------

    def record_request(self, type_name: str, seconds: float,
                       hops: int) -> None:
        self._requests.inc(type=type_name)
        self._latency_hist.observe(seconds, type=type_name)
        self._hops.observe(float(hops))
        with self._lock:
            reservoir = self._latency.get(type_name)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[type_name] = reservoir
            reservoir.append(seconds)

    def record_error(self, code_name: str) -> None:
        self._errors.inc(code=code_name)

    def record_shard_state(self, shard_id: str, state: str) -> None:
        self._shard_state.set(float(SHARD_STATE_CODES.get(state, 3)),
                              shard=shard_id)

    def record_failover(self, shard_id: str) -> None:
        self._failovers.inc(shard=shard_id)

    def record_retry(self) -> None:
        self._retries.inc()

    def record_breaker_state(self, shard_id: str, state: str) -> None:
        self._breaker_state.set(float(BREAKER_STATE_CODES.get(state, 2)),
                                shard=shard_id)

    def record_breaker_transition(self, shard_id: str, state: str) -> None:
        self._breaker_transitions.inc(shard=shard_id, state=state)

    def record_unavailable(self) -> None:
        self._unavailable.inc()

    def record_probe_failure(self, shard_id: str) -> None:
        self._probe_failures.inc(shard=shard_id)

    def record_rebalance(self, weights: Dict[str, float]) -> None:
        self._rebalances.inc()
        self.record_vnode_weights(weights)

    def record_vnode_weights(self, weights: Dict[str, float]) -> None:
        for shard_id, weight in weights.items():
            self._vnode_weight.set(weight, shard=shard_id)

    def record_sync(self, direction: str) -> None:
        self._syncs.inc(direction=direction)

    def record_cache_hit(self) -> None:
        self._cache_hits.inc()

    def record_cache_miss(self) -> None:
        self._cache_misses.inc()

    def record_cache_evictions(self, count: int) -> None:
        if count > 0:
            self._cache_evictions.inc(count)

    def record_cache_bytes(self, current_bytes: int) -> None:
        self._cache_bytes.set(float(current_bytes))

    # -- registry-backed views ----------------------------------------------

    @property
    def requests(self) -> Counter:
        return Counter({dict(labels).get("type", ""): count
                        for labels, count in self._requests.collect().items()})

    @property
    def errors(self) -> Counter:
        return Counter({dict(labels).get("code", ""): count
                        for labels, count in self._errors.collect().items()})

    @property
    def failovers(self) -> int:
        return int(sum(self._failovers.collect().values()))

    @property
    def retries(self) -> int:
        return int(self._retries.value())

    @property
    def unavailable(self) -> int:
        return int(self._unavailable.value())

    # -- reading ------------------------------------------------------------

    def expose_text(self) -> str:
        """Prometheus text exposition of this router's registry."""
        return self.registry.expose_text()

    def snapshot(self, shard_states: Optional[Dict[str, str]] = None) -> dict:
        """JSON-safe router stats (the router's STATS payload)."""
        with self._lock:
            latency = {}
            for type_name, reservoir in sorted(self._latency.items()):
                samples = list(reservoir)
                latency[type_name] = {
                    "count": len(samples),
                    "p50_ms": percentile(samples, 0.50) * 1e3,
                    "p99_ms": percentile(samples, 0.99) * 1e3,
                    "max_ms": (max(samples) * 1e3) if samples else 0.0,
                }
        requests = self.requests
        errors = self.errors
        failovers = {dict(labels).get("shard", ""): int(count)
                     for labels, count in self._failovers.collect().items()}
        probe_failures = {
            dict(labels).get("shard", ""): int(count)
            for labels, count in self._probe_failures.collect().items()}
        snapshot = {
            "requests": dict(sorted(requests.items())),
            "requests_total": sum(requests.values()),
            "errors": dict(sorted(errors.items())),
            "errors_total": sum(errors.values()),
            "failovers": dict(sorted(failovers.items())),
            "failovers_total": sum(failovers.values()),
            "retries": self.retries,
            "unavailable": self.unavailable,
            "probe_failures": dict(sorted(probe_failures.items())),
            "latency": latency,
            "rebalances": int(self._rebalances.value()),
            "vnode_weights": {
                dict(labels).get("shard", ""): value
                for labels, value in self._vnode_weight.collect().items()},
            "cache": {
                "hits": int(self._cache_hits.value()),
                "misses": int(self._cache_misses.value()),
                "evictions": int(self._cache_evictions.value()),
                "current_bytes": int(self._cache_bytes.value()),
            },
        }
        if shard_states is not None:
            snapshot["shards"] = dict(sorted(shard_states.items()))
        return snapshot


__all__ = [
    "BREAKER_STATE_CODES",
    "HOP_BUCKETS",
    "RESERVOIR_SIZE",
    "RouterMetrics",
    "SHARD_STATE_CODES",
    "ServerMetrics",
    "percentile",
]
