"""Server-side observability: request counts, latencies, decode accounting.

One :class:`ServerMetrics` instance per server, updated from the event
loop and from decode worker threads.  Since the observability layer
landed, the counters themselves live in a :class:`~repro.obs.MetricsRegistry`
(per-server by default, so tests don't cross-pollute; pass
``registry=REGISTRY`` to publish into the process-wide one) — the
``STATS`` payload built by :meth:`ServerMetrics.snapshot` is a *view*
over those registry families, and :meth:`ServerMetrics.expose_text`
serves the same numbers in Prometheus text format for ``GET_METRICS``.

Registry families, all prefixed ``serve_``:

* ``serve_requests_total{type=...}``     — requests answered, by wire type
* ``serve_errors_total{code=...}``       — ERROR frames sent, by code name
* ``serve_bytes_in_total`` / ``serve_bytes_out_total``
* ``serve_connections_total{event=opened|closed}``
* ``serve_connections_active``           — gauge, opened minus closed
* ``serve_protocol_failures_total``      — lost frame boundaries
* ``serve_timeouts_total``               — requests past the deadline
* ``serve_coalesced_total``              — requests that joined an
  in-flight decode instead of starting one
* ``serve_decodes_total``                — decode work actually performed
* ``serve_request_seconds{type=...}``    — request latency histogram
* ``serve_decode_seconds``               — cache-miss decode latency
  (the ``serve.decode`` span only; cache hits and coalesced joins are
  excluded)

Latency *percentiles* (p50/p99/max in the STATS payload) still come from
a bounded per-request-type reservoir (the most recent
:data:`RESERVOIR_SIZE` samples) — exact for test-sized runs, constant
memory under unbounded traffic — while the registry histogram gives
scrapers fixed-bucket cumulative counts.

Per-function decode attribution (``decodes_for``, the acceptance check
"only the functions reached were decompressed, exactly once") keeps its
own exact ``(container_id, findex)`` table; the registry family carries
the total, not the per-function cardinality.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from ..obs import DEFAULT_TIME_BUCKETS, MetricsRegistry

#: samples kept per request type for percentile estimation
RESERVOIR_SIZE = 2048


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServerMetrics:
    """Thread-safe server counters backed by a metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._requests = self.registry.counter(
            "serve_requests_total", "Requests answered, by wire type.")
        self._errors = self.registry.counter(
            "serve_errors_total", "ERROR frames sent, by error code name.")
        self._bytes_in = self.registry.counter(
            "serve_bytes_in_total", "Request body bytes received.")
        self._bytes_out = self.registry.counter(
            "serve_bytes_out_total", "Response frame bytes sent.")
        self._connections = self.registry.counter(
            "serve_connections_total",
            "Connection lifecycle events (event=opened|closed).")
        self._active = self.registry.gauge(
            "serve_connections_active", "Connections currently open.")
        self._protocol_failures = self.registry.counter(
            "serve_protocol_failures_total",
            "Connections dropped after a lost frame boundary.")
        self._timeouts = self.registry.counter(
            "serve_timeouts_total", "Requests past the per-request deadline.")
        self._coalesced = self.registry.counter(
            "serve_coalesced_total",
            "Requests that joined an in-flight decode.")
        self._decodes = self.registry.counter(
            "serve_decodes_total", "Decode work actually performed.")
        self._latency_hist = self.registry.histogram(
            "serve_request_seconds", "Request latency, by wire type.",
            buckets=DEFAULT_TIME_BUCKETS)
        self._decode_hist = self.registry.histogram(
            "serve_decode_seconds",
            "Cache-miss decode latency (the serve.decode span).",
            buckets=DEFAULT_TIME_BUCKETS)
        #: decode work actually performed: (container_id, findex) -> count.
        #: A function served from cache or a coalesced request does NOT
        #: increment this — the acceptance check "only the functions
        #: reached were decompressed, exactly once" reads it directly.
        self.decode_counts: Counter = Counter()
        self._latency: Dict[str, Deque[float]] = {}
        #: cache-miss decode latency reservoir (mirrors the per-type
        #: request reservoirs: exact percentiles for test-sized runs).
        self._decode_latency: Deque[float] = deque(maxlen=RESERVOIR_SIZE)

    # -- recording ----------------------------------------------------------

    def record_connection(self, opened: bool) -> None:
        if opened:
            self._connections.inc(event="opened")
            self._active.inc()
        else:
            self._connections.inc(event="closed")
            self._active.dec()

    def record_request(self, type_name: str, seconds: float,
                       bytes_in: int, bytes_out: int) -> None:
        self._requests.inc(type=type_name)
        self._bytes_in.inc(bytes_in)
        self._bytes_out.inc(bytes_out)
        self._latency_hist.observe(seconds, type=type_name)
        with self._lock:
            reservoir = self._latency.get(type_name)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[type_name] = reservoir
            reservoir.append(seconds)

    def record_error(self, code_name: str) -> None:
        self._errors.inc(code=code_name)

    def record_timeout(self) -> None:
        self._timeouts.inc()

    def record_protocol_failure(self) -> None:
        self._protocol_failures.inc()

    def record_coalesced(self) -> None:
        self._coalesced.inc()

    def record_decode(self, container_id: str, findex: int,
                      seconds: Optional[float] = None) -> None:
        self._decodes.inc()
        if seconds is not None:
            self._decode_hist.observe(seconds)
        with self._lock:
            self.decode_counts[(container_id, findex)] += 1
            if seconds is not None:
                self._decode_latency.append(seconds)

    # -- registry-backed views (back-compat attribute surface) ---------------

    @property
    def requests(self) -> Counter:
        return Counter({dict(labels).get("type", ""): count
                        for labels, count in self._requests.collect().items()})

    @property
    def errors(self) -> Counter:
        return Counter({dict(labels).get("code", ""): count
                        for labels, count in self._errors.collect().items()})

    @property
    def bytes_in(self) -> int:
        return int(self._bytes_in.value())

    @property
    def bytes_out(self) -> int:
        return int(self._bytes_out.value())

    @property
    def connections_opened(self) -> int:
        return int(self._connections.value(event="opened"))

    @property
    def connections_closed(self) -> int:
        return int(self._connections.value(event="closed"))

    @property
    def protocol_failures(self) -> int:
        return int(self._protocol_failures.value())

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value())

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.value())

    # -- reading ------------------------------------------------------------

    def decodes_for(self, container_id: str) -> Dict[int, int]:
        """Per-function decode counts for one container."""
        with self._lock:
            return {findex: count
                    for (cid, findex), count in self.decode_counts.items()
                    if cid == container_id}

    def expose_text(self) -> str:
        """Prometheus text exposition of this server's registry."""
        return self.registry.expose_text()

    def snapshot(self, cache_stats: Optional[dict] = None,
                 store_stats: Optional[dict] = None) -> dict:
        """JSON-safe, stable-keyed metrics snapshot (the STATS payload)."""
        with self._lock:
            latency = {}
            for type_name, reservoir in sorted(self._latency.items()):
                samples = list(reservoir)
                latency[type_name] = {
                    "count": len(samples),
                    "p50_ms": percentile(samples, 0.50) * 1e3,
                    "p99_ms": percentile(samples, 0.99) * 1e3,
                    "max_ms": (max(samples) * 1e3) if samples else 0.0,
                }
            decode_samples = list(self._decode_latency)
            decode_latency = {
                "count": len(decode_samples),
                "p50_ms": percentile(decode_samples, 0.50) * 1e3,
                "p99_ms": percentile(decode_samples, 0.99) * 1e3,
                "max_ms": (max(decode_samples) * 1e3) if decode_samples
                          else 0.0,
            }
            decoded: Dict[str, Dict[str, int]] = {}
            for (cid, _findex), count in self.decode_counts.items():
                entry = decoded.setdefault(cid, {"functions": 0, "decodes": 0})
                entry["functions"] += 1
                entry["decodes"] += count
            decodes_total = sum(self.decode_counts.values())
        requests = self.requests
        errors = self.errors
        snapshot = {
            "requests": dict(sorted(requests.items())),
            "requests_total": sum(requests.values()),
            "errors": dict(sorted(errors.items())),
            "errors_total": sum(errors.values()),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "connections": {
                "opened": self.connections_opened,
                "closed": self.connections_closed,
                "active": self.connections_opened - self.connections_closed,
            },
            "protocol_failures": self.protocol_failures,
            "timeouts": self.timeouts,
            "coalesced": self.coalesced,
            "latency": latency,
            "decode_latency": decode_latency,
            "decoded": dict(sorted(decoded.items())),
            "decodes_total": decodes_total,
        }
        if cache_stats is not None:
            snapshot["cache"] = cache_stats
        if store_stats is not None:
            snapshot["store"] = store_stats
        return snapshot


__all__ = ["RESERVOIR_SIZE", "ServerMetrics", "percentile"]
