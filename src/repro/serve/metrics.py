"""Server-side observability: request counts, latencies, decode accounting.

One :class:`ServerMetrics` instance per server, updated from the event
loop and from decode worker threads (hence the lock).  ``snapshot()``
produces the stable-keyed dict the ``STATS`` request returns and
``ssd serve --metrics-interval`` prints — machine-readable first, so CI
and load tests can assert on it.

Latency percentiles come from a bounded per-request-type reservoir (the
most recent :data:`RESERVOIR_SIZE` samples), which keeps memory constant
under unbounded traffic while staying exact for test-sized runs.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Tuple

#: samples kept per request type for percentile estimation
RESERVOIR_SIZE = 2048


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServerMetrics:
    """Thread-safe counters + latency reservoirs for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Counter = Counter()          # type name -> count
        self.errors: Counter = Counter()            # error code name -> count
        self.bytes_in = 0
        self.bytes_out = 0
        self.connections_opened = 0
        self.connections_closed = 0
        self.protocol_failures = 0
        self.timeouts = 0
        self.coalesced = 0
        #: decode work actually performed: (container_id, findex) -> count.
        #: A function served from cache or a coalesced request does NOT
        #: increment this — the acceptance check "only the functions
        #: reached were decompressed, exactly once" reads it directly.
        self.decode_counts: Counter = Counter()
        self._latency: Dict[str, Deque[float]] = {}

    # -- recording ----------------------------------------------------------

    def record_connection(self, opened: bool) -> None:
        with self._lock:
            if opened:
                self.connections_opened += 1
            else:
                self.connections_closed += 1

    def record_request(self, type_name: str, seconds: float,
                       bytes_in: int, bytes_out: int) -> None:
        with self._lock:
            self.requests[type_name] += 1
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out
            reservoir = self._latency.get(type_name)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[type_name] = reservoir
            reservoir.append(seconds)

    def record_error(self, code_name: str) -> None:
        with self._lock:
            self.errors[code_name] += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_protocol_failure(self) -> None:
        with self._lock:
            self.protocol_failures += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_decode(self, container_id: str, findex: int) -> None:
        with self._lock:
            self.decode_counts[(container_id, findex)] += 1

    # -- reading ------------------------------------------------------------

    def decodes_for(self, container_id: str) -> Dict[int, int]:
        """Per-function decode counts for one container."""
        with self._lock:
            return {findex: count
                    for (cid, findex), count in self.decode_counts.items()
                    if cid == container_id}

    def snapshot(self, cache_stats: Optional[dict] = None,
                 store_stats: Optional[dict] = None) -> dict:
        """JSON-safe, stable-keyed metrics snapshot (the STATS payload)."""
        with self._lock:
            latency = {}
            for type_name, reservoir in sorted(self._latency.items()):
                samples = list(reservoir)
                latency[type_name] = {
                    "count": len(samples),
                    "p50_ms": percentile(samples, 0.50) * 1e3,
                    "p99_ms": percentile(samples, 0.99) * 1e3,
                    "max_ms": (max(samples) * 1e3) if samples else 0.0,
                }
            decoded: Dict[str, Dict[str, int]] = {}
            for (cid, _findex), count in self.decode_counts.items():
                entry = decoded.setdefault(cid, {"functions": 0, "decodes": 0})
                entry["functions"] += 1
                entry["decodes"] += count
            snapshot = {
                "requests": dict(sorted(self.requests.items())),
                "requests_total": sum(self.requests.values()),
                "errors": dict(sorted(self.errors.items())),
                "errors_total": sum(self.errors.values()),
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "connections": {
                    "opened": self.connections_opened,
                    "closed": self.connections_closed,
                    "active": self.connections_opened - self.connections_closed,
                },
                "protocol_failures": self.protocol_failures,
                "timeouts": self.timeouts,
                "coalesced": self.coalesced,
                "latency": latency,
                "decoded": dict(sorted(decoded.items())),
                "decodes_total": sum(self.decode_counts.values()),
            }
        if cache_stats is not None:
            snapshot["cache"] = cache_stats
        if store_stats is not None:
            snapshot["store"] = store_stats
        return snapshot


__all__ = ["RESERVOIR_SIZE", "ServerMetrics", "percentile"]
