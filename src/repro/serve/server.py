"""The async SSD code server.

One asyncio event loop multiplexes many client connections; CPU-bound
decode work (verify-gated admission, phase-one dictionary decompression,
per-function item expansion) runs on worker threads via
``asyncio.to_thread`` so the loop keeps serving frames.  Three mechanisms
keep it healthy under load:

* **Request coalescing** — concurrent misses for the same
  ``(container, function)`` share one in-flight decode future; a
  container's functions are decoded at most once while hot (the
  ``STATS`` decode counters prove it).
* **Bounded concurrency with backpressure** — an asyncio semaphore caps
  simultaneous decode threads; requests beyond ``max_queue_depth``
  waiters are refused with ``E_BUSY`` instead of queueing unboundedly.
* **Per-request deadlines** — a request that exceeds
  ``request_timeout`` answers with ``E_TIMEOUT``; the connection (and
  the event loop) survive.

Every failure mode maps onto a protocol ERROR frame via the
``repro.errors`` taxonomy; only a lost frame boundary (bad CRC,
oversized frame) closes the connection, since framing cannot be
recovered.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from ..codecs import CodecReader, open_any
from ..errors import (
    ChecksumMismatch,
    CorruptContainer,
    LimitExceeded,
    NoBaseError,
    ProtocolError,
    ReproError,
    TruncatedStream,
    UnavailableError,
)
from ..lz.varint import decode_uvarint
from ..obs import TRACER
from ..profile.markov import MarkovPredictor
from . import protocol
from .cache import DEFAULT_CACHE_BYTES, GhostListAdmission, SharedLRUCache
from .metrics import ServerMetrics
from .store import AdmissionError, ContainerStore, container_id_of

#: default ceiling on simultaneous decode threads
DEFAULT_MAX_CONCURRENCY = 8
#: default ceiling on decode requests waiting for a thread slot
DEFAULT_MAX_QUEUE_DEPTH = 64
#: default per-request deadline (seconds)
DEFAULT_REQUEST_TIMEOUT = 30.0
#: default ceiling on how long a drain waits for in-flight work
DEFAULT_DRAIN_TIMEOUT = 10.0
#: bound on the server prefetcher's markov state table — states are
#: ``(container_id, findex)`` pairs, so this must comfortably exceed the
#: function count of the largest expected container (word97 @ 1.0 is
#: ~5k functions); ~200 bytes/state puts the worst case near 13 MB
PREFETCHER_MAX_STATES = 65_536


@dataclass
class ServerConfig:
    """Tunables for one :class:`SSDServer`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral; read .port after start
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    max_frame: int = protocol.MAX_FRAME_BYTES
    cache_bytes: int = DEFAULT_CACHE_BYTES
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    #: predicted successors to background-decode after each GET_FUNCTION
    #: (0 disables the markov prefetcher)
    prefetch_depth: int = 0
    #: screen eviction-forcing cache inserts through a ghost-list
    #: frequency filter (GhostListAdmission) instead of always admitting
    cache_admission: bool = False


def _error_code_for(exc: ReproError) -> int:
    """Map a taxonomy exception onto a wire error code."""
    if isinstance(exc, AdmissionError):
        return protocol.E_CORRUPT
    if isinstance(exc, NoBaseError):
        return protocol.E_NO_BASE
    if isinstance(exc, UnavailableError):
        return protocol.E_UNAVAILABLE
    if isinstance(exc, LimitExceeded):
        return protocol.E_LIMIT
    if isinstance(exc, (ChecksumMismatch, TruncatedStream, CorruptContainer)):
        return protocol.E_CORRUPT
    if isinstance(exc, ProtocolError):
        return protocol.E_BAD_REQUEST
    return protocol.E_INTERNAL


async def read_frame_async(reader: asyncio.StreamReader,
                           max_frame: int = protocol.MAX_FRAME_BYTES
                           ) -> Optional[protocol.Message]:
    """Asyncio twin of :func:`protocol.read_frame`; ``None`` on clean EOF.

    Shared between the shard server and the cluster router (both sit on
    the receiving end of the same framing).
    """
    length_bytes = bytearray()
    while True:
        try:
            chunk = await reader.readexactly(1)
        except asyncio.IncompleteReadError:
            if not length_bytes:
                return None
            raise ProtocolError("connection closed mid frame-length varint")
        length_bytes += chunk
        if not chunk[0] & 0x80:
            break
        if len(length_bytes) > 10:
            raise ProtocolError("frame-length varint too long")
    length, _ = decode_uvarint(bytes(length_bytes))
    if length > max_frame:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{max_frame}-byte limit")
    try:
        payload = await reader.readexactly(length)
        crc = int.from_bytes(await reader.readexactly(4), "little")
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid frame ({len(exc.partial)} of "
            f"{length} payload bytes)") from exc
    return protocol.parse_payload(payload, crc)


class SSDServer:
    """Asyncio server paging compressed functions out of a container store."""

    def __init__(self, store: Optional[ContainerStore] = None,
                 config: Optional[ServerConfig] = None,
                 cache: Optional[SharedLRUCache] = None,
                 metrics: Optional[ServerMetrics] = None) -> None:
        self.config = config or ServerConfig()
        self.store = store if store is not None else ContainerStore()
        self.cache = cache or SharedLRUCache(
            self.config.cache_bytes,
            policy=GhostListAdmission() if self.config.cache_admission
            else None)
        self.metrics = metrics or ServerMetrics()
        #: markov next-function predictor, learning from the request
        #: stream and seeded from container profile hints; None when
        #: prefetch is disabled
        # Sized well past the per-client default: server states are
        # (container_id, findex) pairs across every admitted container,
        # and a single word97-scale container already has ~5k functions
        # — the default 4096-state table would evict hint-seeded states
        # before the first replay reaches them.
        self.prefetcher: Optional[MarkovPredictor] = (
            MarkovPredictor(max_states=PREFETCHER_MAX_STATES)
            if self.config.prefetch_depth > 0 else None)
        #: container ids whose profile hints already seeded the predictor
        self._seeded: Set[str] = set()
        self._seeded_lock = threading.Lock()
        #: cache keys inserted by prefetch and not yet hit (loop-only)
        self._prefetched: Set[Tuple] = set()
        self._prefetch_tasks: Set[asyncio.Task] = set()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        # In-flight decode futures, keyed by cache key.  Only ever touched
        # from the event loop, so no lock is needed.
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        #: requests currently inside _dispatch (event-loop-only)
        self._active_requests = 0
        #: set once drain() starts; new decode/put work answers
        #: E_UNAVAILABLE while observability ops keep answering
        self._draining = False
        #: open connection writers, for abrupt teardown (kill())
        self._writers: Set[asyncio.StreamWriter] = set()
        #: chaos/test hook called thread-side before every decode with
        #: (container_id, findex); raising or sleeping here models a
        #: sick shard (see repro.faults.chaos)
        self.decode_hook: Optional[Callable[[str, int], None]] = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight_count(self) -> int:
        """Requests being dispatched plus shared decode tasks in flight."""
        return self._active_requests + len(self._inflight)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Gracefully wind the server down (the SIGTERM path).

        Stops accepting connections, lets in-flight decodes finish (a
        coalesced decode completes for every follower still waiting),
        answers any *new* decode/put frame with ``E_UNAVAILABLE`` so a
        router re-routes, then closes.  Returns ``True`` when all
        in-flight work completed inside ``timeout``
        (``config.drain_timeout`` by default).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.config.drain_timeout)
        while self.inflight_count and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        drained = not self.inflight_count
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        return drained

    def abort_connections(self) -> None:
        """Abruptly reset every open connection (models a crash).

        Used by chaos harnesses through :meth:`ServerHandle.kill`: the
        transports are aborted mid-frame, so clients see a connection
        reset, not a clean close.
        """
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- connection handling -------------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[protocol.Message]:
        """Async twin of :func:`protocol.read_frame`; None on clean EOF."""
        return await read_frame_async(reader, self.config.max_frame)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.record_connection(opened=True)
        self._writers.add(writer)
        #: this connection's previous GET_FUNCTION, for transition learning
        prev_access: Optional[Tuple[str, int]] = None
        try:
            while True:
                try:
                    message = await self._read_frame(reader)
                except (ProtocolError, ReproError) as exc:
                    # Framing is gone; answer once (best effort) and hang up.
                    self.metrics.record_protocol_failure()
                    await self._send_error(writer, 0, protocol.E_BAD_REQUEST,
                                           str(exc))
                    return
                if message is None:
                    return
                started = time.perf_counter()
                self._active_requests += 1
                try:
                    with TRACER.span("serve.request", type=message.type_name,
                                     request_id=message.request_id) as span:
                        response = await self._dispatch(message)
                        span.set_attr("response", response.type_name)
                        span.set_attr("bytes_in", len(message.body))
                finally:
                    self._active_requests -= 1
                if (self.prefetcher is not None
                        and message.type == protocol.GET_FUNCTION
                        and response.type == protocol.OK_FUNCTION):
                    try:
                        cid, findex = protocol.parse_get_function(message.body)
                    except ReproError:
                        pass
                    else:
                        # Kick prefetch before writing the response, so
                        # predicted decodes overlap the network transit.
                        prev_access = self._note_function_access(
                            prev_access, cid, findex)
                frame = protocol.encode_frame(response)
                writer.write(frame)
                try:
                    await writer.drain()
                except ConnectionError:
                    return
                self.metrics.record_request(
                    message.type_name, time.perf_counter() - started,
                    bytes_in=len(message.body), bytes_out=len(frame))
                if response.type == protocol.ERROR:
                    code = response.body[0] if response.body else 0
                    self.metrics.record_error(
                        protocol.ERROR_NAMES.get(code, f"E_{code}"))
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's handler; end it
            # quietly so teardown doesn't log spurious task errors.
            pass
        finally:
            self._writers.discard(writer)
            self.metrics.record_connection(opened=False)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send_error(self, writer: asyncio.StreamWriter,
                          request_id: int, code: int, message: str) -> None:
        self.metrics.record_error(protocol.ERROR_NAMES.get(code, f"E_{code}"))
        try:
            writer.write(protocol.encode_frame(protocol.Message(
                type=protocol.ERROR, request_id=request_id,
                body=protocol.build_error(code, message))))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, message: protocol.Message) -> protocol.Message:
        """Turn one request into one response; never raises."""
        def error(code: int, text: str) -> protocol.Message:
            return protocol.Message(type=protocol.ERROR,
                                    request_id=message.request_id,
                                    body=protocol.build_error(code, text))

        handler = {
            protocol.PUT_CONTAINER: self._handle_put,
            protocol.GET_META: self._handle_get_meta,
            protocol.GET_FUNCTION: self._handle_get_function,
            protocol.GET_BLOCK: self._handle_get_block,
            protocol.STATS: self._handle_stats,
            protocol.GET_METRICS: self._handle_get_metrics,
            protocol.HEALTH: self._handle_health,
            protocol.GET_CONTAINER: self._handle_get_container,
            protocol.GET_DELTA: self._handle_get_delta,
        }.get(message.type)
        if handler is None:
            return error(protocol.E_BAD_REQUEST,
                         f"unknown request type 0x{message.type:02x}")
        if self._draining and message.type not in (
                protocol.HEALTH, protocol.STATS, protocol.GET_METRICS):
            # Refuse new decode/put work so a router re-routes; the
            # observability surface keeps answering during the drain.
            return error(protocol.E_UNAVAILABLE,
                         "server is draining; route elsewhere")
        try:
            body_type, body = await asyncio.wait_for(
                handler(message.body), timeout=self.config.request_timeout)
        except asyncio.TimeoutError:
            self.metrics.record_timeout()
            return error(protocol.E_TIMEOUT,
                         f"request exceeded the "
                         f"{self.config.request_timeout:g}s deadline")
        except KeyError as exc:
            return error(protocol.E_NOT_FOUND, str(exc.args[0]) if exc.args
                         else "not found")
        except IndexError as exc:
            return error(protocol.E_NOT_FOUND, str(exc))
        except _Busy:
            return error(protocol.E_BUSY,
                         "server is saturated; retry with backoff")
        except ReproError as exc:
            return error(_error_code_for(exc), str(exc))
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            return error(protocol.E_INTERNAL,
                         f"{type(exc).__name__}: {exc}")
        return protocol.Message(type=body_type,
                                request_id=message.request_id, body=body)

    # -- decode plumbing -----------------------------------------------------

    async def _run_decode(self, fn, *args):
        """Run CPU-bound work on a thread, under the concurrency cap."""
        if self._waiting >= self.config.max_queue_depth:
            raise _Busy()
        self._waiting += 1
        try:
            async with self._semaphore:
                return await asyncio.to_thread(fn, *args)
        finally:
            self._waiting -= 1

    async def _coalesced(self, key: Tuple, fn, *args):
        """Share one in-flight decode among concurrent identical requests.

        The decode runs as its *own* task, so a requester hitting its
        per-request deadline cancels only its own wait (``shield``), not
        the shared work — late followers still get the result, and a
        timed-out decode is never re-queued by its own followers.
        """
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._run_decode(fn, *args))

            def _finished(done: "asyncio.Task") -> None:
                self._inflight.pop(key, None)
                if not done.cancelled():
                    done.exception()  # consume, so no unretrieved warning

            task.add_done_callback(_finished)
            self._inflight[key] = task
        else:
            self.metrics.record_coalesced()
            follower = TRACER.current()
            if follower is not None:
                follower.set_attr("coalesced", True)
        return await asyncio.shield(task)

    def _reader_key(self, container_id: str) -> Tuple:
        """Reader cache key; includes the codec id, so containers that
        decode under different codecs can never collide (and an eviction
        audit can attribute bytes per codec)."""
        # KeyError for unknown ids -> E_NOT_FOUND, same as store.get.
        return ("reader", self.store.codec_of(container_id), container_id)

    def _reader_for(self, container_id: str) -> CodecReader:
        """Synchronous (thread-side) reader lookup/decode, LRU-cached."""
        key = self._reader_key(container_id)
        reader = self.cache.get(key)
        if reader is None:
            data = self.store.get(container_id)   # KeyError -> E_NOT_FOUND
            reader = open_any(data, limits=self.store.limits)
            # Charge the container's size as the proxy for its decoded
            # dictionary state (layouts scale with the dictionary blobs).
            self.cache.put(key, reader, size=len(data))
        self._seed_hints(container_id, reader)
        return reader

    def _seed_hints(self, container_id: str, reader: CodecReader) -> None:
        """Seed the prefetcher from the container's profile hints (once).

        Hints carry in-container successor edges; mapping them onto
        ``(container_id, findex)`` states means the very first replay of
        a profiled workload already predicts, before the request stream
        has taught the markov table anything.
        """
        if self.prefetcher is None:
            return
        with self._seeded_lock:
            if container_id in self._seeded:
                return
            self._seeded.add(container_id)
        hints = getattr(reader, "profile_hints", None)
        if hints is None:
            return
        self.prefetcher.seed(
            ((container_id, src), (container_id, dst), weight)
            for src, dst, weight in hints.edges)
        hot = list(hints.hot)
        self.prefetcher.seed(
            ((container_id, hot[i]), (container_id, hot[i + 1]), 1)
            for i in range(len(hot) - 1))

    def _decode_function(self, container_id: str, findex: int) -> bytes:
        """Thread-side: decode one function to its OK_FUNCTION body.

        Caches its own result so the work lands in the LRU even when
        every requester has already timed out.
        """
        started = time.perf_counter()
        if self.decode_hook is not None:
            self.decode_hook(container_id, findex)
        with TRACER.span("serve.decode", container=container_id,
                         findex=findex):
            reader = self._reader_for(container_id)
            if not 0 <= findex < reader.function_count:
                raise IndexError(f"function index {findex} out of range "
                                 f"(container has {reader.function_count})")
            function = reader.function(findex)
            self.metrics.record_decode(container_id, findex,
                                       seconds=time.perf_counter() - started)
            body = protocol.build_ok_function(findex, function.name,
                                              function.insns)
            self.cache.put(("func", reader.codec_id, container_id, findex),
                           body, size=len(body))
        return body

    async def _function_body(self, container_id: str, findex: int) -> bytes:
        """Cache -> coalesce -> decode; returns the OK_FUNCTION body."""
        key = ("func", self.store.codec_of(container_id), container_id,
               findex)
        cached = self.cache.get(key)
        if cached is not None:
            if key in self._prefetched:
                self._prefetched.discard(key)
                self.metrics.record_prefetch_hit()
                # A prefetch hit means the client is walking a predicted
                # run — keep the frontier ahead of it.
                self._kick_prefetch((container_id, findex))
            return cached
        body = await self._coalesced(key, self._decode_function,
                                     container_id, findex)
        # A demand miss is where prediction pays; plain warm hits skip
        # the predictor entirely so the steady state stays zero-overhead.
        self._kick_prefetch((container_id, findex))
        return body

    # -- predictive prefetch -------------------------------------------------

    def _note_function_access(self, prev: Optional[Tuple[str, int]],
                              container_id: str, findex: int
                              ) -> Tuple[str, int]:
        """Learn one request-stream transition.

        Called from the connection loop after a successful GET_FUNCTION,
        with that connection's previous access — transitions are learned
        per connection, so interleaved clients don't teach the predictor
        noise.  Prefetch itself is kicked from ``_function_body``, and
        only on demand misses and prefetch hits: a warm LRU hit predicts
        nothing and costs nothing.
        """
        current = (container_id, findex)
        if self.prefetcher is not None and prev is not None:
            self.prefetcher.observe(prev, current)
        return current

    def _kick_prefetch(self, state: Tuple[str, int]) -> None:
        """Schedule a background prefetch of ``state``'s successors."""
        if self.prefetcher is None or self._draining:
            return
        task = asyncio.get_running_loop().create_task(
            self._prefetch_successors(state))
        self._prefetch_tasks.add(task)
        task.add_done_callback(self._prefetch_tasks.discard)

    async def _prefetch_successors(self, state: Tuple[str, int]) -> None:
        """Background-decode the predicted next functions.

        Polite by construction: skips anything cached or in flight,
        stays away when the decode queue is half full, and stops during
        a drain.  Failures (unknown container, bad index, saturation)
        are swallowed — prefetch must never surface an error a client
        didn't ask for.
        """
        assert self.prefetcher is not None
        if self.cache.policy is not None and self.cache.near_capacity:
            # A guarded cache under eviction pressure would refuse the
            # speculative inserts anyway — don't decode bodies just to
            # be turned away at the door.  Admission alone carries the
            # thrash case; prefetch re-engages when pressure lifts.
            return
        # Breadth first for accuracy (the likely immediate successors),
        # then the transitive chain for lead time — by the time the
        # client walks one prediction deep, the chain is already warm.
        predicted = self.prefetcher.predict(state, self.config.prefetch_depth)
        for nxt in self.prefetcher.predict_chain(state,
                                                 self.config.prefetch_depth):
            if nxt not in predicted:
                predicted.append(nxt)
        for nxt in predicted:
            if self._draining:
                return
            if self._waiting >= max(1, self.config.max_queue_depth // 2):
                return
            next_cid, next_findex = nxt
            try:
                codec = self.store.codec_of(next_cid)
            except KeyError:
                continue
            key = ("func", codec, next_cid, next_findex)
            if key in self.cache or key in self._inflight:
                continue
            if key in self._prefetched:
                # Already speculatively decoded and still unconsumed
                # (or refused by admission moments ago) — don't decode
                # the same body again.
                continue
            self.metrics.record_prefetch_issued()
            # Mark before decoding: the decode thread inserts into the
            # cache, and the foreground request may hit that entry
            # before this task resumes.
            self._prefetched.add(key)
            try:
                await self._coalesced(key, self._decode_function,
                                      next_cid, next_findex)
            except (_Busy, ReproError, KeyError, IndexError):
                self._prefetched.discard(key)
                continue
            if len(self._prefetched) > 1024:
                self._prefetched = {k for k in self._prefetched
                                    if k in self.cache}

    # -- request handlers ----------------------------------------------------

    async def _handle_put(self, body: bytes) -> Tuple[int, bytes]:
        data = protocol.parse_put(body)
        container_id, reader = await self._coalesced(
            ("put", container_id_of(data)), self.store.put, data)
        self.cache.put(("reader", reader.codec_id, container_id), reader,
                       size=len(data))
        self._seed_hints(container_id, reader)
        return protocol.OK_PUT, protocol.build_ok_put(
            container_id, reader.function_count, reader.entry)

    async def _handle_get_meta(self, body: bytes) -> Tuple[int, bytes]:
        container_id = protocol.parse_get_meta(body)
        reader = await self._coalesced(self._reader_key(container_id),
                                       self._reader_for, container_id)
        from ..codecs import get_codec
        from ..core import container_version
        data = self.store.get(container_id)
        return protocol.OK_META, protocol.build_ok_meta(
            reader.program_name, reader.entry,
            list(reader.function_names), reader.codec_id,
            codec_wire_id=get_codec(reader.codec_id).wire_id,
            container_version=container_version(data))

    async def _handle_get_container(self, body: bytes) -> Tuple[int, bytes]:
        container_id = protocol.parse_get_container(body)
        data = self.store.get(container_id)   # KeyError -> E_NOT_FOUND
        return protocol.OK_CONTAINER, protocol.build_ok_container(data)

    async def _handle_get_delta(self, body: bytes) -> Tuple[int, bytes]:
        target_id, base_id = protocol.parse_get_delta(body)
        try:
            patch = await self._coalesced(
                ("delta", base_id, target_id),
                self.store.make_delta, base_id, target_id)
        except NoBaseError:
            self.metrics.record_delta_no_base()
            raise
        self.metrics.record_delta(len(patch),
                                  len(self.store.get(target_id)))
        return protocol.OK_DELTA, protocol.build_ok_delta(patch)

    async def _handle_get_function(self, body: bytes) -> Tuple[int, bytes]:
        container_id, findex = protocol.parse_get_function(body)
        return protocol.OK_FUNCTION, await self._function_body(
            container_id, findex)

    async def _handle_get_block(self, body: bytes) -> Tuple[int, bytes]:
        container_id, findex, start, count = protocol.parse_get_block(body)
        if count == 0:
            raise ProtocolError("GET_BLOCK count must be positive")
        function_body = await self._function_body(container_id, findex)
        function = protocol.parse_ok_function(function_body)
        total = len(function.insns)
        if start >= total:
            raise IndexError(f"block start {start} out of range "
                             f"(function has {total} instructions)")
        insns = function.insns[start:start + count]
        return protocol.OK_BLOCK, protocol.build_ok_block(
            findex, start, total, insns)

    async def _handle_stats(self, body: bytes) -> Tuple[int, bytes]:
        if body:
            raise ProtocolError("STATS carries no body")
        snapshot = self.metrics.snapshot(
            cache_stats=self.cache.stats().as_dict(),
            store_stats=self.store.stats(),
            admission_stats=self.cache.policy_stats())
        return protocol.OK_STATS, protocol.build_ok_stats(
            json.dumps(snapshot, sort_keys=True).encode("utf-8"))

    async def _handle_get_metrics(self, body: bytes) -> Tuple[int, bytes]:
        if body:
            raise ProtocolError("GET_METRICS carries no body")
        exposition = self.metrics.expose_text()
        return protocol.OK_METRICS, protocol.build_ok_metrics(
            exposition.encode("utf-8"))

    async def _handle_health(self, body: bytes) -> Tuple[int, bytes]:
        if body:
            raise ProtocolError("HEALTH carries no body")
        state = (protocol.HEALTH_DRAINING if self._draining
                 else protocol.HEALTH_OK)
        # Subtract this HEALTH request itself from the in-flight count.
        return protocol.OK_HEALTH, protocol.build_ok_health(
            state, max(0, self.inflight_count - 1), len(self.store))


class _Busy(Exception):
    """Internal: queue depth exceeded; mapped to E_BUSY."""


# -- running a server from synchronous code ---------------------------------

class ServerHandle:
    """A server running on a daemon thread; for tests, benches, clients."""

    def __init__(self, server: SSDServer, loop: asyncio.AbstractEventLoop,
                 stop_event: asyncio.Event, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.server.config.host, self.server.port)

    @property
    def metrics(self) -> ServerMetrics:
        return self.server.metrics

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)

    def drain(self, timeout: float = DEFAULT_DRAIN_TIMEOUT) -> bool:
        """Gracefully drain the server, then stop its thread.

        Returns ``True`` when every in-flight decode completed before
        the deadline (the SIGTERM contract: finish work, refuse new
        frames, then leave).
        """
        drained = True
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(timeout), self._loop)
            try:
                drained = future.result(timeout + 5.0)
            except (asyncio.CancelledError, TimeoutError):
                drained = False
            self.stop()
        return drained

    def kill(self) -> None:
        """Abruptly tear the server down (models a shard crash).

        Connections are reset mid-frame and the listener closes without
        waiting for in-flight decodes; clients observe connection
        resets, exactly what a SIGKILLed shard produces.
        """
        if self._thread.is_alive():
            def _abort() -> None:
                self.server.abort_connections()
                self._stop_event.set()

            self._loop.call_soon_threadsafe(_abort)
            self._thread.join(5.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(store: Optional[ContainerStore] = None,
                    config: Optional[ServerConfig] = None,
                    server: Optional[SSDServer] = None,
                    startup_timeout: float = 10.0) -> ServerHandle:
    """Start an :class:`SSDServer` on a background thread and wait for it.

    Returns a :class:`ServerHandle` whose ``.port`` is bound (config port
    0 picks an ephemeral one).  ``stop()`` shuts the loop down cleanly.
    """
    ssd_server = server or SSDServer(store=store, config=config)
    ready = threading.Event()
    startup_error: list = []
    boxes: dict = {}

    def runner() -> None:
        async def main() -> None:
            stop_event = asyncio.Event()
            try:
                await ssd_server.start()
            except Exception as exc:  # noqa: BLE001 - reported to caller
                startup_error.append(exc)
                ready.set()
                return
            boxes["loop"] = asyncio.get_running_loop()
            boxes["stop"] = stop_event
            ready.set()
            try:
                await stop_event.wait()
            finally:
                await ssd_server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="ssd-serve", daemon=True)
    thread.start()
    if not ready.wait(startup_timeout):
        raise RuntimeError("server failed to start within "
                           f"{startup_timeout}s")
    if startup_error:
        raise startup_error[0]
    return ServerHandle(ssd_server, boxes["loop"], boxes["stop"], thread)


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_MAX_CONCURRENCY",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_REQUEST_TIMEOUT",
    "SSDServer",
    "ServerConfig",
    "ServerHandle",
    "read_frame_async",
    "serve_in_thread",
]
