"""Content-addressed container store with verify-gated admission.

Containers are keyed by the SHA-256 of their bytes (the same fingerprint
``SSDReader.container_hash`` carries), so a PUT of bytes already present
is a no-op and clients can cache ids forever.  Admission runs the same
checks as ``ssd verify``: the structural + checksum walk
(:func:`repro.core.integrity_report`) must come back clean *and* phase-one
decompression must succeed, so nothing undecodable ever becomes
servable.  Version-1 containers (no CRCs) pass on structure alone, same
as the CLI.

With a ``root`` directory the store persists admitted containers as
``<id>.ssd`` and loads whatever ``*.ssd`` files it finds at startup
(corrupt files are skipped, not fatal — an operator can drop containers
into the spool directly).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..codecs import CodecReader, codec_of, integrity_report_any, open_any
from ..core import DEFAULT_LIMITS, DecodeLimits
from ..errors import CorruptContainer, NoBaseError


class AdmissionError(CorruptContainer):
    """Container bytes failed the store's verify gate."""


#: computed patches kept per store (patch synthesis walks two containers;
#: a fleet updating to the same release asks for the same pair over and
#: over, so a small LRU absorbs the stampede)
PATCH_CACHE_ENTRIES = 64


def container_id_of(data: bytes) -> str:
    """The store's content address: lowercase hex SHA-256."""
    return hashlib.sha256(data).hexdigest()


class ContainerStore:
    """In-memory (optionally disk-backed) map of id -> container bytes."""

    def __init__(self, root: Optional[Path] = None,
                 limits: DecodeLimits = DEFAULT_LIMITS) -> None:
        self.root = Path(root) if root is not None else None
        self.limits = limits
        self._lock = threading.Lock()
        self._containers: Dict[str, bytes] = {}
        #: codec id per admitted container (set at verify time)
        self._codecs: Dict[str, str] = {}
        #: LRU of synthesized patches, keyed (base_id, target_id)
        self._patches: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self.admitted = 0
        self.rejected = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load_root()

    def _load_root(self) -> None:
        for path in sorted(self.root.glob("*.ssd")):
            try:
                self.put(path.read_bytes(), persist=False)
            except CorruptContainer:
                continue  # operator-dropped junk must not kill startup

    # -- admission ----------------------------------------------------------

    def verify(self, data: bytes) -> CodecReader:
        """The admission gate: integrity walk + open under the right codec.

        Codec dispatch happens here — v1/v2 bytes open as ``ssd``, v3
        envelopes under whatever codec their id byte names (an unknown
        id is an admission failure like any other corruption).  Returns
        the opened reader (callers typically cache it) or raises
        :class:`AdmissionError`.
        """
        report = integrity_report_any(data, limits=self.limits)
        if report.error is not None:
            raise AdmissionError(f"integrity walk failed: {report.error}")
        if report.corrupt_sections:
            names = ", ".join(span.name for span in report.corrupt_sections)
            raise AdmissionError(f"checksum-corrupt sections: {names}")
        try:
            return open_any(data, limits=self.limits)
        except CorruptContainer as exc:
            raise AdmissionError(f"decode failed: {exc}") from exc

    def put(self, data: bytes, persist: bool = True) -> Tuple[str, CodecReader]:
        """Admit container bytes; returns ``(container_id, reader)``.

        Idempotent: re-putting stored bytes re-verifies nothing and
        returns a fresh reader for the stored copy.
        """
        container_id = container_id_of(data)
        with self._lock:
            known = container_id in self._containers
        if known:
            return container_id, open_any(data, limits=self.limits)
        try:
            reader = self.verify(data)
        except AdmissionError:
            with self._lock:
                self.rejected += 1
            raise
        with self._lock:
            self._containers[container_id] = data
            self._codecs[container_id] = reader.codec_id
            self.admitted += 1
        if persist and self.root is not None:
            (self.root / f"{container_id}.ssd").write_bytes(data)
        return container_id, reader

    # -- lookups ------------------------------------------------------------

    def codec_of(self, container_id: str) -> str:
        """Codec id of an admitted container (cheap; recorded at put)."""
        with self._lock:
            cached = self._codecs.get(container_id)
            if cached is not None:
                return cached
            data = self._containers.get(container_id)
        if data is None:
            raise KeyError(f"unknown container {container_id}")
        codec_id = codec_of(data)
        with self._lock:
            self._codecs[container_id] = codec_id
        return codec_id

    def get(self, container_id: str) -> bytes:
        with self._lock:
            try:
                return self._containers[container_id]
            except KeyError:
                raise KeyError(f"unknown container {container_id}") from None

    def make_delta(self, base_id: str, target_id: str) -> bytes:
        """A verified patch turning ``base_id``'s bytes into ``target_id``'s.

        The negotiation contract of GET_DELTA: an unknown *target* is a
        :class:`KeyError` (E_NOT_FOUND — the thing asked for does not
        exist), an unknown *base* is a :class:`~repro.errors.NoBaseError`
        (E_NO_BASE — the client should fall back to a full transfer).
        Synthesized patches are memoized in a small LRU.
        """
        key = (base_id, target_id)
        with self._lock:
            cached = self._patches.get(key)
            if cached is not None:
                self._patches.move_to_end(key)
                return cached
            target = self._containers.get(target_id)
            base = self._containers.get(base_id)
        if target is None:
            raise KeyError(f"unknown container {target_id}")
        if base is None:
            raise NoBaseError(f"base container {base_id} is not held here",
                              base_hash=base_id)
        from ..delta import make_patch
        patch = make_patch(base, target)
        with self._lock:
            self._patches[key] = patch
            self._patches.move_to_end(key)
            while len(self._patches) > PATCH_CACHE_ENTRIES:
                self._patches.popitem(last=False)
        return patch

    def __contains__(self, container_id: str) -> bool:
        with self._lock:
            return container_id in self._containers

    def __len__(self) -> int:
        with self._lock:
            return len(self._containers)

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._containers)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(data) for data in self._containers.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "containers": len(self._containers),
                "total_bytes": sum(len(d) for d in self._containers.values()),
                "admitted": self.admitted,
                "rejected": self.rejected,
            }


__all__ = ["AdmissionError", "ContainerStore", "PATCH_CACHE_ENTRIES",
           "container_id_of"]
