"""Shard health tracking: mark-down/mark-up state machine + circuit breaker.

Both classes here are *pure state machines* — no sockets, no tasks, no
wall clock unless one is injected — so the router drives them from its
probe loop and per-request outcomes, and tests exercise every transition
deterministically with a fake clock.

:class:`ShardHealth` is the router's opinion of one shard, fed by
periodic ``HEALTH`` probes and by request outcomes:

    up ──failure──▶ suspect ──failures ≥ fail_threshold──▶ down
    ▲                  │ success                              │
    └──────────────────┘          successes ≥ rise_threshold ─┘

``draining`` is a fourth state entered when the shard *says so* in its
OK_HEALTH (graceful SIGTERM drain): the shard still answers probes, but
the router routes new work elsewhere immediately instead of waiting for
``fail_threshold`` timeouts.

:class:`CircuitBreaker` protects the router from hammering a dead shard:

    closed ──failures ≥ threshold──▶ open ──cooldown──▶ half-open
    ▲ success                                               │
    └──────────── success ◀─── one trial request ───────────┤
                                            failure ──▶ open (re-armed)

The breaker and the health state are deliberately separate: health is
*observed* liveness (probe answers), the breaker is *inflicted* load
control (how often we're willing to find out).  A shard can be ``up``
with an open breaker for a cooldown period after a burst of resets.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

# -- shard health -----------------------------------------------------------

UP = "up"
SUSPECT = "suspect"
DOWN = "down"
DRAINING = "draining"

HEALTH_STATES = (UP, SUSPECT, DOWN, DRAINING)

#: consecutive probe/request failures before a shard is marked down
DEFAULT_FAIL_THRESHOLD = 3
#: consecutive probe successes before a down shard is marked up again
DEFAULT_RISE_THRESHOLD = 2


class ShardHealth:
    """The router's liveness opinion of one shard."""

    def __init__(self, shard_id: str,
                 fail_threshold: int = DEFAULT_FAIL_THRESHOLD,
                 rise_threshold: int = DEFAULT_RISE_THRESHOLD) -> None:
        if fail_threshold < 1 or rise_threshold < 1:
            raise ValueError("health thresholds must be >= 1")
        self.shard_id = shard_id
        self.fail_threshold = fail_threshold
        self.rise_threshold = rise_threshold
        self.state = UP
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        #: state-change counter, for the shard-state gauge and tests
        self.transitions = 0

    @property
    def routable(self) -> bool:
        """Whether new work should be routed at this shard."""
        return self.state in (UP, SUSPECT)

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state in (DOWN, DRAINING):
            self.consecutive_successes += 1
            if self.consecutive_successes >= self.rise_threshold:
                self.consecutive_successes = 0
                self._transition(UP)
        else:
            self.consecutive_successes = 0
            self._transition(UP)

    def record_failure(self) -> None:
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        if self.state == DRAINING:
            # a draining shard that stops answering probes is down
            if self.consecutive_failures >= self.fail_threshold:
                self._transition(DOWN)
            return
        if self.consecutive_failures >= self.fail_threshold:
            self._transition(DOWN)
        elif self.state == UP:
            # a failure never makes a DOWN shard routable again
            self._transition(SUSPECT)

    def record_draining(self) -> None:
        """The shard reported HEALTH_DRAINING about itself."""
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self._transition(DRAINING)


# -- circuit breaker --------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: consecutive failures that trip a closed breaker
DEFAULT_BREAKER_THRESHOLD = 5
#: seconds an open breaker refuses requests before probing again
DEFAULT_BREAKER_COOLDOWN = 1.0


class CircuitBreaker:
    """Per-shard closed → open → half-open breaker with injectable clock."""

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: float = DEFAULT_BREAKER_COOLDOWN,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"breaker cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock if clock is not None else time.monotonic
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        #: state-change counter, keyed by the state entered
        self.transitions = 0

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions += 1

    def allow(self) -> bool:
        """Whether a request may be sent to this shard right now.

        In ``open``, returns False until the cooldown elapses, then moves
        to ``half-open`` and allows exactly one trial; further calls in
        ``half-open`` are refused until the trial reports its outcome.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition(HALF_OPEN)
                return True
            return False
        # half-open: one trial is already in flight
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._transition(CLOSED)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # the trial failed: re-open and re-arm the cooldown
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)


__all__ = [
    "BREAKER_STATES",
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_BREAKER_COOLDOWN",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_FAIL_THRESHOLD",
    "DEFAULT_RISE_THRESHOLD",
    "DOWN",
    "DRAINING",
    "HALF_OPEN",
    "HEALTH_STATES",
    "OPEN",
    "ShardHealth",
    "SUSPECT",
    "UP",
]
