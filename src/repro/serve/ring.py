"""Consistent-hash ring mapping container ids onto shards.

The router places every shard at ``vnodes`` pseudo-random points on a
64-bit ring (SHA-256 of ``"shard_id#vnode"``); a key routes to the first
shard clockwise of its own hash point, and its R replicas are the first
R *distinct* shards clockwise.  Two properties matter here:

* **Minimal movement** — removing a shard re-routes only the keys that
  lived on it; everything else keeps its placement, so a failover
  doesn't invalidate the whole fleet's cache.
* **Replica spread** — replicas are distinct shards by construction, so
  R-way replication survives R-1 shard losses for every key.

Virtual nodes smooth the load split: with 64 vnodes per shard, the
largest shard's share of a uniform keyspace stays within a few percent
of ``1/N``.  Container ids are SHA-256 hex, so the keyspace *is*
uniform.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

#: vnodes per shard; 64 keeps worst-case imbalance low at test scale
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """A key's 64-bit position on the ring."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable-by-convention consistent-hash ring over shard ids."""

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {list(shard_ids)}")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.shard_ids: Tuple[str, ...] = tuple(shard_ids)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for shard_id in self.shard_ids:
            for vnode in range(vnodes):
                points.append((_point(f"{shard_id}#{vnode}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def primary_for(self, key: str) -> str:
        """The shard owning ``key`` (first replica)."""
        return self.replicas_for(key, 1)[0]

    def replicas_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct shards clockwise of ``key``.

        ``count`` is clamped to the shard population — asking for 3-way
        replication on a 2-shard ring yields both shards, not an error,
        so a cluster can be grown under a fixed replication target.
        """
        if count <= 0:
            raise ValueError(f"replica count must be positive, got {count}")
        count = min(count, len(self.shard_ids))
        start = bisect.bisect_right(self._points, _point(key))
        replicas: List[str] = []
        seen = set()
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                replicas.append(owner)
                if len(replicas) == count:
                    break
        return replicas

    def without(self, shard_id: str) -> "HashRing":
        """A new ring with ``shard_id`` removed (failover topology)."""
        remaining = [s for s in self.shard_ids if s != shard_id]
        return HashRing(remaining, vnodes=self.vnodes)

    def load_split(self, samples: int = 4096) -> Dict[str, float]:
        """Fraction of a uniform keyspace each shard owns (diagnostics)."""
        counts: Dict[str, int] = {shard: 0 for shard in self.shard_ids}
        for index in range(samples):
            counts[self.primary_for(f"sample:{index}")] += 1
        return {shard: count / samples for shard, count in counts.items()}


__all__ = ["DEFAULT_VNODES", "HashRing"]
