"""Consistent-hash ring mapping container ids onto shards.

The router places every shard at a number of pseudo-random points on a
64-bit ring (SHA-256 of ``"shard_id#vnode"``); a key routes to the first
shard clockwise of its own hash point, and its R replicas are the first
R *distinct* shards clockwise.  Two properties matter here:

* **Minimal movement** — removing a shard re-routes only the keys that
  lived on it; everything else keeps its placement, so a failover
  doesn't invalidate the whole fleet's cache.  The same holds for
  weight changes: a shard's vnode points are a deterministic prefix of
  ``shard#0, shard#1, ...``, so raising or lowering its weight only
  adds or removes *that shard's* points — a key's owner changes only
  when its old or new owner's weight changed.
* **Replica spread** — replicas are distinct shards by construction, so
  R-way replication survives R-1 shard losses for every key.

Virtual nodes smooth the load split: with 64 vnodes per shard, the
largest shard's share of a uniform keyspace stays within a few percent
of ``1/N``.  Container ids are SHA-256 hex, so the keyspace *is*
uniform — until the *traffic* isn't.  Real code-server traffic is
Zipf-shaped (a few hot containers take most requests), so the ring also
carries **per-shard weights**: a shard with weight ``w`` owns about
``w / sum(weights)`` of the keyspace, and :meth:`rebalance` shifts
bounded weight away from hot shards based on an observed load split.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: vnodes per unit of weight; 64 keeps worst-case imbalance low at test scale
DEFAULT_VNODES = 64

#: weight clamp: a shard never owns less than 1/8 or more than 4x its
#: uniform share, so rebalance can't starve a shard out of the ring or
#: pile the whole keyspace onto one survivor
MIN_WEIGHT = 0.125
MAX_WEIGHT = 4.0

#: per-round weight movement ceiling: one rebalance step changes any
#: shard's weight by at most this fraction (bounded movement per round)
DEFAULT_REBALANCE_STEP = 0.25


def _point(key: str) -> int:
    """A key's 64-bit position on the ring."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable-by-convention consistent-hash ring over shard ids."""

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES,
                 weights: Optional[Mapping[str, float]] = None) -> None:
        if not shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {list(shard_ids)}")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.shard_ids: Tuple[str, ...] = tuple(shard_ids)
        self.vnodes = vnodes
        self.weights: Dict[str, float] = {
            shard_id: 1.0 for shard_id in self.shard_ids}
        if weights:
            for shard_id, weight in weights.items():
                if shard_id not in self.weights:
                    raise ValueError(f"weight for unknown shard {shard_id!r}")
                if not weight > 0:
                    raise ValueError(
                        f"weight for {shard_id} must be positive, got {weight}")
                self.weights[shard_id] = float(weight)
        points: List[Tuple[int, str]] = []
        for shard_id in self.shard_ids:
            for vnode in range(self.vnode_count(shard_id)):
                points.append((_point(f"{shard_id}#{vnode}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def vnode_count(self, shard_id: str) -> int:
        """Ring points this shard owns (its weight in vnode currency)."""
        return max(1, round(self.vnodes * self.weights[shard_id]))

    def primary_for(self, key: str) -> str:
        """The shard owning ``key`` (first replica)."""
        return self.replicas_for(key, 1)[0]

    def replicas_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct shards clockwise of ``key``.

        ``count`` is clamped to the shard population — asking for 3-way
        replication on a 2-shard ring yields both shards, not an error,
        so a cluster can be grown under a fixed replication target.
        """
        if count <= 0:
            raise ValueError(f"replica count must be positive, got {count}")
        count = min(count, len(self.shard_ids))
        start = bisect.bisect_right(self._points, _point(key))
        replicas: List[str] = []
        seen = set()
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                replicas.append(owner)
                if len(replicas) == count:
                    break
        return replicas

    def without(self, shard_id: str) -> "HashRing":
        """A new ring with ``shard_id`` removed (failover topology)."""
        remaining = [s for s in self.shard_ids if s != shard_id]
        weights = {s: w for s, w in self.weights.items() if s != shard_id}
        return HashRing(remaining, vnodes=self.vnodes, weights=weights)

    def with_weights(self, weights: Mapping[str, float]) -> "HashRing":
        """A new ring over the same shards with ``weights`` applied."""
        merged = dict(self.weights)
        merged.update(weights)
        return HashRing(self.shard_ids, vnodes=self.vnodes, weights=merged)

    def rebalance(self, load: Mapping[str, float],
                  max_step: float = DEFAULT_REBALANCE_STEP) -> "HashRing":
        """A new ring with weight shifted away from hot shards.

        ``load`` is any non-negative per-shard load observation (request
        counts, EWMA rates); only its *ratios* matter.  Each shard's
        weight moves toward ``weight * mean_load / shard_load`` — the
        multiplier that would equalize the split if traffic were
        proportional to keyspace share — but by at most ``max_step``
        per round and never outside ``[MIN_WEIGHT, MAX_WEIGHT]``.
        Bounding the per-round step bounds key movement: one round
        re-routes roughly ``max_step / num_shards`` of the keyspace at
        worst, so a mis-measured spike can't thrash the fleet's caches.
        """
        if not 0 < max_step < 1:
            raise ValueError(f"max_step must be in (0, 1), got {max_step}")
        observed = {shard_id: max(0.0, float(load.get(shard_id, 0.0)))
                    for shard_id in self.shard_ids}
        mean = sum(observed.values()) / len(self.shard_ids)
        if mean <= 0:
            return self
        weights: Dict[str, float] = {}
        for shard_id in self.shard_ids:
            share = observed[shard_id]
            ratio = (mean / share) if share > 0 else (1.0 + max_step)
            ratio = min(1.0 + max_step, max(1.0 - max_step, ratio))
            weight = self.weights[shard_id] * ratio
            weights[shard_id] = min(MAX_WEIGHT, max(MIN_WEIGHT, weight))
        return HashRing(self.shard_ids, vnodes=self.vnodes, weights=weights)

    def load_split(self, samples: int = 4096) -> Dict[str, float]:
        """Fraction of a uniform keyspace each shard owns (diagnostics)."""
        counts: Dict[str, int] = {shard: 0 for shard in self.shard_ids}
        for index in range(samples):
            counts[self.primary_for(f"sample:{index}")] += 1
        return {shard: count / samples for shard, count in counts.items()}

    def movement_from(self, other: "HashRing", samples: int = 4096) -> float:
        """Fraction of a sampled keyspace whose primary differs from
        ``other``'s — the cache-invalidation cost of a topology change."""
        moved = sum(1 for index in range(samples)
                    if self.primary_for(f"sample:{index}")
                    != other.primary_for(f"sample:{index}"))
        return moved / samples


__all__ = ["DEFAULT_REBALANCE_STEP", "DEFAULT_VNODES", "HashRing",
           "MAX_WEIGHT", "MIN_WEIGHT"]
