"""A byte-budgeted shared LRU cache for decode products.

The server keeps two kinds of hot state behind one budget: *decoded
dictionary state* (an :class:`~repro.core.decompressor.SSDReader` per
container — the generalization of the ``build_tables`` per-hash memo from
the JIT layer) and *hot functions* (wire-encoded instruction blobs).
Mixing them in a single LRU means a traffic shift — many containers,
few hot functions, or the reverse — rebalances the budget automatically,
the same size-aware eviction pressure `repro.jit.buffer` applies to the
translation buffer.

Thread-safe: the server decodes on worker threads while the event loop
reads counters, so every operation takes the cache lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

#: default byte budget for a server cache (64 MiB)
DEFAULT_CACHE_BYTES = 64 << 20


@dataclass
class CacheStats:
    """Counter snapshot; returned by :meth:`SharedLRUCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    oversize_rejects: int = 0
    current_bytes: int = 0
    entry_count: int = 0
    budget_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "oversize_rejects": self.oversize_rejects,
            "current_bytes": self.current_bytes,
            "entry_count": self.entry_count,
            "budget_bytes": self.budget_bytes,
            "hit_rate": self.hit_rate,
        }


class SharedLRUCache:
    """LRU over ``(key -> value)`` entries with explicit byte sizes.

    ``put`` charges each entry the size its caller declares (wire-blob
    length for functions, container length as the proxy for a reader's
    decoded dictionaries) and evicts least-recently-used entries until
    the total fits the budget.  An entry larger than the whole budget is
    rejected rather than cycling the entire cache.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if budget_bytes <= 0:
            raise ValueError(
                f"cache budget must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._inserts = 0
        self._oversize = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, size: int) -> bool:
        """Insert ``value`` charged ``size`` bytes; returns False if rejected."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size > self.budget_bytes:
            with self._lock:
                self._oversize += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            self._inserts += 1
            while self._bytes > self.budget_bytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
            return True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True if it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, inserts=self._inserts,
                oversize_rejects=self._oversize,
                current_bytes=self._bytes,
                entry_count=len(self._entries),
                budget_bytes=self.budget_bytes)


__all__ = ["CacheStats", "DEFAULT_CACHE_BYTES", "SharedLRUCache"]
