"""A byte-budgeted shared LRU cache for decode products.

The server keeps two kinds of hot state behind one budget: *decoded
dictionary state* (an :class:`~repro.core.decompressor.SSDReader` per
container — the generalization of the ``build_tables`` per-hash memo from
the JIT layer) and *hot functions* (wire-encoded instruction blobs).
Mixing them in a single LRU means a traffic shift — many containers,
few hot functions, or the reverse — rebalances the budget automatically,
the same size-aware eviction pressure `repro.jit.buffer` applies to the
translation buffer.

The cache is **policy-pluggable**: an optional :class:`AdmissionPolicy`
decides whether an insert that would force evictions is worth it.
:class:`GhostListAdmission` is the built-in working-set-aware policy —
a TinyLFU-style frequency filter backed by a ghost list of recently
evicted keys, so a scan of one-hit wonders can no longer flush the
resident hot set (see docs/LAYOUT.md §cache policies).  With no policy
(the default) behaviour is exactly the plain LRU it always was.

Thread-safe: the server decodes on worker threads while the event loop
reads counters, so every operation takes the cache lock (the policy is
only ever called under it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Protocol, Tuple

from ..obs import REGISTRY

#: default byte budget for a server cache (64 MiB)
DEFAULT_CACHE_BYTES = 64 << 20

_ADMISSION_REJECTS = REGISTRY.counter(
    "cache_admission_rejects_total",
    "Cache inserts refused by the admission policy.")
_GHOST_READMITS = REGISTRY.counter(
    "cache_admission_ghost_readmits_total",
    "Cache admissions granted because the key was recently evicted "
    "(ghost-list hit).")


@dataclass
class CacheStats:
    """Counter snapshot; returned by :meth:`SharedLRUCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    oversize_rejects: int = 0
    current_bytes: int = 0
    entry_count: int = 0
    budget_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "oversize_rejects": self.oversize_rejects,
            "current_bytes": self.current_bytes,
            "entry_count": self.entry_count,
            "budget_bytes": self.budget_bytes,
            "hit_rate": self.hit_rate,
        }


class AdmissionPolicy(Protocol):
    """Decides whether a cache insert under eviction pressure is worth it.

    All callbacks run under the cache lock — implementations must not
    call back into the cache and should stay O(1).
    """

    def record_access(self, key: Hashable) -> None:
        """Every ``get`` (hit or miss) announces the key."""

    def admit(self, key: Hashable, size: int) -> bool:
        """Would inserting ``key`` (which must evict residents) pay off?"""

    def record_eviction(self, key: Hashable) -> None:
        """``key`` was just evicted."""

    def stats(self) -> Dict[str, int]:
        """Policy counters for STATS/debugging."""


class GhostListAdmission:
    """Working-set-aware admission: ghost list + frequency filter.

    Inserts that fit without evicting are always admitted.  An insert
    that would evict residents is admitted only if the key has earned
    it: it was seen at least ``min_frequency`` times recently, or it is
    on the *ghost list* — keys evicted not long ago, whose return means
    the working set is larger than the cache and the key is genuinely
    re-referenced (not a one-hit wonder from a cold sweep).

    Frequencies live in a bounded counter table that halves everything
    once the total exceeds ``sample_size`` — the classic TinyLFU aging
    scheme, so a burst from last minute cannot outvote current traffic.
    """

    def __init__(self, ghost_entries: int = 4096,
                 min_frequency: int = 2,
                 sample_size: int = 65536) -> None:
        if ghost_entries <= 0:
            raise ValueError(
                f"ghost_entries must be positive, got {ghost_entries}")
        if min_frequency < 1:
            raise ValueError(
                f"min_frequency must be >= 1, got {min_frequency}")
        self._ghost_entries = ghost_entries
        self._min_frequency = min_frequency
        self._sample_size = sample_size
        self._freq: Dict[Hashable, int] = {}
        self._freq_total = 0
        self._ghost: "OrderedDict[Hashable, None]" = OrderedDict()
        self._rejects = 0
        self._ghost_readmits = 0

    def record_access(self, key: Hashable) -> None:
        self._freq[key] = self._freq.get(key, 0) + 1
        self._freq_total += 1
        if self._freq_total > self._sample_size:
            aged: Dict[Hashable, int] = {}
            total = 0
            for k, count in self._freq.items():
                count //= 2
                if count:
                    aged[k] = count
                    total += count
            self._freq = aged
            self._freq_total = total

    def admit(self, key: Hashable, size: int) -> bool:
        if key in self._ghost:
            del self._ghost[key]
            self._ghost_readmits += 1
            _GHOST_READMITS.inc()
            return True
        if self._freq.get(key, 0) >= self._min_frequency:
            return True
        self._rejects += 1
        _ADMISSION_REJECTS.inc()
        return False

    def record_eviction(self, key: Hashable) -> None:
        self._ghost.pop(key, None)
        self._ghost[key] = None
        while len(self._ghost) > self._ghost_entries:
            self._ghost.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        return {
            "rejects": self._rejects,
            "ghost_readmits": self._ghost_readmits,
            "ghost_entries": len(self._ghost),
            "tracked_keys": len(self._freq),
        }


class SharedLRUCache:
    """LRU over ``(key -> value)`` entries with explicit byte sizes.

    ``put`` charges each entry the size its caller declares (wire-blob
    length for functions, container length as the proxy for a reader's
    decoded dictionaries) and evicts least-recently-used entries until
    the total fits the budget.  An entry larger than the whole budget is
    rejected rather than cycling the entire cache.

    ``policy`` (optional) screens inserts that would force evictions;
    ``None`` keeps the historical always-admit LRU behaviour.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES,
                 policy: Optional[AdmissionPolicy] = None) -> None:
        if budget_bytes <= 0:
            raise ValueError(
                f"cache budget must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.policy = policy
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._inserts = 0
        self._oversize = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            if self.policy is not None:
                self.policy.record_access(key)
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, size: int) -> bool:
        """Insert ``value`` charged ``size`` bytes; returns False if rejected."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size > self.budget_bytes:
            with self._lock:
                self._oversize += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            if (self.policy is not None and old is None
                    and self._bytes + size > self.budget_bytes
                    and not self.policy.admit(key, size)):
                return False
            self._entries[key] = (value, size)
            self._bytes += size
            self._inserts += 1
            while self._bytes > self.budget_bytes:
                evicted_key, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
                if self.policy is not None:
                    self.policy.record_eviction(evicted_key)
            return True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True if it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def near_capacity(self) -> bool:
        """True once the cache is within ~6 % of its byte budget.

        The prefetcher uses this as a cheap pressure signal: with an
        admission policy guarding a full cache, speculative inserts of
        never-seen keys would be refused, so issuing the decode at all
        is wasted work.
        """
        with self._lock:
            return self._bytes >= self.budget_bytes - (self.budget_bytes >> 4)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, inserts=self._inserts,
                oversize_rejects=self._oversize,
                current_bytes=self._bytes,
                entry_count=len(self._entries),
                budget_bytes=self.budget_bytes)

    def policy_stats(self) -> Optional[Dict[str, int]]:
        """The admission policy's counters, or ``None`` without one."""
        with self._lock:
            return self.policy.stats() if self.policy is not None else None


__all__ = [
    "AdmissionPolicy",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "GhostListAdmission",
    "SharedLRUCache",
]
