"""``repro.serve`` — an async SSD code server, cluster, and client.

The paper's systems claim is that SSD containers decode at basic-block
granularity, so a runtime can demand-fetch only the code it executes.
This package turns that property into a service: a content-addressed
store of verified containers, an asyncio server that pages decoded
functions to many concurrent clients (request coalescing, a shared
byte-budgeted LRU over dictionary state and hot functions, bounded
concurrency with backpressure, per-request deadlines), and a client
whose :class:`RemoteProgram` runs in the local interpreter while
fetching functions over the wire on first call — the network analogue
of :class:`repro.core.lazy.LazyProgram`.

For deployments bigger than one process, ``repro.serve.cluster`` runs N
shard servers behind a :class:`ClusterRouter` front-end that speaks the
same wire protocol: container hashes are consistent-hash-placed with
R-way replication, shard health is probed with the ``HEALTH`` op, and
requests fail over between replicas with backoff — a dead shard costs
retries, not answers, until the cluster drops below quorum (then
clients get a clean ``E_UNAVAILABLE``).

Quick start::

    from repro.serve import ContainerStore, ServeClient, RemoteProgram
    from repro.serve import serve_in_thread
    from repro.vm import run_program

    with serve_in_thread() as handle:
        with ServeClient(*handle.address) as client:
            program = RemoteProgram(client, container_bytes)
            result = run_program(program)

Cluster::

    from repro.serve import start_cluster_in_thread

    with start_cluster_in_thread(shards=3, replication=2) as cluster:
        with cluster.client(retries=4) as client:
            container_id = client.put(container_bytes)

CLI: ``ssd serve`` / ``ssd client`` / ``ssd cluster``.  Wire format:
docs/PROTOCOL.md; topology and failover: docs/CLUSTER.md.
"""

from .cache import (
    AdmissionPolicy,
    CacheStats,
    DEFAULT_CACHE_BYTES,
    GhostListAdmission,
    SharedLRUCache,
)
from .client import (
    DEFAULT_TIMEOUT,
    NO_RETRY,
    ContainerMeta,
    OpDeadlines,
    RemoteProgram,
    RetryPolicy,
    ServeClient,
    remote_program,
)
from .cluster import (
    ClusterConfig,
    LocalCluster,
    ShardSpec,
    start_cluster_in_thread,
)
from .health import CircuitBreaker, ShardHealth
from .metrics import RouterMetrics, ServerMetrics, percentile
from .protocol import (
    HealthStatus,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Message,
)
from .ring import HashRing
from .router import (
    ClusterRouter,
    RouterConfig,
    RouterHandle,
    router_in_thread,
)
from .server import (
    DEFAULT_DRAIN_TIMEOUT,
    SSDServer,
    ServerConfig,
    ServerHandle,
    read_frame_async,
    serve_in_thread,
)
from .store import AdmissionError, ContainerStore, container_id_of

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "CacheStats",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterRouter",
    "ContainerMeta",
    "ContainerStore",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_TIMEOUT",
    "GhostListAdmission",
    "HashRing",
    "HealthStatus",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "Message",
    "NO_RETRY",
    "OpDeadlines",
    "PROTOCOL_VERSION",
    "RemoteProgram",
    "RetryPolicy",
    "RouterConfig",
    "RouterHandle",
    "RouterMetrics",
    "SSDServer",
    "ServeClient",
    "ServerConfig",
    "ServerHandle",
    "ServerMetrics",
    "ShardHealth",
    "ShardSpec",
    "SharedLRUCache",
    "container_id_of",
    "percentile",
    "read_frame_async",
    "remote_program",
    "router_in_thread",
    "serve_in_thread",
    "start_cluster_in_thread",
]
