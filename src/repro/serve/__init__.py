"""``repro.serve`` — an async SSD code server and its client.

The paper's systems claim is that SSD containers decode at basic-block
granularity, so a runtime can demand-fetch only the code it executes.
This package turns that property into a service: a content-addressed
store of verified containers, an asyncio server that pages decoded
functions to many concurrent clients (request coalescing, a shared
byte-budgeted LRU over dictionary state and hot functions, bounded
concurrency with backpressure, per-request deadlines), and a client
whose :class:`RemoteProgram` runs in the local interpreter while
fetching functions over the wire on first call — the network analogue
of :class:`repro.core.lazy.LazyProgram`.

Quick start::

    from repro.serve import ContainerStore, ServeClient, RemoteProgram
    from repro.serve import serve_in_thread
    from repro.vm import run_program

    with serve_in_thread() as handle:
        with ServeClient(*handle.address) as client:
            program = RemoteProgram(client, container_bytes)
            result = run_program(program)

CLI: ``ssd serve`` / ``ssd client``.  Wire format: docs/PROTOCOL.md.
"""

from .cache import CacheStats, DEFAULT_CACHE_BYTES, SharedLRUCache
from .client import (
    DEFAULT_TIMEOUT,
    ContainerMeta,
    RemoteProgram,
    ServeClient,
    remote_program,
)
from .metrics import ServerMetrics, percentile
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, Message
from .server import (
    SSDServer,
    ServerConfig,
    ServerHandle,
    serve_in_thread,
)
from .store import AdmissionError, ContainerStore, container_id_of

__all__ = [
    "AdmissionError",
    "CacheStats",
    "ContainerMeta",
    "ContainerStore",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_TIMEOUT",
    "MAX_FRAME_BYTES",
    "Message",
    "PROTOCOL_VERSION",
    "RemoteProgram",
    "SSDServer",
    "ServeClient",
    "ServerConfig",
    "ServerHandle",
    "ServerMetrics",
    "SharedLRUCache",
    "container_id_of",
    "percentile",
    "remote_program",
    "serve_in_thread",
]
