"""The ``repro.serve`` wire protocol: varint-framed, versioned, CRC-carrying.

Every message travels as one *frame*::

    uvarint  payload length (LEB128, repro.lz.varint)
    payload  (exactly that many bytes)
    u32      CRC32 over the payload (little-endian)

and every payload starts with the same header::

    u8       protocol version (currently 1)
    u8       message type
    uvarint  request id (echoed verbatim in the response)
    ...      type-specific body

Containers are addressed by the SHA-256 of their bytes (32 raw bytes on
the wire, lowercase hex in Python APIs) — the same fingerprint
``SSDReader.container_hash`` uses for the instruction-table memo.

Malformed bytes raise :class:`repro.errors.ProtocolError`; a server
ERROR frame surfaces client-side as :class:`repro.errors.RemoteError`.
The full specification lives in docs/PROTOCOL.md.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..isa import Function, Instruction
from ..isa.encoding import decode_instruction, encode_instruction
from ..lz.varint import ByteReader, ByteWriter, decode_uvarint

#: protocol version this implementation speaks.  Version 2 added the
#: codec id to OK_META (the server names which registered codec decodes
#: the container).  Version 3 adds the code-update surface: whole-
#: container fetch (GET_CONTAINER), delta fetch (GET_DELTA with the
#: E_NO_BASE negotiation), and the codec wire id + container version in
#: OK_META.
PROTOCOL_VERSION = 3

#: frames larger than this are rejected before allocation (both sides)
MAX_FRAME_BYTES = 1 << 26

#: SHA-256 container ids travel as raw bytes
CONTAINER_ID_BYTES = 32

# -- message types ----------------------------------------------------------

PUT_CONTAINER = 0x01
GET_META = 0x02
GET_FUNCTION = 0x03
GET_BLOCK = 0x04
STATS = 0x05
GET_METRICS = 0x06
HEALTH = 0x07
GET_CONTAINER = 0x08
GET_DELTA = 0x09
SYNC_STATE = 0x0A

OK_PUT = 0x81
OK_META = 0x82
OK_FUNCTION = 0x83
OK_BLOCK = 0x84
OK_STATS = 0x85
OK_METRICS = 0x86
OK_HEALTH = 0x87
OK_CONTAINER = 0x88
OK_DELTA = 0x89
OK_SYNC = 0x8A
ERROR = 0xFF

TYPE_NAMES = {
    PUT_CONTAINER: "PUT_CONTAINER",
    GET_META: "GET_META",
    GET_FUNCTION: "GET_FUNCTION",
    GET_BLOCK: "GET_BLOCK",
    STATS: "STATS",
    GET_METRICS: "GET_METRICS",
    HEALTH: "HEALTH",
    GET_CONTAINER: "GET_CONTAINER",
    GET_DELTA: "GET_DELTA",
    SYNC_STATE: "SYNC_STATE",
    OK_PUT: "OK_PUT",
    OK_META: "OK_META",
    OK_FUNCTION: "OK_FUNCTION",
    OK_BLOCK: "OK_BLOCK",
    OK_STATS: "OK_STATS",
    OK_METRICS: "OK_METRICS",
    OK_HEALTH: "OK_HEALTH",
    OK_CONTAINER: "OK_CONTAINER",
    OK_DELTA: "OK_DELTA",
    OK_SYNC: "OK_SYNC",
    ERROR: "ERROR",
}

REQUEST_TYPES = (PUT_CONTAINER, GET_META, GET_FUNCTION, GET_BLOCK, STATS,
                 GET_METRICS, HEALTH, GET_CONTAINER, GET_DELTA, SYNC_STATE)

# -- error codes ------------------------------------------------------------

E_BAD_REQUEST = 1     # unparseable body, unknown type, bad field values
E_NOT_FOUND = 2       # container id or function index unknown
E_CORRUPT = 3         # container failed verify-gated admission / decode
E_LIMIT = 4           # a DecodeLimits or frame-size ceiling was hit
E_TIMEOUT = 5         # the per-request deadline elapsed server-side
E_BUSY = 6            # backpressure: server refused to queue the request
E_INTERNAL = 7        # anything else (a server bug; still a clean answer)
E_VERSION = 8         # protocol version mismatch
E_UNAVAILABLE = 9     # shard draining / no live replica / below quorum
E_NO_BASE = 10        # GET_DELTA: the named base is not held here; the
                      # client should fall back to a full transfer

ERROR_NAMES = {
    E_BAD_REQUEST: "E_BAD_REQUEST",
    E_NOT_FOUND: "E_NOT_FOUND",
    E_CORRUPT: "E_CORRUPT",
    E_LIMIT: "E_LIMIT",
    E_TIMEOUT: "E_TIMEOUT",
    E_BUSY: "E_BUSY",
    E_INTERNAL: "E_INTERNAL",
    E_VERSION: "E_VERSION",
    E_UNAVAILABLE: "E_UNAVAILABLE",
    E_NO_BASE: "E_NO_BASE",
}

#: error codes safe to retry for idempotent requests (the answer may
#: change after backoff: load drains, a deadline stops slipping, a
#: replica fails over).  Everything else is definitive.
RETRYABLE_ERROR_CODES = frozenset((E_BUSY, E_TIMEOUT, E_UNAVAILABLE))

# -- health ----------------------------------------------------------------

#: HEALTH states a server reports about itself
HEALTH_OK = 0
HEALTH_DRAINING = 1

HEALTH_STATE_NAMES = {
    HEALTH_OK: "ok",
    HEALTH_DRAINING: "draining",
}


@dataclass(frozen=True)
class Message:
    """One decoded frame payload."""

    type: int
    request_id: int
    body: bytes = b""
    version: int = PROTOCOL_VERSION

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"0x{self.type:02x}")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


# -- framing ----------------------------------------------------------------

def encode_frame(message: Message) -> bytes:
    """Serialize a message into frame bytes ready for the socket."""
    writer = ByteWriter()
    writer.write_u8(message.version)
    writer.write_u8(message.type)
    writer.write_uvarint(message.request_id)
    writer.write_bytes(message.body)
    payload = writer.getvalue()
    out = ByteWriter()
    out.write_uvarint(len(payload))
    out.write_bytes(payload)
    out.write_u32(_crc(payload))
    return out.getvalue()


def parse_payload(payload: bytes, crc: Optional[int] = None) -> Message:
    """Decode a frame payload (and check ``crc`` when given)."""
    if crc is not None and _crc(payload) != crc:
        raise ProtocolError(
            f"frame CRC32 mismatch: stored {crc:#010x}, "
            f"computed {_crc(payload):#010x}")
    if len(payload) < 2:
        raise ProtocolError(f"frame payload of {len(payload)} bytes is "
                            "shorter than the fixed header")
    version = payload[0]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this side speaks {PROTOCOL_VERSION})")
    mtype = payload[1]
    try:
        request_id, offset = decode_uvarint(payload, 2)
    except ValueError as exc:
        raise ProtocolError(f"bad request id varint: {exc}") from exc
    return Message(type=mtype, request_id=request_id,
                   body=payload[offset:], version=version)


def read_frame(stream: BinaryIO,
               max_frame: int = MAX_FRAME_BYTES) -> Optional[Message]:
    """Read one frame from a blocking binary stream.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` on truncation mid-frame, oversized frames, or
    CRC/version mismatch.  This is the synchronous (client-side) reader;
    the asyncio server has its own equivalent.
    """
    length_bytes = bytearray()
    while True:
        chunk = stream.read(1)
        if not chunk:
            if not length_bytes:
                return None
            raise ProtocolError("connection closed mid frame-length varint")
        length_bytes += chunk
        if not chunk[0] & 0x80:
            break
        if len(length_bytes) > 10:
            raise ProtocolError("frame-length varint too long")
    length, _ = decode_uvarint(bytes(length_bytes))
    if length > max_frame:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{max_frame}-byte limit")
    payload = _read_exact(stream, length, "frame payload")
    crc_bytes = _read_exact(stream, 4, "frame CRC")
    crc = int.from_bytes(crc_bytes, "little")
    return parse_payload(payload, crc)


def _read_exact(stream: BinaryIO, count: int, what: str) -> bytes:
    data = b""
    while len(data) < count:
        chunk = stream.read(count - len(data))
        if not chunk:
            raise ProtocolError(f"connection closed mid {what} "
                                f"({len(data)}/{count} bytes)")
        data += chunk
    return data


# -- container ids ----------------------------------------------------------

def write_container_id(writer: ByteWriter, container_id: str) -> None:
    try:
        raw = bytes.fromhex(container_id)
    except ValueError as exc:
        raise ProtocolError(f"container id is not hex: {container_id!r}") from exc
    if len(raw) != CONTAINER_ID_BYTES:
        raise ProtocolError(f"container id must be {CONTAINER_ID_BYTES} bytes, "
                            f"got {len(raw)}")
    writer.write_bytes(raw)


def read_container_id(reader: ByteReader) -> str:
    return reader.read_bytes(CONTAINER_ID_BYTES).hex()


# -- request bodies ---------------------------------------------------------

def build_put(container: bytes) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(container))
    writer.write_bytes(container)
    return writer.getvalue()


def parse_put(body: bytes) -> bytes:
    reader = ByteReader(body)
    data = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "PUT_CONTAINER")
    return data


def build_get_meta(container_id: str) -> bytes:
    writer = ByteWriter()
    write_container_id(writer, container_id)
    return writer.getvalue()


def parse_get_meta(body: bytes) -> str:
    reader = ByteReader(body)
    container_id = read_container_id(reader)
    _expect_end(reader, "GET_META")
    return container_id


def build_get_function(container_id: str, findex: int) -> bytes:
    writer = ByteWriter()
    write_container_id(writer, container_id)
    writer.write_uvarint(findex)
    return writer.getvalue()


def parse_get_function(body: bytes) -> Tuple[str, int]:
    reader = ByteReader(body)
    container_id = read_container_id(reader)
    findex = reader.read_uvarint()
    _expect_end(reader, "GET_FUNCTION")
    return container_id, findex


def build_get_block(container_id: str, findex: int,
                    start: int, count: int) -> bytes:
    writer = ByteWriter()
    write_container_id(writer, container_id)
    writer.write_uvarint(findex)
    writer.write_uvarint(start)
    writer.write_uvarint(count)
    return writer.getvalue()


def parse_get_block(body: bytes) -> Tuple[str, int, int, int]:
    reader = ByteReader(body)
    container_id = read_container_id(reader)
    findex = reader.read_uvarint()
    start = reader.read_uvarint()
    count = reader.read_uvarint()
    _expect_end(reader, "GET_BLOCK")
    return container_id, findex, start, count


def build_get_container(container_id: str) -> bytes:
    writer = ByteWriter()
    write_container_id(writer, container_id)
    return writer.getvalue()


def parse_get_container(body: bytes) -> str:
    reader = ByteReader(body)
    container_id = read_container_id(reader)
    _expect_end(reader, "GET_CONTAINER")
    return container_id


def build_get_delta(target_id: str, base_id: str) -> bytes:
    """GET_DELTA body: the *target* id first, then the base the client
    already holds (mirroring "give me X, I have Y")."""
    writer = ByteWriter()
    write_container_id(writer, target_id)
    write_container_id(writer, base_id)
    return writer.getvalue()


def parse_get_delta(body: bytes) -> Tuple[str, str]:
    """Returns ``(target_id, base_id)``."""
    reader = ByteReader(body)
    target_id = read_container_id(reader)
    base_id = read_container_id(reader)
    _expect_end(reader, "GET_DELTA")
    return target_id, base_id


# -- response bodies --------------------------------------------------------

def build_ok_put(container_id: str, function_count: int, entry: int) -> bytes:
    writer = ByteWriter()
    write_container_id(writer, container_id)
    writer.write_uvarint(function_count)
    writer.write_uvarint(entry)
    return writer.getvalue()


def parse_ok_put(body: bytes) -> Tuple[str, int, int]:
    reader = ByteReader(body)
    container_id = read_container_id(reader)
    function_count = reader.read_uvarint()
    entry = reader.read_uvarint()
    _expect_end(reader, "OK_PUT")
    return container_id, function_count, entry


def build_ok_meta(program_name: str, entry: int,
                  function_names: List[str],
                  codec_id: str = "ssd",
                  codec_wire_id: int = 1,
                  container_version: int = 2) -> bytes:
    writer = ByteWriter()
    name = program_name.encode("utf-8")
    writer.write_uvarint(len(name))
    writer.write_bytes(name)
    writer.write_uvarint(entry)
    joined = "\n".join(function_names).encode("utf-8")
    writer.write_uvarint(len(function_names))
    writer.write_uvarint(len(joined))
    writer.write_bytes(joined)
    codec = codec_id.encode("utf-8")
    writer.write_uvarint(len(codec))
    writer.write_bytes(codec)
    writer.write_u8(codec_wire_id)
    writer.write_u8(container_version)
    return writer.getvalue()


def parse_ok_meta(body: bytes) -> Tuple[str, int, List[str], str, int, int]:
    """Returns ``(program_name, entry, function_names, codec_id,
    codec_wire_id, container_version)``."""
    reader = ByteReader(body)
    try:
        program_name = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        entry = reader.read_uvarint()
        count = reader.read_uvarint()
        joined = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        codec_id = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"OK_META strings are not UTF-8: {exc}") from exc
    codec_wire_id = reader.read_u8()
    container_version = reader.read_u8()
    names = joined.split("\n") if joined else []
    if len(names) != count:
        raise ProtocolError(f"OK_META declares {count} function names, "
                            f"carries {len(names)}")
    if not codec_id:
        raise ProtocolError("OK_META carries an empty codec id")
    _expect_end(reader, "OK_META")
    return (program_name, entry, names, codec_id, codec_wire_id,
            container_version)


def encode_instruction_slice(insns: List[Instruction], start: int) -> bytes:
    """Encode ``insns`` as VM bytecode, indexed from ``start``.

    Instruction encoding is position-dependent (branch displacements are
    pc-relative), so a block slice must be encoded with its true indices
    within the function; the receiver passes the same ``start`` back to
    :func:`decode_instruction_slice`.
    """
    writer = ByteWriter()
    writer.write_uvarint(len(insns))
    for offset, insn in enumerate(insns):
        encode_instruction(insn, start + offset, writer)
    return writer.getvalue()


def decode_instruction_slice(data: bytes, start: int) -> List[Instruction]:
    reader = ByteReader(data)
    count = reader.read_uvarint()
    insns = [decode_instruction(reader, start + offset)
             for offset in range(count)]
    _expect_end(reader, "instruction slice")
    return insns


def build_ok_function(findex: int, name: str,
                      insns: List[Instruction]) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(findex)
    encoded_name = name.encode("utf-8")
    writer.write_uvarint(len(encoded_name))
    writer.write_bytes(encoded_name)
    blob = encode_instruction_slice(insns, 0)
    writer.write_uvarint(len(blob))
    writer.write_bytes(blob)
    return writer.getvalue()


def parse_ok_function(body: bytes) -> Function:
    reader = ByteReader(body)
    reader.read_uvarint()  # findex (informational; the client asked for it)
    try:
        name = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"OK_FUNCTION name is not UTF-8: {exc}") from exc
    blob = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_FUNCTION")
    return Function(name=name, insns=decode_instruction_slice(blob, 0))


def build_ok_block(findex: int, start: int, total: int,
                   insns: List[Instruction]) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(findex)
    writer.write_uvarint(start)
    writer.write_uvarint(total)
    blob = encode_instruction_slice(insns, start)
    writer.write_uvarint(len(blob))
    writer.write_bytes(blob)
    return writer.getvalue()


def parse_ok_block(body: bytes) -> Tuple[int, int, int, List[Instruction]]:
    """Returns ``(findex, start, total_instructions, instructions)``."""
    reader = ByteReader(body)
    findex = reader.read_uvarint()
    start = reader.read_uvarint()
    total = reader.read_uvarint()
    blob = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_BLOCK")
    return findex, start, total, decode_instruction_slice(blob, start)


def build_ok_container(container: bytes) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(container))
    writer.write_bytes(container)
    return writer.getvalue()


def parse_ok_container(body: bytes) -> bytes:
    reader = ByteReader(body)
    data = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_CONTAINER")
    return data


def build_ok_delta(patch: bytes) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(patch))
    writer.write_bytes(patch)
    return writer.getvalue()


def parse_ok_delta(body: bytes) -> bytes:
    reader = ByteReader(body)
    patch = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_DELTA")
    return patch


def build_ok_stats(stats_json: bytes) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(stats_json))
    writer.write_bytes(stats_json)
    return writer.getvalue()


def parse_ok_stats(body: bytes) -> bytes:
    reader = ByteReader(body)
    blob = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_STATS")
    return blob


def build_ok_metrics(exposition: bytes) -> bytes:
    """OK_METRICS carries the Prometheus text exposition as UTF-8 bytes."""
    writer = ByteWriter()
    writer.write_uvarint(len(exposition))
    writer.write_bytes(exposition)
    return writer.getvalue()


def parse_ok_metrics(body: bytes) -> bytes:
    reader = ByteReader(body)
    blob = reader.read_bytes(reader.read_uvarint())
    _expect_end(reader, "OK_METRICS")
    return blob


@dataclass(frozen=True)
class HealthStatus:
    """What OK_HEALTH carries: the server's own view of its liveness.

    ``state`` is :data:`HEALTH_OK` or :data:`HEALTH_DRAINING`;
    ``inflight`` counts requests/decodes currently being worked;
    ``containers`` is the number of admitted containers (for a router
    answering on behalf of a cluster: the number of live shards).
    """

    state: int
    inflight: int
    containers: int

    @property
    def state_name(self) -> str:
        return HEALTH_STATE_NAMES.get(self.state, f"state-{self.state}")

    @property
    def ok(self) -> bool:
        return self.state == HEALTH_OK


def build_health() -> bytes:
    """HEALTH carries no body."""
    return b""


def build_ok_health(state: int, inflight: int, containers: int) -> bytes:
    writer = ByteWriter()
    writer.write_u8(state)
    writer.write_uvarint(inflight)
    writer.write_uvarint(containers)
    return writer.getvalue()


def parse_ok_health(body: bytes) -> HealthStatus:
    reader = ByteReader(body)
    state = reader.read_u8()
    inflight = reader.read_uvarint()
    containers = reader.read_uvarint()
    _expect_end(reader, "OK_HEALTH")
    if state not in HEALTH_STATE_NAMES:
        raise ProtocolError(f"unknown health state {state}")
    return HealthStatus(state=state, inflight=inflight, containers=containers)


# -- router gossip ----------------------------------------------------------

#: shard states as they travel in SYNC_STATE/OK_SYNC bodies.  These match
#: the router's health state machine (and the ``cluster_shard_state``
#: metric encoding) so a gossip peer can adopt them directly.
SYNC_SHARD_STATES = {
    "up": 0,
    "suspect": 1,
    "draining": 2,
    "down": 3,
}

SYNC_SHARD_STATE_NAMES = {code: name for name, code in
                          SYNC_SHARD_STATES.items()}

#: vnode weights travel as parts-per-million so the body stays integral
SYNC_WEIGHT_SCALE = 1_000_000


def _build_sync_body(epoch: int,
                     entries: Sequence[Tuple[str, str, float]]) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(epoch)
    writer.write_uvarint(len(entries))
    for shard_id, state_name, weight in entries:
        if state_name not in SYNC_SHARD_STATES:
            raise ProtocolError(f"unknown shard state {state_name!r}")
        if not weight > 0:
            raise ProtocolError(f"non-positive weight {weight} "
                                f"for {shard_id}")
        encoded = shard_id.encode("utf-8")
        writer.write_uvarint(len(encoded))
        writer.write_bytes(encoded)
        writer.write_u8(SYNC_SHARD_STATES[state_name])
        writer.write_uvarint(round(weight * SYNC_WEIGHT_SCALE))
    return writer.getvalue()


def _parse_sync_body(body: bytes,
                     what: str) -> Tuple[int, List[Tuple[str, str, float]]]:
    reader = ByteReader(body)
    epoch = reader.read_uvarint()
    count = reader.read_uvarint()
    entries: List[Tuple[str, str, float]] = []
    for _ in range(count):
        try:
            shard_id = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"{what} shard id is not UTF-8: {exc}") from exc
        code = reader.read_u8()
        if code not in SYNC_SHARD_STATE_NAMES:
            raise ProtocolError(f"unknown shard state code {code} in {what}")
        weight_ppm = reader.read_uvarint()
        if weight_ppm == 0:
            raise ProtocolError(f"zero weight for {shard_id} in {what}")
        entries.append((shard_id, SYNC_SHARD_STATE_NAMES[code],
                        weight_ppm / SYNC_WEIGHT_SCALE))
    _expect_end(reader, what)
    return epoch, entries


def build_sync_state(epoch: int,
                     entries: Sequence[Tuple[str, str, float]]) -> bytes:
    """SYNC_STATE carries the sender's weight epoch and, per shard,
    ``(shard_id, state_name, vnode_weight)``."""
    return _build_sync_body(epoch, entries)


def parse_sync_state(body: bytes) -> Tuple[int, List[Tuple[str, str, float]]]:
    return _parse_sync_body(body, "SYNC_STATE")


def build_ok_sync(epoch: int,
                  entries: Sequence[Tuple[str, str, float]]) -> bytes:
    """OK_SYNC mirrors SYNC_STATE with the *receiver's* view, so one
    exchange converges both peers."""
    return _build_sync_body(epoch, entries)


def parse_ok_sync(body: bytes) -> Tuple[int, List[Tuple[str, str, float]]]:
    return _parse_sync_body(body, "OK_SYNC")


def build_error(code: int, message: str) -> bytes:
    writer = ByteWriter()
    writer.write_u8(code)
    encoded = message.encode("utf-8")
    writer.write_uvarint(len(encoded))
    writer.write_bytes(encoded)
    return writer.getvalue()


def parse_error(body: bytes) -> Tuple[int, str]:
    reader = ByteReader(body)
    code = reader.read_u8()
    try:
        message = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"ERROR message is not UTF-8: {exc}") from exc
    _expect_end(reader, "ERROR")
    return code, message


def _expect_end(reader: ByteReader, what: str) -> None:
    if not reader.at_end():
        raise ProtocolError(f"{reader.remaining} trailing bytes "
                            f"in {what} body")


__all__ = [
    "CONTAINER_ID_BYTES",
    "ERROR",
    "ERROR_NAMES",
    "E_BAD_REQUEST",
    "E_BUSY",
    "E_CORRUPT",
    "E_INTERNAL",
    "E_LIMIT",
    "E_NOT_FOUND",
    "E_NO_BASE",
    "E_TIMEOUT",
    "E_UNAVAILABLE",
    "E_VERSION",
    "GET_BLOCK",
    "GET_CONTAINER",
    "GET_DELTA",
    "GET_FUNCTION",
    "GET_META",
    "GET_METRICS",
    "HEALTH",
    "HEALTH_DRAINING",
    "HEALTH_OK",
    "HEALTH_STATE_NAMES",
    "HealthStatus",
    "MAX_FRAME_BYTES",
    "Message",
    "OK_BLOCK",
    "OK_CONTAINER",
    "OK_DELTA",
    "OK_FUNCTION",
    "OK_HEALTH",
    "OK_META",
    "OK_METRICS",
    "OK_PUT",
    "OK_STATS",
    "OK_SYNC",
    "PROTOCOL_VERSION",
    "PUT_CONTAINER",
    "REQUEST_TYPES",
    "RETRYABLE_ERROR_CODES",
    "STATS",
    "SYNC_SHARD_STATES",
    "SYNC_SHARD_STATE_NAMES",
    "SYNC_STATE",
    "SYNC_WEIGHT_SCALE",
    "TYPE_NAMES",
    "build_error",
    "build_get_block",
    "build_get_container",
    "build_get_delta",
    "build_get_function",
    "build_get_meta",
    "build_health",
    "build_ok_block",
    "build_ok_container",
    "build_ok_delta",
    "build_ok_function",
    "build_ok_health",
    "build_ok_meta",
    "build_ok_metrics",
    "build_ok_put",
    "build_ok_stats",
    "build_ok_sync",
    "build_put",
    "build_sync_state",
    "decode_instruction_slice",
    "encode_frame",
    "encode_instruction_slice",
    "parse_error",
    "parse_ok_health",
    "parse_get_block",
    "parse_get_container",
    "parse_get_delta",
    "parse_get_function",
    "parse_get_meta",
    "parse_ok_block",
    "parse_ok_container",
    "parse_ok_delta",
    "parse_ok_function",
    "parse_ok_meta",
    "parse_ok_metrics",
    "parse_ok_put",
    "parse_ok_stats",
    "parse_ok_sync",
    "parse_payload",
    "parse_put",
    "parse_sync_state",
    "read_frame",
]
