"""The cluster front-end: consistent-hash routing with replica failover.

A :class:`ClusterRouter` speaks the ordinary ``repro.serve`` wire
protocol on its client side — a :class:`~repro.serve.client.ServeClient`
pointed at a router cannot tell it from a single server — and fans the
work out across N shard servers on its back side:

* **Placement** — container ids map onto shards through a
  :class:`~repro.serve.ring.HashRing`; every container lives on its
  first ``replication`` distinct ring successors, so any single shard
  loss leaves at least one live replica for every key (and R-1 losses
  still do).
* **Failover** — a request whose target shard is down, draining, busy,
  or unreachable moves to the next replica immediately; when a whole
  round of candidates fails, the router backs off (exponential, full
  jitter) and tries again, because crash recovery and drain hand-offs
  resolve in milliseconds.
* **Health** — a background probe task sends ``HEALTH`` to every shard
  each ``probe_interval``; answers drive the per-shard
  :class:`~repro.serve.health.ShardHealth` state machine (a shard that
  says ``draining`` is routed around *before* it starts refusing work).
* **Load control** — a per-shard :class:`~repro.serve.health.CircuitBreaker`
  stops the router hammering a dead address with fresh TCP connects;
  one half-open trial per cooldown rediscovers recovered shards.
* **Skew control** — a per-shard EWMA of served requests detects
  sustained imbalance (Zipf traffic piling onto one shard) and shifts
  bounded vnode weight away from the hot shard each rebalance round;
  an optional byte-budgeted response cache answers repeat GETs for hot
  content-addressed slices without touching any shard at all.
* **Scale-out** — multiple routers front the same shards and gossip
  health + vnode weights to each other over ``SYNC_STATE``/``OK_SYNC``
  (epoch-versioned: the newest rebalance wins), so clients can fail
  over between routers without the fleet disagreeing about placement.

``PUT_CONTAINER`` is replicated to *all* R placement shards (the store
is content-addressed, so replays are idempotent); one success is enough
to acknowledge.  Reads try replicas in ring order.  When every replica
of a key is dead the router answers ``E_UNAVAILABLE`` — a clean, typed
refusal, never a hang — which is exactly the below-quorum contract the
chaos harness asserts.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ProtocolError, ReproError
from ..obs import TRACER
from . import protocol
from .cache import GhostListAdmission, SharedLRUCache
from .health import CircuitBreaker, ShardHealth
from .metrics import RouterMetrics
from .ring import DEFAULT_REBALANCE_STEP, DEFAULT_VNODES, HashRing
from .server import read_frame_async
from .store import container_id_of

#: how often the router probes every shard with HEALTH (seconds)
DEFAULT_PROBE_INTERVAL = 0.25
#: per-probe deadline; a probe slower than this counts as a failure
DEFAULT_PROBE_TIMEOUT = 1.0
#: per-attempt deadline for one shard exchange (seconds)
DEFAULT_ATTEMPT_TIMEOUT = 10.0
#: full failover rounds before the router gives up with E_UNAVAILABLE
DEFAULT_ROUTE_ROUNDS = 3
#: how often the EWMA load tracker looks for sustained imbalance (seconds)
DEFAULT_REBALANCE_INTERVAL = 0.5
#: max/mean shard-load ratio that counts as imbalance
DEFAULT_REBALANCE_THRESHOLD = 1.5
#: consecutive imbalanced ticks before a rebalance round fires — a
#: single-tick spike (one big container fetched once) never moves keys
DEFAULT_SUSTAIN_TICKS = 2
#: EWMA smoothing for per-shard load (higher = reacts faster)
DEFAULT_EWMA_ALPHA = 0.3
#: per-tick request floor below which imbalance is ignored — a CLI put
#: hitting two replicas is 100% "skewed" but is noise, not a hot shard
DEFAULT_REBALANCE_MIN_REQUESTS = 32
#: how often a router gossips SYNC_STATE to its peers (seconds)
DEFAULT_SYNC_INTERVAL = 0.5

#: routed responses worth caching: content-addressed, bounded, immutable.
#: GET_CONTAINER is excluded (one entry could evict a whole working set);
#: GET_DELTA is excluded (its answer depends on which replica holds the
#: base, so it is not a pure function of the request body).
_CACHEABLE_TYPES = frozenset((protocol.GET_META, protocol.GET_FUNCTION,
                              protocol.GET_BLOCK))


@dataclass
class RouterConfig:
    """Tunables for one :class:`ClusterRouter`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral; read .port after start
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    probe_interval: float = DEFAULT_PROBE_INTERVAL
    probe_timeout: float = DEFAULT_PROBE_TIMEOUT
    attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT
    route_rounds: int = DEFAULT_ROUTE_ROUNDS
    backoff_base: float = 0.05         # first-round backoff ceiling (seconds)
    backoff_max: float = 1.0           # backoff ceiling growth limit
    fail_threshold: int = 3
    rise_threshold: int = 2
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    max_frame: int = protocol.MAX_FRAME_BYTES
    seed: Optional[int] = None         # jitter RNG seed (deterministic tests)
    cache_bytes: int = 0               # response-cache budget; 0 disables
    #: screen eviction-forcing response-cache inserts through a
    #: ghost-list frequency filter instead of always admitting
    cache_admission: bool = False
    rebalance_interval: float = DEFAULT_REBALANCE_INTERVAL  # 0 disables
    rebalance_threshold: float = DEFAULT_REBALANCE_THRESHOLD
    rebalance_step: float = DEFAULT_REBALANCE_STEP
    sustain_ticks: int = DEFAULT_SUSTAIN_TICKS
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    rebalance_min_requests: int = DEFAULT_REBALANCE_MIN_REQUESTS
    sync_interval: float = DEFAULT_SYNC_INTERVAL            # 0 disables


@dataclass
class _Shard:
    """Everything the router tracks about one back-end shard."""

    shard_id: str
    address: Tuple[str, int]
    health: ShardHealth
    breaker: CircuitBreaker
    pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = \
        field(default_factory=list)


class _Unrouteable(Exception):
    """Internal: this attempt failed in a way that permits failover."""


class ClusterRouter:
    """Asyncio front-end routing wire requests across shard servers."""

    def __init__(self, shards: Dict[str, Tuple[str, int]],
                 config: Optional[RouterConfig] = None,
                 metrics: Optional[RouterMetrics] = None) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self.config = config or RouterConfig()
        if self.config.replication < 1:
            raise ValueError("replication must be >= 1")
        self.metrics = metrics or RouterMetrics()
        self.ring = HashRing(sorted(shards), vnodes=self.config.vnodes)
        self._shards: Dict[str, _Shard] = {}
        for shard_id, address in shards.items():
            shard = _Shard(
                shard_id=shard_id, address=tuple(address),
                health=ShardHealth(
                    shard_id,
                    fail_threshold=self.config.fail_threshold,
                    rise_threshold=self.config.rise_threshold),
                breaker=CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown))
            self._shards[shard_id] = shard
            self.metrics.record_shard_state(shard_id, shard.health.state)
            self.metrics.record_breaker_state(shard_id, shard.breaker.state)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._rebalance_task: Optional[asyncio.Task] = None
        self._sync_task: Optional[asyncio.Task] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._rng = random.Random(self.config.seed)
        self._response_cache = (
            SharedLRUCache(
                self.config.cache_bytes,
                policy=GhostListAdmission() if self.config.cache_admission
                else None)
            if self.config.cache_bytes > 0 else None)
        self._cache_evictions_seen = 0
        # per-shard cumulative served requests (cache hits excluded —
        # they cost the shards nothing), feeding the EWMA load tracker
        self._served: Dict[str, int] = {sid: 0 for sid in self._shards}
        self._ewma: Dict[str, float] = {sid: 0.0 for sid in self._shards}
        self._last_served: Dict[str, int] = dict(self._served)
        self._hot_ticks = 0
        #: version of the current weight assignment; gossip peers adopt
        #: whichever epoch is strictly newer, so one router's rebalance
        #: converges the fleet
        self.weights_epoch = 0
        self._peers: List[Tuple[str, int]] = []
        self.metrics.record_vnode_weights(dict(self.ring.weights))

    # -- introspection -------------------------------------------------------

    @property
    def replication(self) -> int:
        return min(self.config.replication, len(self._shards))

    @property
    def quorum(self) -> int:
        """Live shards needed so every key keeps at least one replica."""
        return len(self._shards) - self.replication + 1

    @property
    def live_shards(self) -> List[str]:
        return [shard_id for shard_id, shard in sorted(self._shards.items())
                if shard.health.routable]

    def shard_states(self) -> Dict[str, str]:
        return {shard_id: shard.health.state
                for shard_id, shard in self._shards.items()}

    def replicas_for(self, container_id: str) -> List[str]:
        return self.ring.replicas_for(container_id, self.replication)

    def update_address(self, shard_id: str, host: str, port: int) -> None:
        """Re-point a shard id at a new address (restart after a crash).

        Thread-safe entry point: from outside the router's loop, call via
        ``loop.call_soon_threadsafe``.  Pooled connections to the old
        address are discarded.
        """
        shard = self._shards[shard_id]
        shard.address = (host, port)
        stale, shard.pool = shard.pool, []
        for _reader, writer in stale:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._probe_task = loop.create_task(self._probe_loop())
        if self.config.rebalance_interval > 0:
            self._rebalance_task = loop.create_task(self._rebalance_loop())
        if self.config.sync_interval > 0:
            self._sync_task = loop.create_task(self._sync_loop())
        return self._server

    async def stop(self) -> None:
        for attr in ("_probe_task", "_rebalance_task", "_sync_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for shard in self._shards.values():
            pool, shard.pool = shard.pool, []
            for _reader, writer in pool:
                writer.close()
        for writer in list(self._writers):
            writer.close()

    # -- shard I/O -----------------------------------------------------------

    async def _acquire(self, shard: _Shard
                       ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while shard.pool:
            reader, writer = shard.pool.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.wait_for(
            asyncio.open_connection(*shard.address),
            timeout=self.config.attempt_timeout)

    async def _shard_exchange(self, shard: _Shard, message: protocol.Message,
                              timeout: float) -> protocol.Message:
        """One request/response against one shard on a pooled connection.

        Raises ``OSError``/``ProtocolError``/``TimeoutError`` on transport
        trouble; the connection is only returned to the pool after a
        complete, clean exchange (anything else may have desynchronized
        the frame stream).
        """
        reader, writer = await self._acquire(shard)
        try:
            writer.write(protocol.encode_frame(message))
            await writer.drain()
            response = await asyncio.wait_for(
                read_frame_async(reader, self.config.max_frame),
                timeout=timeout)
        except BaseException:
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise
        if response is None:
            writer.close()
            raise ProtocolError(f"shard {shard.shard_id} closed the "
                                "connection mid-exchange")
        shard.pool.append((reader, writer))
        return response

    # -- health probing ------------------------------------------------------

    async def _probe_loop(self) -> None:
        probe = protocol.Message(type=protocol.HEALTH, request_id=0,
                                 body=protocol.build_health())
        while True:
            await asyncio.gather(*(self._probe_shard(shard, probe)
                                   for shard in self._shards.values()))
            await asyncio.sleep(self.config.probe_interval)

    async def _probe_shard(self, shard: _Shard,
                           probe: protocol.Message) -> None:
        try:
            response = await self._shard_exchange(
                shard, probe, timeout=self.config.probe_timeout)
        except (OSError, ProtocolError, asyncio.TimeoutError):
            self.metrics.record_probe_failure(shard.shard_id)
            self._note_health(shard, ok=False)
            return
        if response.type == protocol.OK_HEALTH:
            try:
                status = protocol.parse_ok_health(response.body)
            except ProtocolError:
                self.metrics.record_probe_failure(shard.shard_id)
                self._note_health(shard, ok=False)
                return
            if status.state == protocol.HEALTH_DRAINING:
                self._note_draining(shard)
            else:
                self._note_health(shard, ok=True)
        else:
            # An ERROR answer still proves liveness (e.g. a pre-HEALTH
            # peer answering E_BAD_REQUEST); a draining shard answers
            # OK_HEALTH above, so anything framed counts as alive.
            self._note_health(shard, ok=True)

    def _note_health(self, shard: _Shard, ok: bool) -> None:
        before = shard.health.state
        if ok:
            shard.health.record_success()
        else:
            shard.health.record_failure()
        if shard.health.state != before:
            self.metrics.record_shard_state(shard.shard_id,
                                            shard.health.state)

    def _note_draining(self, shard: _Shard) -> None:
        before = shard.health.state
        shard.health.record_draining()
        if shard.health.state != before:
            self.metrics.record_shard_state(shard.shard_id,
                                            shard.health.state)

    def _note_breaker(self, shard: _Shard, ok: bool) -> None:
        before = shard.breaker.state
        if ok:
            shard.breaker.record_success()
        else:
            shard.breaker.record_failure()
        if shard.breaker.state != before:
            self.metrics.record_breaker_state(shard.shard_id,
                                              shard.breaker.state)
            self.metrics.record_breaker_transition(shard.shard_id,
                                                   shard.breaker.state)

    def _breaker_allows(self, shard: _Shard) -> bool:
        before = shard.breaker.state
        allowed = shard.breaker.allow()
        if shard.breaker.state != before:   # open -> half-open
            self.metrics.record_breaker_state(shard.shard_id,
                                              shard.breaker.state)
            self.metrics.record_breaker_transition(shard.shard_id,
                                                   shard.breaker.state)
        return allowed

    # -- hot-shard rebalance -------------------------------------------------

    async def _rebalance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.rebalance_interval)
            self._rebalance_tick()

    def _rebalance_tick(self) -> None:
        """One EWMA update; fires a rebalance on *sustained* imbalance.

        Load is the per-tick delta of requests each shard actually
        served (cache hits never reach a shard, so they don't count).
        A tick with no traffic decays nothing and never triggers — an
        idle cluster keeps its weights.
        """
        deltas: Dict[str, float] = {}
        for shard_id, total in self._served.items():
            deltas[shard_id] = float(total - self._last_served[shard_id])
            self._last_served[shard_id] = total
        if sum(deltas.values()) < max(1, self.config.rebalance_min_requests):
            # Idle or noise-floor tick: a handful of requests always
            # looks "skewed" (one put lands on exactly R shards) but
            # says nothing about sustained load.
            self._hot_ticks = 0
            return
        alpha = self.config.ewma_alpha
        for shard_id, delta in deltas.items():
            self._ewma[shard_id] = (alpha * delta
                                    + (1.0 - alpha) * self._ewma[shard_id])
        mean = sum(self._ewma.values()) / len(self._ewma)
        if mean <= 0:
            return
        if max(self._ewma.values()) / mean >= self.config.rebalance_threshold:
            self._hot_ticks += 1
        else:
            self._hot_ticks = 0
            return
        if self._hot_ticks < self.config.sustain_ticks:
            return
        self._hot_ticks = 0
        rebalanced = self.ring.rebalance(self._ewma,
                                         max_step=self.config.rebalance_step)
        if rebalanced.weights == self.ring.weights:
            return      # already pinned at the clamp
        self.ring = rebalanced
        self.weights_epoch += 1
        self.metrics.record_rebalance(dict(rebalanced.weights))

    # -- gossip: multi-router state sync -------------------------------------

    def set_peers(self, peers: List[Tuple[str, int]]) -> None:
        """Addresses of the other routers fronting the same shards.

        Thread-safe entry point: from outside the router's loop, call
        via ``loop.call_soon_threadsafe``.
        """
        own = (self.config.host, self.port)
        self._peers = [tuple(address) for address in peers
                       if tuple(address) != own]

    def _sync_entries(self) -> List[Tuple[str, str, float]]:
        return [(shard_id, shard.health.state,
                 self.ring.weights[shard_id])
                for shard_id, shard in sorted(self._shards.items())]

    def apply_weights(self, weights: Dict[str, float], epoch: int) -> None:
        """Adopt a peer's weight assignment if it is strictly newer."""
        if epoch <= self.weights_epoch:
            return
        known = {sid: w for sid, w in weights.items() if sid in self._shards}
        if not known:
            return
        self.ring = self.ring.with_weights(known)
        self.weights_epoch = epoch
        self.metrics.record_vnode_weights(dict(self.ring.weights))

    def _apply_sync(self, epoch: int,
                    entries: List[Tuple[str, str, float]]) -> None:
        self.apply_weights(
            {sid: weight for sid, _state, weight in entries}, epoch)
        for shard_id, state, _weight in entries:
            # Health merge is deliberately narrow: only a peer's
            # *draining* view is adopted (drain is announced by the
            # shard itself, so it is authoritative no matter who heard
            # it).  up/down stay local — each router's own probes decide
            # those, so one router's flaky link can't poison the fleet.
            if state == "draining" and shard_id in self._shards:
                shard = self._shards[shard_id]
                if shard.health.state == "up":
                    self._note_draining(shard)

    async def _sync_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sync_interval)
            for address in list(self._peers):
                await self._sync_peer(address)

    async def _sync_peer(self, address: Tuple[str, int]) -> None:
        message = protocol.Message(
            type=protocol.SYNC_STATE, request_id=0,
            body=protocol.build_sync_state(self.weights_epoch,
                                           self._sync_entries()))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address),
                timeout=self.config.probe_timeout)
        except (OSError, asyncio.TimeoutError):
            return      # peer down; the chaos harness kills routers freely
        try:
            writer.write(protocol.encode_frame(message))
            await writer.drain()
            response = await asyncio.wait_for(
                read_frame_async(reader, self.config.max_frame),
                timeout=self.config.probe_timeout)
        except (OSError, ProtocolError, ReproError, asyncio.TimeoutError):
            return
        finally:
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if response is None or response.type != protocol.OK_SYNC:
            return
        try:
            epoch, entries = protocol.parse_ok_sync(response.body)
        except ProtocolError:
            return
        self.metrics.record_sync("sent")
        self._apply_sync(epoch, entries)

    def _answer_sync(self, message: protocol.Message) -> protocol.Message:
        """A peer pushed its state; adopt what's newer, answer with ours."""
        try:
            epoch, entries = protocol.parse_sync_state(message.body)
        except ProtocolError as exc:
            return protocol.Message(
                type=protocol.ERROR, request_id=message.request_id,
                body=protocol.build_error(protocol.E_BAD_REQUEST, str(exc)))
        self.metrics.record_sync("received")
        self._apply_sync(epoch, entries)
        body = protocol.build_ok_sync(self.weights_epoch,
                                      self._sync_entries())
        return protocol.Message(type=protocol.OK_SYNC,
                                request_id=message.request_id, body=body)

    # -- client connections --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame_async(reader,
                                                     self.config.max_frame)
                except (ProtocolError, ReproError) as exc:
                    await self._send_error(writer, 0, protocol.E_BAD_REQUEST,
                                           str(exc))
                    return
                if message is None:
                    return
                started = time.perf_counter()
                self._active_requests += 1
                try:
                    with TRACER.span("cluster.route", type=message.type_name,
                                     request_id=message.request_id) as span:
                        response, hops = await self._route(message)
                        span.set_attr("response", response.type_name)
                        span.set_attr("hops", hops)
                finally:
                    self._active_requests -= 1
                writer.write(protocol.encode_frame(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
                self.metrics.record_request(
                    message.type_name, time.perf_counter() - started,
                    hops=hops)
                if response.type == protocol.ERROR:
                    code = response.body[0] if response.body else 0
                    self.metrics.record_error(
                        protocol.ERROR_NAMES.get(code, f"E_{code}"))
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send_error(self, writer: asyncio.StreamWriter,
                          request_id: int, code: int, message: str) -> None:
        self.metrics.record_error(protocol.ERROR_NAMES.get(code, f"E_{code}"))
        try:
            writer.write(protocol.encode_frame(protocol.Message(
                type=protocol.ERROR, request_id=request_id,
                body=protocol.build_error(code, message))))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- routing -------------------------------------------------------------

    async def _route(self, message: protocol.Message
                     ) -> Tuple[protocol.Message, int]:
        """Answer one client request; returns ``(response, shard_hops)``."""
        def error(code: int, text: str) -> protocol.Message:
            return protocol.Message(type=protocol.ERROR,
                                    request_id=message.request_id,
                                    body=protocol.build_error(code, text))

        if message.type in (protocol.HEALTH, protocol.STATS,
                            protocol.GET_METRICS):
            return await self._answer_locally(message), 0
        if message.type == protocol.SYNC_STATE:
            return self._answer_sync(message), 0
        if message.type == protocol.PUT_CONTAINER:
            return await self._route_put(message)
        if message.type in (protocol.GET_META, protocol.GET_FUNCTION,
                            protocol.GET_BLOCK, protocol.GET_CONTAINER):
            if len(message.body) < protocol.CONTAINER_ID_BYTES:
                return error(protocol.E_BAD_REQUEST,
                             "request body shorter than a container id"), 0
            container_id = \
                message.body[:protocol.CONTAINER_ID_BYTES].hex()
            return await self._route_get(message, container_id)
        if message.type == protocol.GET_DELTA:
            if len(message.body) < 2 * protocol.CONTAINER_ID_BYTES:
                return error(protocol.E_BAD_REQUEST,
                             "GET_DELTA body shorter than two container ids"), 0
            target_id = message.body[:protocol.CONTAINER_ID_BYTES].hex()
            return await self._route_delta(message, target_id)
        return error(protocol.E_BAD_REQUEST,
                     f"unknown request type 0x{message.type:02x}"), 0

    async def _answer_locally(self, message: protocol.Message
                              ) -> protocol.Message:
        """HEALTH/STATS/GET_METRICS describe the router itself."""
        if message.type == protocol.HEALTH:
            body = protocol.build_ok_health(
                protocol.HEALTH_OK, self._active_requests,
                len(self.live_shards))
            return protocol.Message(type=protocol.OK_HEALTH,
                                    request_id=message.request_id, body=body)
        if message.type == protocol.STATS:
            snapshot = self.metrics.snapshot(shard_states=self.shard_states())
            snapshot["replication"] = self.replication
            snapshot["quorum"] = self.quorum
            snapshot["shard_load"] = dict(sorted(self._served.items()))
            snapshot["weights_epoch"] = self.weights_epoch
            body = protocol.build_ok_stats(
                json.dumps(snapshot, sort_keys=True).encode("utf-8"))
            return protocol.Message(type=protocol.OK_STATS,
                                    request_id=message.request_id, body=body)
        body = protocol.build_ok_metrics(
            self.metrics.expose_text().encode("utf-8"))
        return protocol.Message(type=protocol.OK_METRICS,
                                request_id=message.request_id, body=body)

    def _candidates(self, replicas: List[str]) -> List[_Shard]:
        """Replicas worth attempting right now, in ring order.

        Health filters out shards known dead or draining.  When the
        filter empties the list entirely, fall back to *all* replicas —
        stale health must never turn a recoverable request into
        E_UNAVAILABLE without at least one real attempt.  (The circuit
        breaker is consulted in :meth:`_attempt`, not here, so its
        half-open trial slot is only consumed by an attempt that
        actually happens and reports an outcome.)
        """
        shards = [self._shards[shard_id] for shard_id in replicas]
        routable = [s for s in shards if s.health.routable]
        return routable or shards

    async def _attempt(self, shard: _Shard,
                       message: protocol.Message) -> protocol.Message:
        """One shard attempt; raises :class:`_Unrouteable` for failover."""
        if not self._breaker_allows(shard):
            raise _Unrouteable(f"{shard.shard_id}: circuit breaker open")
        try:
            response = await self._shard_exchange(
                shard, message, timeout=self.config.attempt_timeout)
        except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
            self._note_health(shard, ok=False)
            self._note_breaker(shard, ok=False)
            raise _Unrouteable(f"{shard.shard_id}: {exc}") from exc
        self._note_breaker(shard, ok=True)
        if response.type == protocol.ERROR:
            try:
                code, text = protocol.parse_error(response.body)
            except ProtocolError:
                raise _Unrouteable(
                    f"{shard.shard_id}: unparseable ERROR frame") from None
            if code in protocol.RETRYABLE_ERROR_CODES:
                # The shard is alive but can't serve this now (draining,
                # saturated, deadline); a replica may.  E_UNAVAILABLE
                # from a drain also flips health so probes confirm it.
                if code == protocol.E_UNAVAILABLE:
                    self._note_draining(shard)
                raise _Unrouteable(
                    f"{shard.shard_id}: "
                    f"{protocol.ERROR_NAMES.get(code, code)}: {text}")
        self._served[shard.shard_id] += 1
        return response

    def _backoff(self, round_index: int) -> float:
        ceiling = min(self.config.backoff_max,
                      self.config.backoff_base * (2 ** round_index))
        return self._rng.uniform(0.0, ceiling)

    def _cache_lookup(self, message: protocol.Message
                      ) -> Tuple[Optional[tuple], Optional[protocol.Message]]:
        """Response-cache probe; ``(key, hit)`` with ``key=None`` when
        this request is not cacheable (or the cache is off).

        Bodies are content-addressed — a GET_META/GET_FUNCTION/GET_BLOCK
        request body names an immutable container slice, so a cached
        answer can never be stale; only the request id must be restamped.
        """
        if self._response_cache is None or \
                message.type not in _CACHEABLE_TYPES:
            return None, None
        key = (message.type, bytes(message.body))
        cached = self._response_cache.get(key)
        if cached is None:
            self.metrics.record_cache_miss()
            return key, None
        self.metrics.record_cache_hit()
        response_type, body = cached
        return key, protocol.Message(type=response_type,
                                     request_id=message.request_id,
                                     body=body)

    def _cache_store(self, key: tuple, response: protocol.Message) -> None:
        cache = self._response_cache
        assert cache is not None
        cache.put(key, (response.type, response.body),
                  size=len(response.body) + len(key[1]) + 64)
        stats = cache.stats()
        self.metrics.record_cache_evictions(
            stats.evictions - self._cache_evictions_seen)
        self._cache_evictions_seen = stats.evictions
        self.metrics.record_cache_bytes(stats.current_bytes)

    @staticmethod
    def _is_not_found(response: protocol.Message) -> bool:
        if response.type != protocol.ERROR:
            return False
        try:
            code, _text = protocol.parse_error(response.body)
        except ProtocolError:
            return False
        return code == protocol.E_NOT_FOUND

    async def _route_get(self, message: protocol.Message, container_id: str
                         ) -> Tuple[protocol.Message, int]:
        cache_key, hit = self._cache_lookup(message)
        if hit is not None:
            return hit, 0
        replicas = self.replicas_for(container_id)
        # Read-chase order: current replicas first, then every other
        # shard.  A rebalance (or a weight adopted over gossip) can move
        # a key's replica set after its container was stored, so a live
        # E_NOT_FOUND from the current replicas is not definitive — the
        # bytes still sit where an earlier ring put them.  Chasing is
        # bounded by the shard count and only runs on the miss path.
        chase = list(replicas) + [shard_id for shard_id in self._shards
                                  if shard_id not in replicas]
        hops = 0
        last_reason = "no replica attempted"
        not_found: Optional[protocol.Message] = None
        for round_index in range(self.config.route_rounds):
            if round_index:
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            round_unrouteable = False
            candidates = self._candidates(chase)
            # health probes may have already excluded a down shard
            every_shard_attempted = len(candidates) == len(chase)
            for position, shard in enumerate(candidates):
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable as exc:
                    last_reason = str(exc)
                    round_unrouteable = True
                    continue
                if self._is_not_found(response):
                    not_found = response
                    last_reason = f"{shard.shard_id}: E_NOT_FOUND"
                    continue
                if shard.shard_id != replicas[0]:
                    # served by a non-primary replica — whether we tried
                    # the primary and failed, or probes already marked it
                    # unroutable, this request failed over
                    self.metrics.record_failover(shard.shard_id)
                if cache_key is not None and \
                        response.type != protocol.ERROR:
                    self._cache_store(cache_key, response)
                return response, hops
            if not_found is not None and not round_unrouteable \
                    and every_shard_attempted:
                # Every shard answered and none holds it: a genuine
                # miss, not a routing artifact.  With any shard dead or
                # unreachable the answer stays E_UNAVAILABLE — the key
                # may well live on the shard we could not ask.
                return not_found, hops
        self.metrics.record_unavailable()
        body = protocol.build_error(
            protocol.E_UNAVAILABLE,
            f"no live replica for {container_id[:12]}… "
            f"(replicas {', '.join(replicas)}; last: {last_reason})")
        return protocol.Message(type=protocol.ERROR,
                                request_id=message.request_id,
                                body=body), hops

    async def _route_delta(self, message: protocol.Message, target_id: str
                           ) -> Tuple[protocol.Message, int]:
        """Route GET_DELTA across the target's replicas.

        Placement is by *target* id (that is where the patch can be
        synthesized), but replicas may disagree about holding the
        *base*: an ``E_NO_BASE`` answer fails over to the next replica,
        which may hold both containers.  Only when a full round of live
        replicas answers ``E_NO_BASE`` is it returned to the client —
        the definitive "fall back to a full transfer" signal.
        """
        replicas = self.replicas_for(target_id)
        hops = 0
        last_reason = "no replica attempted"
        for round_index in range(self.config.route_rounds):
            if round_index:
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            no_base: Optional[protocol.Message] = None
            for shard in self._candidates(replicas):
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable as exc:
                    last_reason = str(exc)
                    continue
                if response.type == protocol.ERROR:
                    try:
                        code, _text = protocol.parse_error(response.body)
                    except ProtocolError:
                        code = 0
                    if code == protocol.E_NO_BASE:
                        no_base = response
                        last_reason = f"{shard.shard_id}: E_NO_BASE"
                        self.metrics.record_failover(shard.shard_id)
                        continue
                if shard.shard_id != replicas[0]:
                    self.metrics.record_failover(shard.shard_id)
                return response, hops
            if no_base is not None:
                return no_base, hops
        self.metrics.record_unavailable()
        body = protocol.build_error(
            protocol.E_UNAVAILABLE,
            f"no live replica for {target_id[:12]}… "
            f"(replicas {', '.join(replicas)}; last: {last_reason})")
        return protocol.Message(type=protocol.ERROR,
                                request_id=message.request_id,
                                body=body), hops

    async def _route_put(self, message: protocol.Message
                         ) -> Tuple[protocol.Message, int]:
        def error(code: int, text: str) -> protocol.Message:
            return protocol.Message(type=protocol.ERROR,
                                    request_id=message.request_id,
                                    body=protocol.build_error(code, text))

        try:
            data = protocol.parse_put(message.body)
        except (ProtocolError, ReproError, ValueError) as exc:
            return error(protocol.E_BAD_REQUEST, str(exc)), 0
        container_id = container_id_of(data)
        replicas = self.replicas_for(container_id)
        hops = 0
        success: Optional[protocol.Message] = None
        definitive: Optional[protocol.Message] = None
        failed: List[str] = []
        for round_index in range(self.config.route_rounds):
            if round_index:
                if not failed:
                    break
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            pending = failed if round_index else list(replicas)
            failed = []
            for shard_id in pending:
                shard = self._shards[shard_id]
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable:
                    if hops > 1:
                        self.metrics.record_failover(shard_id)
                    failed.append(shard_id)
                    continue
                if response.type == protocol.ERROR:
                    # definitive (non-retryable) shard verdict, e.g.
                    # E_CORRUPT from verify-gated admission
                    definitive = response
                else:
                    success = response
            if definitive is not None or (success is not None and not failed):
                break
        if definitive is not None:
            return definitive, hops
        if success is not None:
            # At least one replica admitted the container; stragglers
            # will be re-replicated by a future PUT replay (puts are
            # idempotent: the store is content-addressed).
            return success, hops
        self.metrics.record_unavailable()
        return error(protocol.E_UNAVAILABLE,
                     f"no replica of {container_id[:12]}… accepted the "
                     f"container (replicas {', '.join(replicas)})"), hops


# -- running a router from synchronous code ----------------------------------

class RouterHandle:
    """A router running on a daemon thread; mirrors ``ServerHandle``."""

    def __init__(self, router: ClusterRouter, loop: asyncio.AbstractEventLoop,
                 stop_event: asyncio.Event, thread) -> None:
        self.router = router
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.router.config.host, self.router.port)

    @property
    def metrics(self) -> RouterMetrics:
        return self.router.metrics

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def update_address(self, shard_id: str, host: str, port: int) -> None:
        """Thread-safe re-point of a restarted shard."""
        self._loop.call_soon_threadsafe(
            self.router.update_address, shard_id, host, port)

    def set_peers(self, peers: List[Tuple[str, int]]) -> None:
        """Thread-safe wiring of the gossip peer set."""
        self._loop.call_soon_threadsafe(self.router.set_peers, list(peers))

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def router_in_thread(shards: Dict[str, Tuple[str, int]],
                     config: Optional[RouterConfig] = None,
                     startup_timeout: float = 10.0) -> RouterHandle:
    """Start a :class:`ClusterRouter` on a background thread."""
    import threading

    router = ClusterRouter(shards, config=config)
    ready = threading.Event()
    startup_error: list = []
    boxes: dict = {}

    def runner() -> None:
        async def main() -> None:
            stop_event = asyncio.Event()
            try:
                await router.start()
            except Exception as exc:  # noqa: BLE001 - reported to caller
                startup_error.append(exc)
                ready.set()
                return
            boxes["loop"] = asyncio.get_running_loop()
            boxes["stop"] = stop_event
            ready.set()
            try:
                await stop_event.wait()
            finally:
                await router.stop()

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="ssd-router", daemon=True)
    thread.start()
    if not ready.wait(startup_timeout):
        raise RuntimeError(f"router failed to start within {startup_timeout}s")
    if startup_error:
        raise startup_error[0]
    return RouterHandle(router, boxes["loop"], boxes["stop"], thread)


__all__ = [
    "ClusterRouter",
    "DEFAULT_ATTEMPT_TIMEOUT",
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_PROBE_TIMEOUT",
    "DEFAULT_REBALANCE_INTERVAL",
    "DEFAULT_REBALANCE_MIN_REQUESTS",
    "DEFAULT_REBALANCE_THRESHOLD",
    "DEFAULT_ROUTE_ROUNDS",
    "DEFAULT_SUSTAIN_TICKS",
    "DEFAULT_SYNC_INTERVAL",
    "RouterConfig",
    "RouterHandle",
    "router_in_thread",
]
