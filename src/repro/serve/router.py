"""The cluster front-end: consistent-hash routing with replica failover.

A :class:`ClusterRouter` speaks the ordinary ``repro.serve`` wire
protocol on its client side — a :class:`~repro.serve.client.ServeClient`
pointed at a router cannot tell it from a single server — and fans the
work out across N shard servers on its back side:

* **Placement** — container ids map onto shards through a
  :class:`~repro.serve.ring.HashRing`; every container lives on its
  first ``replication`` distinct ring successors, so any single shard
  loss leaves at least one live replica for every key (and R-1 losses
  still do).
* **Failover** — a request whose target shard is down, draining, busy,
  or unreachable moves to the next replica immediately; when a whole
  round of candidates fails, the router backs off (exponential, full
  jitter) and tries again, because crash recovery and drain hand-offs
  resolve in milliseconds.
* **Health** — a background probe task sends ``HEALTH`` to every shard
  each ``probe_interval``; answers drive the per-shard
  :class:`~repro.serve.health.ShardHealth` state machine (a shard that
  says ``draining`` is routed around *before* it starts refusing work).
* **Load control** — a per-shard :class:`~repro.serve.health.CircuitBreaker`
  stops the router hammering a dead address with fresh TCP connects;
  one half-open trial per cooldown rediscovers recovered shards.

``PUT_CONTAINER`` is replicated to *all* R placement shards (the store
is content-addressed, so replays are idempotent); one success is enough
to acknowledge.  Reads try replicas in ring order.  When every replica
of a key is dead the router answers ``E_UNAVAILABLE`` — a clean, typed
refusal, never a hang — which is exactly the below-quorum contract the
chaos harness asserts.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ProtocolError, ReproError
from ..obs import TRACER
from . import protocol
from .health import CircuitBreaker, ShardHealth
from .metrics import RouterMetrics
from .ring import DEFAULT_VNODES, HashRing
from .server import read_frame_async
from .store import container_id_of

#: how often the router probes every shard with HEALTH (seconds)
DEFAULT_PROBE_INTERVAL = 0.25
#: per-probe deadline; a probe slower than this counts as a failure
DEFAULT_PROBE_TIMEOUT = 1.0
#: per-attempt deadline for one shard exchange (seconds)
DEFAULT_ATTEMPT_TIMEOUT = 10.0
#: full failover rounds before the router gives up with E_UNAVAILABLE
DEFAULT_ROUTE_ROUNDS = 3


@dataclass
class RouterConfig:
    """Tunables for one :class:`ClusterRouter`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral; read .port after start
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    probe_interval: float = DEFAULT_PROBE_INTERVAL
    probe_timeout: float = DEFAULT_PROBE_TIMEOUT
    attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT
    route_rounds: int = DEFAULT_ROUTE_ROUNDS
    backoff_base: float = 0.05         # first-round backoff ceiling (seconds)
    backoff_max: float = 1.0           # backoff ceiling growth limit
    fail_threshold: int = 3
    rise_threshold: int = 2
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    max_frame: int = protocol.MAX_FRAME_BYTES
    seed: Optional[int] = None         # jitter RNG seed (deterministic tests)


@dataclass
class _Shard:
    """Everything the router tracks about one back-end shard."""

    shard_id: str
    address: Tuple[str, int]
    health: ShardHealth
    breaker: CircuitBreaker
    pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = \
        field(default_factory=list)


class _Unrouteable(Exception):
    """Internal: this attempt failed in a way that permits failover."""


class ClusterRouter:
    """Asyncio front-end routing wire requests across shard servers."""

    def __init__(self, shards: Dict[str, Tuple[str, int]],
                 config: Optional[RouterConfig] = None,
                 metrics: Optional[RouterMetrics] = None) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self.config = config or RouterConfig()
        if self.config.replication < 1:
            raise ValueError("replication must be >= 1")
        self.metrics = metrics or RouterMetrics()
        self.ring = HashRing(sorted(shards), vnodes=self.config.vnodes)
        self._shards: Dict[str, _Shard] = {}
        for shard_id, address in shards.items():
            shard = _Shard(
                shard_id=shard_id, address=tuple(address),
                health=ShardHealth(
                    shard_id,
                    fail_threshold=self.config.fail_threshold,
                    rise_threshold=self.config.rise_threshold),
                breaker=CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown))
            self._shards[shard_id] = shard
            self.metrics.record_shard_state(shard_id, shard.health.state)
            self.metrics.record_breaker_state(shard_id, shard.breaker.state)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._rng = random.Random(self.config.seed)

    # -- introspection -------------------------------------------------------

    @property
    def replication(self) -> int:
        return min(self.config.replication, len(self._shards))

    @property
    def quorum(self) -> int:
        """Live shards needed so every key keeps at least one replica."""
        return len(self._shards) - self.replication + 1

    @property
    def live_shards(self) -> List[str]:
        return [shard_id for shard_id, shard in sorted(self._shards.items())
                if shard.health.routable]

    def shard_states(self) -> Dict[str, str]:
        return {shard_id: shard.health.state
                for shard_id, shard in self._shards.items()}

    def replicas_for(self, container_id: str) -> List[str]:
        return self.ring.replicas_for(container_id, self.replication)

    def update_address(self, shard_id: str, host: str, port: int) -> None:
        """Re-point a shard id at a new address (restart after a crash).

        Thread-safe entry point: from outside the router's loop, call via
        ``loop.call_soon_threadsafe``.  Pooled connections to the old
        address are discarded.
        """
        shard = self._shards[shard_id]
        shard.address = (host, port)
        stale, shard.pool = shard.pool, []
        for _reader, writer in stale:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())
        return self._server

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for shard in self._shards.values():
            pool, shard.pool = shard.pool, []
            for _reader, writer in pool:
                writer.close()
        for writer in list(self._writers):
            writer.close()

    # -- shard I/O -----------------------------------------------------------

    async def _acquire(self, shard: _Shard
                       ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while shard.pool:
            reader, writer = shard.pool.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.wait_for(
            asyncio.open_connection(*shard.address),
            timeout=self.config.attempt_timeout)

    async def _shard_exchange(self, shard: _Shard, message: protocol.Message,
                              timeout: float) -> protocol.Message:
        """One request/response against one shard on a pooled connection.

        Raises ``OSError``/``ProtocolError``/``TimeoutError`` on transport
        trouble; the connection is only returned to the pool after a
        complete, clean exchange (anything else may have desynchronized
        the frame stream).
        """
        reader, writer = await self._acquire(shard)
        try:
            writer.write(protocol.encode_frame(message))
            await writer.drain()
            response = await asyncio.wait_for(
                read_frame_async(reader, self.config.max_frame),
                timeout=timeout)
        except BaseException:
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise
        if response is None:
            writer.close()
            raise ProtocolError(f"shard {shard.shard_id} closed the "
                                "connection mid-exchange")
        shard.pool.append((reader, writer))
        return response

    # -- health probing ------------------------------------------------------

    async def _probe_loop(self) -> None:
        probe = protocol.Message(type=protocol.HEALTH, request_id=0,
                                 body=protocol.build_health())
        while True:
            await asyncio.gather(*(self._probe_shard(shard, probe)
                                   for shard in self._shards.values()))
            await asyncio.sleep(self.config.probe_interval)

    async def _probe_shard(self, shard: _Shard,
                           probe: protocol.Message) -> None:
        try:
            response = await self._shard_exchange(
                shard, probe, timeout=self.config.probe_timeout)
        except (OSError, ProtocolError, asyncio.TimeoutError):
            self.metrics.record_probe_failure(shard.shard_id)
            self._note_health(shard, ok=False)
            return
        if response.type == protocol.OK_HEALTH:
            try:
                status = protocol.parse_ok_health(response.body)
            except ProtocolError:
                self.metrics.record_probe_failure(shard.shard_id)
                self._note_health(shard, ok=False)
                return
            if status.state == protocol.HEALTH_DRAINING:
                self._note_draining(shard)
            else:
                self._note_health(shard, ok=True)
        else:
            # An ERROR answer still proves liveness (e.g. a pre-HEALTH
            # peer answering E_BAD_REQUEST); a draining shard answers
            # OK_HEALTH above, so anything framed counts as alive.
            self._note_health(shard, ok=True)

    def _note_health(self, shard: _Shard, ok: bool) -> None:
        before = shard.health.state
        if ok:
            shard.health.record_success()
        else:
            shard.health.record_failure()
        if shard.health.state != before:
            self.metrics.record_shard_state(shard.shard_id,
                                            shard.health.state)

    def _note_draining(self, shard: _Shard) -> None:
        before = shard.health.state
        shard.health.record_draining()
        if shard.health.state != before:
            self.metrics.record_shard_state(shard.shard_id,
                                            shard.health.state)

    def _note_breaker(self, shard: _Shard, ok: bool) -> None:
        before = shard.breaker.state
        if ok:
            shard.breaker.record_success()
        else:
            shard.breaker.record_failure()
        if shard.breaker.state != before:
            self.metrics.record_breaker_state(shard.shard_id,
                                              shard.breaker.state)
            self.metrics.record_breaker_transition(shard.shard_id,
                                                   shard.breaker.state)

    def _breaker_allows(self, shard: _Shard) -> bool:
        before = shard.breaker.state
        allowed = shard.breaker.allow()
        if shard.breaker.state != before:   # open -> half-open
            self.metrics.record_breaker_state(shard.shard_id,
                                              shard.breaker.state)
            self.metrics.record_breaker_transition(shard.shard_id,
                                                   shard.breaker.state)
        return allowed

    # -- client connections --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame_async(reader,
                                                     self.config.max_frame)
                except (ProtocolError, ReproError) as exc:
                    await self._send_error(writer, 0, protocol.E_BAD_REQUEST,
                                           str(exc))
                    return
                if message is None:
                    return
                started = time.perf_counter()
                self._active_requests += 1
                try:
                    with TRACER.span("cluster.route", type=message.type_name,
                                     request_id=message.request_id) as span:
                        response, hops = await self._route(message)
                        span.set_attr("response", response.type_name)
                        span.set_attr("hops", hops)
                finally:
                    self._active_requests -= 1
                writer.write(protocol.encode_frame(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
                self.metrics.record_request(
                    message.type_name, time.perf_counter() - started,
                    hops=hops)
                if response.type == protocol.ERROR:
                    code = response.body[0] if response.body else 0
                    self.metrics.record_error(
                        protocol.ERROR_NAMES.get(code, f"E_{code}"))
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send_error(self, writer: asyncio.StreamWriter,
                          request_id: int, code: int, message: str) -> None:
        self.metrics.record_error(protocol.ERROR_NAMES.get(code, f"E_{code}"))
        try:
            writer.write(protocol.encode_frame(protocol.Message(
                type=protocol.ERROR, request_id=request_id,
                body=protocol.build_error(code, message))))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- routing -------------------------------------------------------------

    async def _route(self, message: protocol.Message
                     ) -> Tuple[protocol.Message, int]:
        """Answer one client request; returns ``(response, shard_hops)``."""
        def error(code: int, text: str) -> protocol.Message:
            return protocol.Message(type=protocol.ERROR,
                                    request_id=message.request_id,
                                    body=protocol.build_error(code, text))

        if message.type in (protocol.HEALTH, protocol.STATS,
                            protocol.GET_METRICS):
            return await self._answer_locally(message), 0
        if message.type == protocol.PUT_CONTAINER:
            return await self._route_put(message)
        if message.type in (protocol.GET_META, protocol.GET_FUNCTION,
                            protocol.GET_BLOCK, protocol.GET_CONTAINER):
            if len(message.body) < protocol.CONTAINER_ID_BYTES:
                return error(protocol.E_BAD_REQUEST,
                             "request body shorter than a container id"), 0
            container_id = \
                message.body[:protocol.CONTAINER_ID_BYTES].hex()
            return await self._route_get(message, container_id)
        if message.type == protocol.GET_DELTA:
            if len(message.body) < 2 * protocol.CONTAINER_ID_BYTES:
                return error(protocol.E_BAD_REQUEST,
                             "GET_DELTA body shorter than two container ids"), 0
            target_id = message.body[:protocol.CONTAINER_ID_BYTES].hex()
            return await self._route_delta(message, target_id)
        return error(protocol.E_BAD_REQUEST,
                     f"unknown request type 0x{message.type:02x}"), 0

    async def _answer_locally(self, message: protocol.Message
                              ) -> protocol.Message:
        """HEALTH/STATS/GET_METRICS describe the router itself."""
        if message.type == protocol.HEALTH:
            body = protocol.build_ok_health(
                protocol.HEALTH_OK, self._active_requests,
                len(self.live_shards))
            return protocol.Message(type=protocol.OK_HEALTH,
                                    request_id=message.request_id, body=body)
        if message.type == protocol.STATS:
            snapshot = self.metrics.snapshot(shard_states=self.shard_states())
            snapshot["replication"] = self.replication
            snapshot["quorum"] = self.quorum
            body = protocol.build_ok_stats(
                json.dumps(snapshot, sort_keys=True).encode("utf-8"))
            return protocol.Message(type=protocol.OK_STATS,
                                    request_id=message.request_id, body=body)
        body = protocol.build_ok_metrics(
            self.metrics.expose_text().encode("utf-8"))
        return protocol.Message(type=protocol.OK_METRICS,
                                request_id=message.request_id, body=body)

    def _candidates(self, replicas: List[str]) -> List[_Shard]:
        """Replicas worth attempting right now, in ring order.

        Health filters out shards known dead or draining.  When the
        filter empties the list entirely, fall back to *all* replicas —
        stale health must never turn a recoverable request into
        E_UNAVAILABLE without at least one real attempt.  (The circuit
        breaker is consulted in :meth:`_attempt`, not here, so its
        half-open trial slot is only consumed by an attempt that
        actually happens and reports an outcome.)
        """
        shards = [self._shards[shard_id] for shard_id in replicas]
        routable = [s for s in shards if s.health.routable]
        return routable or shards

    async def _attempt(self, shard: _Shard,
                       message: protocol.Message) -> protocol.Message:
        """One shard attempt; raises :class:`_Unrouteable` for failover."""
        if not self._breaker_allows(shard):
            raise _Unrouteable(f"{shard.shard_id}: circuit breaker open")
        try:
            response = await self._shard_exchange(
                shard, message, timeout=self.config.attempt_timeout)
        except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
            self._note_health(shard, ok=False)
            self._note_breaker(shard, ok=False)
            raise _Unrouteable(f"{shard.shard_id}: {exc}") from exc
        self._note_breaker(shard, ok=True)
        if response.type == protocol.ERROR:
            try:
                code, text = protocol.parse_error(response.body)
            except ProtocolError:
                raise _Unrouteable(
                    f"{shard.shard_id}: unparseable ERROR frame") from None
            if code in protocol.RETRYABLE_ERROR_CODES:
                # The shard is alive but can't serve this now (draining,
                # saturated, deadline); a replica may.  E_UNAVAILABLE
                # from a drain also flips health so probes confirm it.
                if code == protocol.E_UNAVAILABLE:
                    self._note_draining(shard)
                raise _Unrouteable(
                    f"{shard.shard_id}: "
                    f"{protocol.ERROR_NAMES.get(code, code)}: {text}")
        return response

    def _backoff(self, round_index: int) -> float:
        ceiling = min(self.config.backoff_max,
                      self.config.backoff_base * (2 ** round_index))
        return self._rng.uniform(0.0, ceiling)

    async def _route_get(self, message: protocol.Message, container_id: str
                         ) -> Tuple[protocol.Message, int]:
        replicas = self.replicas_for(container_id)
        hops = 0
        last_reason = "no replica attempted"
        for round_index in range(self.config.route_rounds):
            if round_index:
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            for position, shard in enumerate(self._candidates(replicas)):
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable as exc:
                    last_reason = str(exc)
                    continue
                if shard.shard_id != replicas[0]:
                    # served by a non-primary replica — whether we tried
                    # the primary and failed, or probes already marked it
                    # unroutable, this request failed over
                    self.metrics.record_failover(shard.shard_id)
                return response, hops
        self.metrics.record_unavailable()
        body = protocol.build_error(
            protocol.E_UNAVAILABLE,
            f"no live replica for {container_id[:12]}… "
            f"(replicas {', '.join(replicas)}; last: {last_reason})")
        return protocol.Message(type=protocol.ERROR,
                                request_id=message.request_id,
                                body=body), hops

    async def _route_delta(self, message: protocol.Message, target_id: str
                           ) -> Tuple[protocol.Message, int]:
        """Route GET_DELTA across the target's replicas.

        Placement is by *target* id (that is where the patch can be
        synthesized), but replicas may disagree about holding the
        *base*: an ``E_NO_BASE`` answer fails over to the next replica,
        which may hold both containers.  Only when a full round of live
        replicas answers ``E_NO_BASE`` is it returned to the client —
        the definitive "fall back to a full transfer" signal.
        """
        replicas = self.replicas_for(target_id)
        hops = 0
        last_reason = "no replica attempted"
        for round_index in range(self.config.route_rounds):
            if round_index:
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            no_base: Optional[protocol.Message] = None
            for shard in self._candidates(replicas):
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable as exc:
                    last_reason = str(exc)
                    continue
                if response.type == protocol.ERROR:
                    try:
                        code, _text = protocol.parse_error(response.body)
                    except ProtocolError:
                        code = 0
                    if code == protocol.E_NO_BASE:
                        no_base = response
                        last_reason = f"{shard.shard_id}: E_NO_BASE"
                        self.metrics.record_failover(shard.shard_id)
                        continue
                if shard.shard_id != replicas[0]:
                    self.metrics.record_failover(shard.shard_id)
                return response, hops
            if no_base is not None:
                return no_base, hops
        self.metrics.record_unavailable()
        body = protocol.build_error(
            protocol.E_UNAVAILABLE,
            f"no live replica for {target_id[:12]}… "
            f"(replicas {', '.join(replicas)}; last: {last_reason})")
        return protocol.Message(type=protocol.ERROR,
                                request_id=message.request_id,
                                body=body), hops

    async def _route_put(self, message: protocol.Message
                         ) -> Tuple[protocol.Message, int]:
        def error(code: int, text: str) -> protocol.Message:
            return protocol.Message(type=protocol.ERROR,
                                    request_id=message.request_id,
                                    body=protocol.build_error(code, text))

        try:
            data = protocol.parse_put(message.body)
        except (ProtocolError, ReproError, ValueError) as exc:
            return error(protocol.E_BAD_REQUEST, str(exc)), 0
        container_id = container_id_of(data)
        replicas = self.replicas_for(container_id)
        hops = 0
        success: Optional[protocol.Message] = None
        definitive: Optional[protocol.Message] = None
        failed: List[str] = []
        for round_index in range(self.config.route_rounds):
            if round_index:
                if not failed:
                    break
                self.metrics.record_retry()
                await asyncio.sleep(self._backoff(round_index - 1))
            pending = failed if round_index else list(replicas)
            failed = []
            for shard_id in pending:
                shard = self._shards[shard_id]
                hops += 1
                try:
                    response = await self._attempt(shard, message)
                except _Unrouteable:
                    if hops > 1:
                        self.metrics.record_failover(shard_id)
                    failed.append(shard_id)
                    continue
                if response.type == protocol.ERROR:
                    # definitive (non-retryable) shard verdict, e.g.
                    # E_CORRUPT from verify-gated admission
                    definitive = response
                else:
                    success = response
            if definitive is not None or (success is not None and not failed):
                break
        if definitive is not None:
            return definitive, hops
        if success is not None:
            # At least one replica admitted the container; stragglers
            # will be re-replicated by a future PUT replay (puts are
            # idempotent: the store is content-addressed).
            return success, hops
        self.metrics.record_unavailable()
        return error(protocol.E_UNAVAILABLE,
                     f"no replica of {container_id[:12]}… accepted the "
                     f"container (replicas {', '.join(replicas)})"), hops


# -- running a router from synchronous code ----------------------------------

class RouterHandle:
    """A router running on a daemon thread; mirrors ``ServerHandle``."""

    def __init__(self, router: ClusterRouter, loop: asyncio.AbstractEventLoop,
                 stop_event: asyncio.Event, thread) -> None:
        self.router = router
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.router.config.host, self.router.port)

    @property
    def metrics(self) -> RouterMetrics:
        return self.router.metrics

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def update_address(self, shard_id: str, host: str, port: int) -> None:
        """Thread-safe re-point of a restarted shard."""
        self._loop.call_soon_threadsafe(
            self.router.update_address, shard_id, host, port)

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def router_in_thread(shards: Dict[str, Tuple[str, int]],
                     config: Optional[RouterConfig] = None,
                     startup_timeout: float = 10.0) -> RouterHandle:
    """Start a :class:`ClusterRouter` on a background thread."""
    import threading

    router = ClusterRouter(shards, config=config)
    ready = threading.Event()
    startup_error: list = []
    boxes: dict = {}

    def runner() -> None:
        async def main() -> None:
            stop_event = asyncio.Event()
            try:
                await router.start()
            except Exception as exc:  # noqa: BLE001 - reported to caller
                startup_error.append(exc)
                ready.set()
                return
            boxes["loop"] = asyncio.get_running_loop()
            boxes["stop"] = stop_event
            ready.set()
            try:
                await stop_event.wait()
            finally:
                await router.stop()

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="ssd-router", daemon=True)
    thread.start()
    if not ready.wait(startup_timeout):
        raise RuntimeError(f"router failed to start within {startup_timeout}s")
    if startup_error:
        raise startup_error[0]
    return RouterHandle(router, boxes["loop"], boxes["stop"], thread)


__all__ = [
    "ClusterRouter",
    "DEFAULT_ATTEMPT_TIMEOUT",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_PROBE_TIMEOUT",
    "DEFAULT_ROUTE_ROUNDS",
    "RouterConfig",
    "RouterHandle",
    "router_in_thread",
]
