"""Synchronous client for the SSD code server, plus :class:`RemoteProgram`.

:class:`ServeClient` is a one-connection blocking client: each request
writes one frame and reads one response frame (the server pipelines
across connections, not within one).  Server-reported failures raise
:class:`repro.errors.RemoteError` with the wire error code; transport
and framing failures raise :class:`repro.errors.ProtocolError` or the
underlying ``OSError``.

:class:`RemoteProgram` is the network analogue of
:class:`repro.core.lazy.LazyProgram`: it duck-types a
:class:`~repro.isa.Program` for the interpreter while paging functions
from the server on first call — run a container you never downloaded::

    with ServeClient(host, port) as client:
        program = RemoteProgram(client, container_id)
        result = run_program(program)
        program.decompressed_count     # functions actually fetched
"""

from __future__ import annotations

import json
import socket
import threading
from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple, Union

from ..errors import ProtocolError, RemoteError
from ..isa import Function, Instruction
from . import protocol

#: default client-side socket timeout (seconds)
DEFAULT_TIMEOUT = 30.0


@dataclass(frozen=True)
class ContainerMeta:
    """What GET_META returns: enough to build a RemoteProgram."""

    container_id: str
    program_name: str
    entry: int
    function_names: List[str]
    #: registry id of the codec that decodes this container server-side
    codec_id: str = "ssd"

    @property
    def function_count(self) -> int:
        return len(self.function_names)


class ServeClient:
    """Blocking request/response client over one TCP connection."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_TIMEOUT,
                 max_frame: int = protocol.MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")
        self._next_request_id = 1
        # One request/response exchange at a time per connection; the
        # lock lets many threads share a client (RemoteProgram under a
        # threaded interpreter host, the load tests).
        self._lock = threading.Lock()

    # -- plumbing -----------------------------------------------------------

    def _request(self, mtype: int, body: bytes) -> protocol.Message:
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            frame = protocol.encode_frame(protocol.Message(
                type=mtype, request_id=request_id, body=body))
            self._stream.write(frame)
            self._stream.flush()
            response = protocol.read_frame(self._stream, self.max_frame)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.request_id != request_id:
            raise ProtocolError(
                f"response id {response.request_id} does not match "
                f"request id {request_id}")
        if response.type == protocol.ERROR:
            code, message = protocol.parse_error(response.body)
            raise RemoteError(message, code=code,
                              code_name=protocol.ERROR_NAMES.get(code, ""))
        return response

    def _expect(self, mtype: int, body: bytes,
                expected: int) -> protocol.Message:
        response = self._request(mtype, body)
        if response.type != expected:
            raise ProtocolError(
                f"expected {protocol.TYPE_NAMES[expected]}, "
                f"server sent {response.type_name}")
        return response

    # -- the request surface -------------------------------------------------

    def put(self, container: bytes) -> Tuple[str, int, int]:
        """Upload a container; returns ``(container_id, function_count, entry)``."""
        response = self._expect(protocol.PUT_CONTAINER,
                                protocol.build_put(container),
                                protocol.OK_PUT)
        return protocol.parse_ok_put(response.body)

    def meta(self, container_id: str) -> ContainerMeta:
        response = self._expect(protocol.GET_META,
                                protocol.build_get_meta(container_id),
                                protocol.OK_META)
        name, entry, function_names, codec_id = protocol.parse_ok_meta(
            response.body)
        return ContainerMeta(container_id=container_id, program_name=name,
                             entry=entry, function_names=function_names,
                             codec_id=codec_id)

    def function(self, container_id: str, findex: int) -> Function:
        """Fetch one fully-decoded function."""
        response = self._expect(
            protocol.GET_FUNCTION,
            protocol.build_get_function(container_id, findex),
            protocol.OK_FUNCTION)
        return protocol.parse_ok_function(response.body)

    def block(self, container_id: str, findex: int, start: int,
              count: int) -> Tuple[int, List[Instruction]]:
        """Fetch ``count`` instructions of a function starting at ``start``.

        Returns ``(total_instruction_count, instructions)`` — the total
        lets callers know when a streaming fetch is complete.
        """
        response = self._expect(
            protocol.GET_BLOCK,
            protocol.build_get_block(container_id, findex, start, count),
            protocol.OK_BLOCK)
        _, _, total, insns = protocol.parse_ok_block(response.body)
        return total, insns

    def iter_blocks(self, container_id: str, findex: int,
                    block_size: int = 64) -> Iterator[List[Instruction]]:
        """Stream a function block-by-block (GET_BLOCK until exhausted)."""
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        start = 0
        while True:
            total, insns = self.block(container_id, findex, start, block_size)
            if insns:
                yield insns
            start += len(insns)
            if start >= total or not insns:
                return

    def stats(self) -> dict:
        """Fetch the server's metrics snapshot (the STATS request)."""
        response = self._expect(protocol.STATS, b"", protocol.OK_STATS)
        try:
            return json.loads(protocol.parse_ok_stats(response.body))
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"STATS payload is not JSON: {exc}") from exc

    def metrics_text(self) -> str:
        """Fetch the server's Prometheus text exposition (GET_METRICS)."""
        response = self._expect(protocol.GET_METRICS, b"",
                                protocol.OK_METRICS)
        return protocol.parse_ok_metrics(response.body).decode("utf-8")

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RemoteFunctionList:
    """Sequence facade paging functions over the wire on first access."""

    def __init__(self, client: ServeClient, meta: ContainerMeta) -> None:
        self._client = client
        self._meta = meta
        self._cache: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._meta.function_count

    def __getitem__(self, findex: int) -> Function:
        if isinstance(findex, slice):
            raise TypeError("remote function lists do not support slicing")
        if findex < 0:
            findex += len(self)
        if not 0 <= findex < len(self):
            raise IndexError(f"function index {findex} out of range")
        function = self._cache.get(findex)
        if function is None:
            fetched = self._client.function(self._meta.container_id, findex)
            with self._lock:
                function = self._cache.setdefault(findex, fetched)
        return function

    def __iter__(self) -> Iterator[Function]:
        for findex in range(len(self)):
            yield self[findex]

    @property
    def materialized(self) -> Set[int]:
        with self._lock:
            return set(self._cache)


class RemoteProgram:
    """A Program-shaped view of a container living on a server.

    Duck-types what the interpreter uses (``name``, ``entry``, indexable
    ``functions``); each function travels over the wire on first call
    and is cached client-side.  The same measurability surface as
    :class:`~repro.core.lazy.LazyProgram` (``decompressed_count``,
    ``decompressed_fraction``, ``prefetch``) applies to *fetched*
    functions.
    """

    def __init__(self, client: ServeClient,
                 container: Union[str, bytes]) -> None:
        if isinstance(container, bytes):
            container_id, _, _ = client.put(container)
        else:
            container_id = container
        self._client = client
        self.container_id = container_id
        self._meta = client.meta(container_id)
        self.name = self._meta.program_name
        self.entry = self._meta.entry
        self.functions = _RemoteFunctionList(client, self._meta)

    @property
    def meta(self) -> ContainerMeta:
        return self._meta

    @property
    def decompressed_count(self) -> int:
        """Functions fetched from the server so far."""
        return len(self.functions.materialized)

    @property
    def decompressed_functions(self) -> Set[int]:
        return self.functions.materialized

    @property
    def decompressed_fraction(self) -> float:
        total = len(self.functions)
        return self.decompressed_count / total if total else 0.0

    def prefetch(self, indices) -> None:
        """Eagerly fetch selected functions (startup sets)."""
        for findex in indices:
            self.functions[findex]  # noqa: B018 - fetching side effect


def remote_program(host: str, port: int,
                   container: Union[str, bytes],
                   timeout: float = DEFAULT_TIMEOUT
                   ) -> Tuple[RemoteProgram, ServeClient]:
    """One call: connect and wrap a served container as a RemoteProgram.

    Returns ``(program, client)``; the caller owns closing the client.
    """
    client = ServeClient(host, port, timeout=timeout)
    try:
        return RemoteProgram(client, container), client
    except Exception:
        client.close()
        raise


__all__ = [
    "ContainerMeta",
    "DEFAULT_TIMEOUT",
    "RemoteProgram",
    "ServeClient",
    "remote_program",
]
