"""Synchronous client for the SSD code server, plus :class:`RemoteProgram`.

:class:`ServeClient` is a one-connection blocking client: each request
writes one frame and reads one response frame (the server pipelines
across connections, not within one).  Server-reported failures raise
:class:`repro.errors.RemoteError` with the wire error code; transport
and framing failures raise :class:`repro.errors.ProtocolError` or the
underlying ``OSError``.

Two robustness layers sit between a request and the socket:

* **Per-op deadlines** (:class:`OpDeadlines`) — a ``STATS`` probe should
  give up in seconds while a large ``PUT_CONTAINER`` may take tens; the
  old single 30 s timeout treated both the same.
* **Opt-in retries** (:class:`RetryPolicy`) — ``retries=N`` retries
  idempotent requests on ``E_BUSY``/``E_TIMEOUT``/``E_UNAVAILABLE``
  error frames and on transport failures (connection reset, timeout,
  lost framing), reconnecting first and sleeping exponential backoff
  with full jitter between attempts.  ``PUT_CONTAINER`` is retried too:
  the store is content-addressed, so re-putting identical bytes is a
  no-op server-side.

:class:`RemoteProgram` is the network analogue of
:class:`repro.core.lazy.LazyProgram`: it duck-types a
:class:`~repro.isa.Program` for the interpreter while paging functions
from the server on first call — run a container you never downloaded::

    with ServeClient(host, port, retries=3) as client:
        program = RemoteProgram(client, container_id)
        result = run_program(program)
        program.decompressed_count     # functions actually fetched

When the connection drops *between* function pages (a shard died, a
router failed over), ``RemoteProgram`` reconnects and resumes instead of
leaking the dead socket: already-fetched functions stay cached, only
the in-flight page is re-requested.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Callable, Iterator, List, Optional, Set,
                    Tuple, Union)

from ..errors import ProtocolError, RemoteError, UnavailableError
from ..isa import Function, Instruction
from . import protocol

if TYPE_CHECKING:  # late imports at runtime: serve must not drag in core
    from ..core.hints import ProfileHints
    from ..profile.markov import MarkovPredictor

#: legacy single client-side socket timeout (seconds); still accepted as
#: ``ServeClient(..., timeout=...)`` and applied uniformly to every op
DEFAULT_TIMEOUT = 30.0


@dataclass(frozen=True)
class OpDeadlines:
    """Per-operation socket deadlines (seconds).

    Replaces the old one-size-fits-all ``DEFAULT_TIMEOUT``: an upload of
    a multi-megabyte container legitimately takes longer than a health
    probe should ever be allowed to block a failover decision.
    """

    connect: float = 5.0
    put: float = 30.0
    meta: float = 10.0
    function: float = 15.0
    block: float = 15.0
    stats: float = 10.0
    metrics: float = 10.0
    health: float = 2.0
    container: float = 30.0
    delta: float = 30.0

    def for_op(self, op: str) -> float:
        return float(getattr(self, op))

    @classmethod
    def uniform(cls, timeout: float) -> "OpDeadlines":
        """Every op under one deadline (the legacy ``timeout=`` shape)."""
        return cls(connect=timeout, put=timeout, meta=timeout,
                   function=timeout, block=timeout, stats=timeout,
                   metrics=timeout, health=min(timeout, 2.0),
                   container=timeout, delta=timeout)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter for idempotent requests.

    ``delay(attempt)`` draws uniformly from ``[0, min(max_delay,
    base_delay * 2**attempt)]`` — "full jitter", which decorrelates a
    thundering herd of clients retrying a recovering shard.  ``seed``
    pins the jitter for deterministic tests; production callers leave it
    ``None``.
    """

    retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    retry_codes: frozenset = protocol.RETRYABLE_ERROR_CODES
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return (rng or random).uniform(0.0, ceiling)

    def should_retry_code(self, code: int) -> bool:
        return code in self.retry_codes


#: policy meaning "never retry" (the default, matching historical behavior)
NO_RETRY = RetryPolicy(retries=0)


@dataclass(frozen=True)
class ContainerMeta:
    """What GET_META returns: enough to build a RemoteProgram."""

    container_id: str
    program_name: str
    entry: int
    function_names: List[str] = field(default_factory=list)
    #: registry id of the codec that decodes this container server-side
    codec_id: str = "ssd"
    #: the codec's v3-envelope byte (1=ssd, 2=brisc, 3=lz77-raw, 4=ssd-delta)
    codec_wire_id: int = 1
    #: container format version of the stored bytes (1, 2, or 3)
    container_version: int = 2

    @property
    def function_count(self) -> int:
        return len(self.function_names)


class ServeClient:
    """Blocking request/response client over one TCP connection."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 deadlines: Optional[OpDeadlines] = None,
                 retries: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 fallback: Optional[List[Tuple[str, int]]] = None) -> None:
        if deadlines is None:
            deadlines = (OpDeadlines.uniform(timeout) if timeout is not None
                         else OpDeadlines())
        if retry_policy is None:
            retry_policy = (replace(NO_RETRY, retries=retries)
                            if retries else NO_RETRY)
        elif retries is not None and retries != retry_policy.retries:
            retry_policy = replace(retry_policy, retries=retries)
        self.host = host
        self.port = port
        # Every address the service answers on (multi-router clusters);
        # connects rotate through them, so one dead front-end costs a
        # reconnect, not the client.
        self._addresses: List[Tuple[str, int]] = [(host, port)]
        for address in fallback or []:
            if tuple(address) not in self._addresses:
                self._addresses.append(tuple(address))
        self._address_index = 0
        self.max_frame = max_frame
        self.deadlines = deadlines
        self.retry_policy = retry_policy
        #: attempts beyond the first, across the client's lifetime
        self.retry_count = 0
        #: successful reconnects across the client's lifetime
        self.reconnect_count = 0
        self._rng = random.Random(retry_policy.seed)
        self._next_request_id = 1
        # One request/response exchange at a time per connection; the
        # RLock lets many threads share a client (RemoteProgram under a
        # threaded interpreter host, the load tests) and lets the retry
        # loop reconnect while already holding it.
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._stream = None
        self._connect()

    # -- connection management ----------------------------------------------

    def _connect(self) -> None:
        last_exc: Optional[OSError] = None
        for offset in range(len(self._addresses)):
            index = (self._address_index + offset) % len(self._addresses)
            host, port = self._addresses[index]
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.deadlines.connect)
            except OSError as exc:
                last_exc = exc
                continue
            self._sock = sock
            self._stream = sock.makefile("rwb")
            self._address_index = index
            self.host, self.port = host, port
            return
        assert last_exc is not None
        raise last_exc

    def _close_socket(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def reconnect(self) -> None:
        """Drop the current connection and dial a fresh one.

        Safe to call on a dead socket; raises ``OSError`` only when the
        new connection cannot be established.
        """
        with self._lock:
            self._close_socket()
            self._connect()
            self.reconnect_count += 1

    # -- plumbing -----------------------------------------------------------

    def _exchange(self, mtype: int, body: bytes,
                  deadline: float) -> protocol.Message:
        """One framed request/response over the live connection."""
        if self._sock is None or self._stream is None:
            raise ProtocolError("client is closed")
        request_id = self._next_request_id
        self._next_request_id += 1
        self._sock.settimeout(deadline)
        frame = protocol.encode_frame(protocol.Message(
            type=mtype, request_id=request_id, body=body))
        self._stream.write(frame)
        self._stream.flush()
        response = protocol.read_frame(self._stream, self.max_frame)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.request_id != request_id:
            raise ProtocolError(
                f"response id {response.request_id} does not match "
                f"request id {request_id}")
        if response.type == protocol.ERROR:
            code, message = protocol.parse_error(response.body)
            raise RemoteError(message, code=code,
                              code_name=protocol.ERROR_NAMES.get(code, ""))
        return response

    def _request(self, mtype: int, body: bytes,
                 op: str = "function",
                 idempotent: bool = True) -> protocol.Message:
        """Retry-aware exchange under the per-op deadline.

        Retries only idempotent requests, and only on retryable error
        frames (``E_BUSY``/``E_TIMEOUT``/``E_UNAVAILABLE``) or transport
        failures — a transport failure reconnects first, since the old
        connection's framing is unrecoverable.
        """
        policy = self.retry_policy
        attempts = policy.retries + 1 if idempotent else 1
        deadline = self.deadlines.for_op(op)
        last_exc: Optional[BaseException] = None
        with self._lock:
            for attempt in range(attempts):
                if attempt:
                    time.sleep(policy.delay(attempt - 1, self._rng))
                    self.retry_count += 1
                try:
                    return self._exchange(mtype, body, deadline)
                except RemoteError as exc:
                    if (attempt + 1 < attempts
                            and policy.should_retry_code(exc.code)):
                        last_exc = exc
                        continue
                    raise
                except (ProtocolError, OSError) as exc:
                    last_exc = exc
                    if attempts == 1:
                        raise
                    # The connection is gone or its framing is lost;
                    # a fresh dial is a precondition for any retry.
                    try:
                        self.reconnect()
                    except OSError as reconnect_exc:
                        last_exc = reconnect_exc
        assert last_exc is not None
        raise UnavailableError(
            f"{protocol.TYPE_NAMES.get(mtype, mtype)} to "
            f"{self.host}:{self.port} kept failing: {last_exc}",
            attempts=attempts) from last_exc

    def _expect(self, mtype: int, body: bytes, expected: int,
                op: str = "function",
                idempotent: bool = True) -> protocol.Message:
        response = self._request(mtype, body, op=op, idempotent=idempotent)
        if response.type != expected:
            raise ProtocolError(
                f"expected {protocol.TYPE_NAMES[expected]}, "
                f"server sent {response.type_name}")
        return response

    # -- the request surface -------------------------------------------------

    def put(self, container: bytes) -> Tuple[str, int, int]:
        """Upload a container; returns ``(container_id, function_count, entry)``.

        Idempotent despite being a write: the store is content-addressed,
        so a retried PUT of the same bytes lands on the same id.
        """
        response = self._expect(protocol.PUT_CONTAINER,
                                protocol.build_put(container),
                                protocol.OK_PUT, op="put")
        return protocol.parse_ok_put(response.body)

    def meta(self, container_id: str) -> ContainerMeta:
        response = self._expect(protocol.GET_META,
                                protocol.build_get_meta(container_id),
                                protocol.OK_META, op="meta")
        (name, entry, function_names, codec_id, codec_wire_id,
         container_version) = protocol.parse_ok_meta(response.body)
        return ContainerMeta(container_id=container_id, program_name=name,
                             entry=entry, function_names=function_names,
                             codec_id=codec_id, codec_wire_id=codec_wire_id,
                             container_version=container_version)

    def function(self, container_id: str, findex: int) -> Function:
        """Fetch one fully-decoded function."""
        response = self._expect(
            protocol.GET_FUNCTION,
            protocol.build_get_function(container_id, findex),
            protocol.OK_FUNCTION, op="function")
        return protocol.parse_ok_function(response.body)

    def block(self, container_id: str, findex: int, start: int,
              count: int) -> Tuple[int, List[Instruction]]:
        """Fetch ``count`` instructions of a function starting at ``start``.

        Returns ``(total_instruction_count, instructions)`` — the total
        lets callers know when a streaming fetch is complete.
        """
        response = self._expect(
            protocol.GET_BLOCK,
            protocol.build_get_block(container_id, findex, start, count),
            protocol.OK_BLOCK, op="block")
        _, _, total, insns = protocol.parse_ok_block(response.body)
        return total, insns

    def iter_blocks(self, container_id: str, findex: int,
                    block_size: int = 64) -> Iterator[List[Instruction]]:
        """Stream a function block-by-block (GET_BLOCK until exhausted)."""
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        start = 0
        while True:
            total, insns = self.block(container_id, findex, start, block_size)
            if insns:
                yield insns
            start += len(insns)
            if start >= total or not insns:
                return

    def get_container(self, container_id: str) -> bytes:
        """Fetch a stored container's full bytes (GET_CONTAINER).

        The returned bytes are verified against the content address
        before being handed back — a server cannot substitute a
        different container.
        """
        response = self._expect(protocol.GET_CONTAINER,
                                protocol.build_get_container(container_id),
                                protocol.OK_CONTAINER, op="container")
        data = protocol.parse_ok_container(response.body)
        got = hashlib.sha256(data).hexdigest()
        if got != container_id:
            raise ProtocolError(
                f"OK_CONTAINER bytes hash to {got[:12]}…, "
                f"not the requested {container_id[:12]}…")
        return data

    def get_delta(self, target_id: str, base_id: str) -> bytes:
        """Fetch a patch turning ``base_id``'s bytes into ``target_id``'s.

        Raises :class:`~repro.errors.RemoteError` with code ``E_NO_BASE``
        when the server does not hold the base — callers negotiate down
        to :meth:`get_container` (which :meth:`update_container` does
        automatically).
        """
        response = self._expect(protocol.GET_DELTA,
                                protocol.build_get_delta(target_id, base_id),
                                protocol.OK_DELTA, op="delta")
        return protocol.parse_ok_delta(response.body)

    def update_container(self, base: bytes, target_id: str,
                         ) -> Tuple[bytes, bool]:
        """The code-update path: fetch ``target_id`` as a delta off ``base``.

        Returns ``(container_bytes, delta_used)``.  The patch is applied
        with full verification (base hash checked before reconstruction,
        target hash after), and the result is additionally checked
        against the requested content address — so a corrupt or lying
        patch can never hand back a wrong container.  Any delta-path
        failure (server lacks the base, patch corrupt in flight, local
        base mismatch) falls back to a verified full transfer; only the
        fetch of the target itself can fail the call.
        """
        from ..delta import BYTES_SAVED, FALLBACKS, PATCH_BYTES, apply_patch
        from ..errors import CorruptContainer
        base_id = hashlib.sha256(base).hexdigest()
        if base_id == target_id:
            return base, True
        reason: Optional[str] = None
        try:
            patch = self.get_delta(target_id, base_id)
        except RemoteError as exc:
            if exc.code != protocol.E_NO_BASE:
                raise
            reason = "no_base"
        else:
            try:
                target = apply_patch(base, patch)
                if hashlib.sha256(target).hexdigest() != target_id:
                    raise CorruptContainer(
                        "patch reconstructed a container that is not "
                        f"{target_id[:12]}…")
            except CorruptContainer:
                reason = "bad_patch"
            else:
                PATCH_BYTES.observe(float(len(patch)))
                BYTES_SAVED.inc(max(0, len(target) - len(patch)))
                return target, True
        FALLBACKS.inc(reason=reason)
        return self.get_container(target_id), False

    def stats(self) -> dict:
        """Fetch the server's metrics snapshot (the STATS request)."""
        response = self._expect(protocol.STATS, b"", protocol.OK_STATS,
                                op="stats")
        try:
            return json.loads(protocol.parse_ok_stats(response.body))
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"STATS payload is not JSON: {exc}") from exc

    def metrics_text(self) -> str:
        """Fetch the server's Prometheus text exposition (GET_METRICS)."""
        response = self._expect(protocol.GET_METRICS, b"",
                                protocol.OK_METRICS, op="metrics")
        return protocol.parse_ok_metrics(response.body).decode("utf-8")

    def health(self) -> protocol.HealthStatus:
        """Probe the server's HEALTH endpoint (never retried: a health
        probe that needs retries IS the answer)."""
        response = self._expect(protocol.HEALTH, protocol.build_health(),
                                protocol.OK_HEALTH, op="health",
                                idempotent=False)
        return protocol.parse_ok_health(response.body)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._close_socket()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RemoteFunctionList:
    """Sequence facade paging functions over the wire on first access."""

    def __init__(self, client: ServeClient, meta: ContainerMeta,
                 on_access: Optional[Callable[[int], None]] = None) -> None:
        self._client = client
        self._meta = meta
        self._cache: dict = {}
        self._lock = threading.Lock()
        self._on_access = on_access

    def __len__(self) -> int:
        return self._meta.function_count

    def _fetch(self, findex: int) -> Function:
        """Page one function, reconnecting once if the connection died.

        A connection that drops *between* pages used to leak the dead
        socket and surface as a raw ``OSError`` mid-run; instead, dial
        again and re-request — everything already fetched stays cached,
        so resume costs exactly one page.
        """
        try:
            return self._client.function(self._meta.container_id, findex)
        except (OSError, ProtocolError):
            self._client.reconnect()
            return self._client.function(self._meta.container_id, findex)

    def __getitem__(self, findex: int) -> Function:
        if isinstance(findex, slice):
            raise TypeError("remote function lists do not support slicing")
        if findex < 0:
            findex += len(self)
        if not 0 <= findex < len(self):
            raise IndexError(f"function index {findex} out of range")
        function = self._cache.get(findex)
        if function is None:
            fetched = self._fetch(findex)
            with self._lock:
                function = self._cache.setdefault(findex, fetched)
        if self._on_access is not None:
            self._on_access(findex)
        return function

    def __iter__(self) -> Iterator[Function]:
        for findex in range(len(self)):
            yield self[findex]

    @property
    def materialized(self) -> Set[int]:
        with self._lock:
            return set(self._cache)


class RemoteProgram:
    """A Program-shaped view of a container living on a server.

    Duck-types what the interpreter uses (``name``, ``entry``, indexable
    ``functions``); each function travels over the wire on first call
    and is cached client-side.  The same measurability surface as
    :class:`~repro.core.lazy.LazyProgram` (``decompressed_count``,
    ``decompressed_fraction``, ``prefetch``) applies to *fetched*
    functions.  Connection drops between pages reconnect-and-resume.
    """

    def __init__(self, client: ServeClient,
                 container: Union[str, bytes],
                 predictor: Optional["MarkovPredictor"] = None) -> None:
        #: profile hints recovered from the container bytes (only
        #: available when the caller uploads bytes — for an id-only
        #: program the hints live server-side, where the server's own
        #: prefetcher consumes them)
        self.hints: Optional["ProfileHints"] = None
        if isinstance(container, bytes):
            container_id, _, _ = client.put(container)
            self.hints = _hints_from_container(container)
        else:
            container_id = container
        self._client = client
        self.container_id = container_id
        self._meta = client.meta(container_id)
        self.name = self._meta.program_name
        self.entry = self._meta.entry
        #: optional next-function predictor, same surface as
        #: :class:`~repro.core.lazy.LazyProgram`: seeded from the
        #: container's profile hints, fed every first-touch transition
        self.predictor = predictor
        self._last_access: Optional[int] = None
        self.functions = _RemoteFunctionList(
            client, self._meta,
            on_access=self._note_access if predictor is not None else None)
        if predictor is not None and self.hints is not None:
            predictor.seed(self.hints.edges)

    @property
    def meta(self) -> ContainerMeta:
        return self._meta

    @property
    def decompressed_count(self) -> int:
        """Functions fetched from the server so far."""
        return len(self.functions.materialized)

    @property
    def decompressed_functions(self) -> Set[int]:
        return self.functions.materialized

    @property
    def decompressed_fraction(self) -> float:
        total = len(self.functions)
        return self.decompressed_count / total if total else 0.0

    def prefetch(self, indices) -> None:
        """Eagerly fetch selected functions (startup sets)."""
        for findex in indices:
            self.functions[findex]  # noqa: B018 - fetching side effect

    def _note_access(self, findex: int) -> None:
        if self.predictor is not None and self._last_access is not None:
            self.predictor.observe(self._last_access, findex)
        self._last_access = findex

    def prefetch_hot(self, limit: Optional[int] = None) -> int:
        """Fetch the container's hinted hot set (hottest first); returns
        how many functions travelled.  No hints — no-op."""
        from ..profile.markov import record_client_fetches  # late: no cycle

        if self.hints is None:
            return 0
        hot = [f for f in self.hints.hot if 0 <= f < len(self.functions)]
        if limit is not None:
            hot = hot[:limit]
        fresh = [f for f in hot if f not in self.functions.materialized]
        self.prefetch(fresh)
        record_client_fetches(len(fresh))
        return len(fresh)

    def prefetch_predicted(self, findex: Optional[int] = None,
                           depth: int = 2) -> int:
        """Fetch the predicted successors of ``findex`` (default: the
        most recent access); returns how many travelled."""
        from ..profile.markov import record_client_fetches  # late: no cycle

        if self.predictor is None:
            return 0
        src = self._last_access if findex is None else findex
        if src is None:
            return 0
        fresh = [f for f in self.predictor.predict(src, depth)
                 if isinstance(f, int) and 0 <= f < len(self.functions)
                 and f not in self.functions.materialized]
        self.prefetch(fresh)
        record_client_fetches(len(fresh))
        return len(fresh)


def _hints_from_container(data: bytes) -> Optional["ProfileHints"]:
    """Best-effort profile-hint extraction from container bytes.

    Hints are advisory, so *any* failure — foreign codec, corrupt blob,
    plain container — degrades to ``None`` rather than failing the
    program construction.
    """
    from ..core import container as core_container  # late: no cycle
    from ..core.hints import decode_hints
    from ..errors import ReproError

    try:
        sections = core_container.parse(data)
        blob = sections.profile_hints_blob
        if not blob:
            return None
        decoded = decode_hints(blob)
    except (ReproError, ValueError, EOFError):
        return None
    return decoded if decoded else None


def remote_program(host: str, port: int,
                   container: Union[str, bytes],
                   timeout: Optional[float] = None,
                   retries: Optional[int] = None
                   ) -> Tuple[RemoteProgram, ServeClient]:
    """One call: connect and wrap a served container as a RemoteProgram.

    Returns ``(program, client)``; the caller owns closing the client.
    """
    client = ServeClient(host, port, timeout=timeout, retries=retries)
    try:
        return RemoteProgram(client, container), client
    except Exception:
        client.close()
        raise


__all__ = [
    "ContainerMeta",
    "DEFAULT_TIMEOUT",
    "NO_RETRY",
    "OpDeadlines",
    "RemoteProgram",
    "RetryPolicy",
    "ServeClient",
    "remote_program",
]
