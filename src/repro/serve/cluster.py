"""In-process cluster topology: N shard servers behind one router.

:class:`LocalCluster` runs every shard as an :class:`SSDServer` on its
own daemon thread (``serve_in_thread``) plus one :class:`ClusterRouter`
front-end, all inside the current process — the shape tests, the chaos
harness, and benchmarks drive.  Each shard keeps its *own*
:class:`ContainerStore` instance that survives the shard's process
(thread) dying: the store models the shard's disk, so
``restart_shard`` brings the same data back on a new port, exactly like
a crashed machine rejoining.

Fault verbs mirror what production infrastructure does to you:

* :meth:`kill_shard`    — SIGKILL: connections reset mid-frame, no drain
* :meth:`drain_shard`   — SIGTERM: finish in-flight work, refuse new
  frames, router routes around (the graceful path)
* :meth:`restart_shard` — the machine comes back; the router learns the
  new address and the ring placement is unchanged (same shard id)

The multi-process deployment (``ssd cluster start``) wires the same
router around real subprocess shards; see ``repro.tools``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from .client import RetryPolicy, ServeClient
from .router import RouterConfig, RouterHandle, router_in_thread
from .server import ServerConfig, ServerHandle, serve_in_thread
from .store import ContainerStore

#: default shard count for a local cluster
DEFAULT_SHARDS = 3
#: default replication factor
DEFAULT_REPLICATION = 2


@dataclass(frozen=True)
class ShardSpec:
    """Where one shard lives (id is stable; the port may change)."""

    shard_id: str
    host: str
    port: int


@dataclass
class ClusterConfig:
    """Topology knobs for one :class:`LocalCluster`."""

    shards: int = DEFAULT_SHARDS
    replication: int = DEFAULT_REPLICATION
    host: str = "127.0.0.1"
    router: Optional[RouterConfig] = None
    server: Optional[ServerConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if not 1 <= self.replication <= self.shards:
            raise ValueError(
                f"replication {self.replication} must be in "
                f"[1, {self.shards}] for a {self.shards}-shard cluster")

    @property
    def quorum(self) -> int:
        """Live shards guaranteeing every key keeps >= 1 live replica.

        A key becomes unavailable only when *all* of its ``replication``
        placement shards are dead, so with ``shards - replication``
        failures every key still has a replica; one more failure can
        take a key's last copy.
        """
        return self.shards - self.replication + 1


class LocalCluster:
    """N thread-backed shards behind one router, with fault verbs."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.shard_ids: List[str] = [
            f"shard-{index}" for index in range(self.config.shards)]
        #: per-shard stores: the "disk" that survives kill/restart
        self.stores: Dict[str, ContainerStore] = {
            shard_id: ContainerStore() for shard_id in self.shard_ids}
        self.handles: Dict[str, Optional[ServerHandle]] = {
            shard_id: None for shard_id in self.shard_ids}
        self.router: Optional[RouterHandle] = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LocalCluster":
        addresses: Dict[str, tuple] = {}
        for shard_id in self.shard_ids:
            handle = self._start_shard(shard_id)
            self.handles[shard_id] = handle
            addresses[shard_id] = handle.address
        router_config = self.config.router or RouterConfig()
        router_config.replication = self.config.replication
        self.router = router_in_thread(addresses, config=router_config)
        return self

    def _start_shard(self, shard_id: str) -> ServerHandle:
        server_config = ServerConfig(host=self.config.host, port=0)
        if self.config.server is not None:
            template = self.config.server
            server_config.max_concurrency = template.max_concurrency
            server_config.max_queue_depth = template.max_queue_depth
            server_config.request_timeout = template.request_timeout
            server_config.max_frame = template.max_frame
            server_config.cache_bytes = template.cache_bytes
            server_config.drain_timeout = template.drain_timeout
        return serve_in_thread(store=self.stores[shard_id],
                               config=server_config)

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        for shard_id, handle in self.handles.items():
            if handle is not None:
                handle.stop()
                self.handles[shard_id] = None

    def __enter__(self) -> "LocalCluster":
        if self.router is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The router's (host, port) — what clients connect to."""
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.address

    @property
    def quorum(self) -> int:
        return self.config.quorum

    @property
    def live_count(self) -> int:
        return sum(1 for handle in self.handles.values()
                   if handle is not None and handle.is_alive())

    @property
    def above_quorum(self) -> bool:
        return self.live_count >= self.quorum

    def specs(self) -> List[ShardSpec]:
        out = []
        for shard_id in self.shard_ids:
            handle = self.handles[shard_id]
            port = handle.port if handle is not None else 0
            out.append(ShardSpec(shard_id=shard_id, host=self.config.host,
                                 port=port))
        return out

    def replicas_for(self, container_id: str) -> List[str]:
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.router.replicas_for(container_id)

    def client(self, retries: int = 4,
               retry_policy: Optional[RetryPolicy] = None,
               **kwargs) -> ServeClient:
        """A retrying client pointed at the router."""
        host, port = self.address
        if retry_policy is not None:
            return ServeClient(host, port, retry_policy=retry_policy,
                               **kwargs)
        return ServeClient(host, port, retries=retries, **kwargs)

    # -- fault verbs ---------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL semantics: reset connections, no drain, store survives."""
        with self._lock:
            handle = self.handles[shard_id]
            if handle is not None:
                handle.kill()
                self.handles[shard_id] = None

    def drain_shard(self, shard_id: str, timeout: float = 10.0) -> bool:
        """SIGTERM semantics: finish in-flight work, refuse new frames."""
        with self._lock:
            handle = self.handles[shard_id]
            if handle is None:
                return True
            drained = handle.drain(timeout)
            self.handles[shard_id] = None
            return drained

    def restart_shard(self, shard_id: str) -> ShardSpec:
        """Bring a dead shard back (same store, new port); router learns."""
        with self._lock:
            old = self.handles[shard_id]
            if old is not None and old.is_alive():
                raise RuntimeError(f"{shard_id} is still running")
            handle = self._start_shard(shard_id)
            self.handles[shard_id] = handle
            if self.router is not None:
                self.router.update_address(shard_id, *handle.address)
            return ShardSpec(shard_id=shard_id, host=self.config.host,
                             port=handle.port)


def start_cluster_in_thread(shards: int = DEFAULT_SHARDS,
                            replication: int = DEFAULT_REPLICATION,
                            router: Optional[RouterConfig] = None,
                            server: Optional[ServerConfig] = None
                            ) -> LocalCluster:
    """Start a :class:`LocalCluster` and return it ready for clients."""
    config = ClusterConfig(shards=shards, replication=replication,
                           router=router, server=server)
    return LocalCluster(config).start()


__all__ = [
    "ClusterConfig",
    "DEFAULT_REPLICATION",
    "DEFAULT_SHARDS",
    "LocalCluster",
    "ShardSpec",
    "start_cluster_in_thread",
]
