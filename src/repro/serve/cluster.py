"""In-process cluster topology: N shard servers behind one router.

:class:`LocalCluster` runs every shard as an :class:`SSDServer` on its
own daemon thread (``serve_in_thread``) plus one :class:`ClusterRouter`
front-end, all inside the current process — the shape tests, the chaos
harness, and benchmarks drive.  Each shard keeps its *own*
:class:`ContainerStore` instance that survives the shard's process
(thread) dying: the store models the shard's disk, so
``restart_shard`` brings the same data back on a new port, exactly like
a crashed machine rejoining.

Fault verbs mirror what production infrastructure does to you:

* :meth:`kill_shard`    — SIGKILL: connections reset mid-frame, no drain
* :meth:`drain_shard`   — SIGTERM: finish in-flight work, refuse new
  frames, router routes around (the graceful path)
* :meth:`restart_shard` — the machine comes back; the router learns the
  new address and the ring placement is unchanged (same shard id)

The multi-process deployment (``ssd cluster start``) wires the same
router around real subprocess shards; see ``repro.tools``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from .client import RetryPolicy, ServeClient
from .router import RouterConfig, RouterHandle, router_in_thread
from .server import ServerConfig, ServerHandle, serve_in_thread
from .store import ContainerStore

#: default shard count for a local cluster
DEFAULT_SHARDS = 3
#: default replication factor
DEFAULT_REPLICATION = 2


@dataclass(frozen=True)
class ShardSpec:
    """Where one shard lives (id is stable; the port may change)."""

    shard_id: str
    host: str
    port: int


@dataclass
class ClusterConfig:
    """Topology knobs for one :class:`LocalCluster`."""

    shards: int = DEFAULT_SHARDS
    replication: int = DEFAULT_REPLICATION
    host: str = "127.0.0.1"
    router: Optional[RouterConfig] = None
    server: Optional[ServerConfig] = None
    #: front-end routers; > 1 removes the router as a single point of
    #: failure (they gossip health + weights and any one serves alone)
    routers: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.routers < 1:
            raise ValueError(f"need at least one router, got {self.routers}")
        if not 1 <= self.replication <= self.shards:
            raise ValueError(
                f"replication {self.replication} must be in "
                f"[1, {self.shards}] for a {self.shards}-shard cluster")

    @property
    def quorum(self) -> int:
        """Live shards guaranteeing every key keeps >= 1 live replica.

        A key becomes unavailable only when *all* of its ``replication``
        placement shards are dead, so with ``shards - replication``
        failures every key still has a replica; one more failure can
        take a key's last copy.
        """
        return self.shards - self.replication + 1


class LocalCluster:
    """N thread-backed shards behind one router, with fault verbs."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.shard_ids: List[str] = [
            f"shard-{index}" for index in range(self.config.shards)]
        #: per-shard stores: the "disk" that survives kill/restart
        self.stores: Dict[str, ContainerStore] = {
            shard_id: ContainerStore() for shard_id in self.shard_ids}
        self.handles: Dict[str, Optional[ServerHandle]] = {
            shard_id: None for shard_id in self.shard_ids}
        self.routers: List[RouterHandle] = []
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LocalCluster":
        addresses: Dict[str, tuple] = {}
        for shard_id in self.shard_ids:
            handle = self._start_shard(shard_id)
            self.handles[shard_id] = handle
            addresses[shard_id] = handle.address
        router_config = self.config.router or RouterConfig()
        router_config.replication = self.config.replication
        self.routers = [router_in_thread(addresses, config=router_config)]
        for _ in range(1, self.config.routers):
            self.routers.append(router_in_thread(
                addresses, config=replace(router_config, port=0)))
        peer_addresses = [handle.address for handle in self.routers]
        for handle in self.routers:
            handle.set_peers(peer_addresses)
        return self

    def _start_shard(self, shard_id: str) -> ServerHandle:
        server_config = ServerConfig(host=self.config.host, port=0)
        if self.config.server is not None:
            template = self.config.server
            server_config.max_concurrency = template.max_concurrency
            server_config.max_queue_depth = template.max_queue_depth
            server_config.request_timeout = template.request_timeout
            server_config.max_frame = template.max_frame
            server_config.cache_bytes = template.cache_bytes
            server_config.drain_timeout = template.drain_timeout
        return serve_in_thread(store=self.stores[shard_id],
                               config=server_config)

    def stop(self) -> None:
        for handle in self.routers:
            handle.stop()
        self.routers = []
        for shard_id, handle in self.handles.items():
            if handle is not None:
                handle.stop()
                self.handles[shard_id] = None

    def __enter__(self) -> "LocalCluster":
        if self.router is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    @property
    def router(self) -> Optional[RouterHandle]:
        """The first *live* router handle (back-compat single-router view)."""
        for handle in self.routers:
            if handle.is_alive():
                return handle
        return None

    @property
    def address(self) -> tuple:
        """A live router's (host, port) — what clients connect to."""
        router = self.router
        if router is None:
            raise RuntimeError("cluster is not started (or every router died)")
        return router.address

    @property
    def addresses(self) -> List[tuple]:
        """Every live router's (host, port), first-preferred order."""
        return [handle.address for handle in self.routers
                if handle.is_alive()]

    @property
    def quorum(self) -> int:
        return self.config.quorum

    @property
    def live_count(self) -> int:
        return sum(1 for handle in self.handles.values()
                   if handle is not None and handle.is_alive())

    @property
    def above_quorum(self) -> bool:
        return self.live_count >= self.quorum

    def specs(self) -> List[ShardSpec]:
        out = []
        for shard_id in self.shard_ids:
            handle = self.handles[shard_id]
            port = handle.port if handle is not None else 0
            out.append(ShardSpec(shard_id=shard_id, host=self.config.host,
                                 port=port))
        return out

    def replicas_for(self, container_id: str) -> List[str]:
        router = self.router
        if router is None:
            raise RuntimeError("cluster is not started")
        return router.router.replicas_for(container_id)

    def client(self, retries: int = 4,
               retry_policy: Optional[RetryPolicy] = None,
               **kwargs) -> ServeClient:
        """A retrying client pointed at the routers.

        Every live router is handed over as a fallback address, so a
        router death mid-load costs the client one reconnect.
        """
        addresses = self.addresses
        if not addresses:
            raise RuntimeError("cluster is not started (or every router died)")
        host, port = addresses[0]
        kwargs.setdefault("fallback", addresses[1:])
        if retry_policy is not None:
            return ServeClient(host, port, retry_policy=retry_policy,
                               **kwargs)
        return ServeClient(host, port, retries=retries, **kwargs)

    # -- fault verbs ---------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL semantics: reset connections, no drain, store survives."""
        with self._lock:
            handle = self.handles[shard_id]
            if handle is not None:
                handle.kill()
                self.handles[shard_id] = None

    def drain_shard(self, shard_id: str, timeout: float = 10.0) -> bool:
        """SIGTERM semantics: finish in-flight work, refuse new frames."""
        with self._lock:
            handle = self.handles[shard_id]
            if handle is None:
                return True
            drained = handle.drain(timeout)
            self.handles[shard_id] = None
            return drained

    def restart_shard(self, shard_id: str) -> ShardSpec:
        """Bring a dead shard back (same store, new port); router learns."""
        with self._lock:
            old = self.handles[shard_id]
            if old is not None and old.is_alive():
                raise RuntimeError(f"{shard_id} is still running")
            handle = self._start_shard(shard_id)
            self.handles[shard_id] = handle
            for router in self.routers:
                if router.is_alive():
                    router.update_address(shard_id, *handle.address)
            return ShardSpec(shard_id=shard_id, host=self.config.host,
                             port=handle.port)

    def kill_router(self, index: int = 0) -> tuple:
        """Take one front-end router down; returns its old address.

        Surviving routers keep serving (clients fall back via their
        address list) — the scenario the chaos harness proves causes
        zero client-visible failures.
        """
        with self._lock:
            handle = self.routers[index]
            address = handle.address
            handle.stop()
            return address


def start_cluster_in_thread(shards: int = DEFAULT_SHARDS,
                            replication: int = DEFAULT_REPLICATION,
                            router: Optional[RouterConfig] = None,
                            server: Optional[ServerConfig] = None,
                            routers: int = 1) -> LocalCluster:
    """Start a :class:`LocalCluster` and return it ready for clients."""
    config = ClusterConfig(shards=shards, replication=replication,
                           router=router, server=server, routers=routers)
    return LocalCluster(config).start()


__all__ = [
    "ClusterConfig",
    "DEFAULT_REPLICATION",
    "DEFAULT_SHARDS",
    "LocalCluster",
    "ShardSpec",
    "start_cluster_in_thread",
]
