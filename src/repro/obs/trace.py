"""Lightweight tracing: parent-linked span trees with monotonic durations.

A *span* is one timed operation.  Opening a span inside another makes it
a child, so one request that crosses compress -> container -> serve ->
JIT yields a single tree whose nodes are the per-layer operations::

    with TRACER.span("serve.request", type="GET_FUNCTION"):
        ...
        with TRACER.span("serve.decode", findex=3):
            ...

The current span is tracked in a :mod:`contextvars` context variable, so
nesting works across ``async`` task boundaries and into
``asyncio.to_thread`` workers (both copy the ambient context).  Durations
come from :func:`time.perf_counter` — monotonic, never wall-clock — and
trace ids from a process-global monotonic counter, so captures are
deterministic enough to diff.

Finished *root* spans (spans opened with no parent) are kept in a
bounded ring buffer per tracer; exporters read them as JSON
(:meth:`Span.to_dict`) or a pretty text tree (:func:`format_tree`).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

#: how many finished root spans a tracer retains by default
DEFAULT_MAX_ROOTS = 256

_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)


class Span:
    """One timed operation; a node in a trace tree."""

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "attrs",
                 "children", "duration", "_started", "_lock")

    def __init__(self, name: str, trace_id: int,
                 parent_id: Optional[int] = None,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.span_id = next(_SPAN_IDS)
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.duration: Optional[float] = None
        self._started = time.perf_counter()
        self._lock = threading.Lock()

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def finish(self) -> None:
        self.duration = time.perf_counter() - self._started

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe tree rooted at this span (children recursively)."""
        with self._lock:
            children = list(self.children)
        payload: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "duration_s": self.duration,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if children:
            payload["children"] = [child.to_dict() for child in children]
        return payload

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        with self._lock:
            children = list(self.children)
        for child in children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.2f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


def span_from_dict(payload: Dict[str, object]) -> Span:
    """Rebuild a span tree from :meth:`Span.to_dict` output."""
    span = Span(name=str(payload["name"]),
                trace_id=int(payload["trace_id"]),  # type: ignore[arg-type]
                parent_id=payload.get("parent_id"),  # type: ignore[arg-type]
                attrs=payload.get("attrs"))  # type: ignore[arg-type]
    duration = payload.get("duration_s")
    if duration is not None:
        span.duration = float(duration)  # type: ignore[arg-type]
    for child in payload.get("children", []):  # type: ignore[union-attr]
        span.children.append(span_from_dict(child))
    return span


def format_tree(span: Span, indent: str = "") -> str:
    """Pretty one-span-per-line tree with millisecond durations."""
    duration = (f"{span.duration * 1e3:9.2f} ms" if span.duration is not None
                else "     open  ")
    attrs = ""
    if span.attrs:
        attrs = "  " + " ".join(f"{key}={value}" for key, value
                                in sorted(span.attrs.items()))
    lines = [f"{indent}{span.name:<{max(1, 40 - len(indent))}} {duration}{attrs}"]
    for child in span.children:
        lines.append(format_tree(child, indent + "  "))
    return "\n".join(lines)


class Tracer:
    """Creates spans, links them to the ambient parent, keeps roots."""

    def __init__(self, max_roots: int = DEFAULT_MAX_ROOTS) -> None:
        self._current: contextvars.ContextVar[Optional[Span]] = \
            contextvars.ContextVar(f"obs_span_{id(self):x}", default=None)
        self._lock = threading.Lock()
        self._roots: Deque[Span] = deque(maxlen=max_roots)

    # -- span lifecycle ------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a span; nested calls produce children of this one."""
        parent = self._current.get()
        if parent is None:
            trace_id = next(_TRACE_IDS)
            node = Span(name, trace_id=trace_id, attrs=attrs)
        else:
            node = Span(name, trace_id=parent.trace_id,
                        parent_id=parent.span_id, attrs=attrs)
        token = self._current.set(node)
        try:
            yield node
        finally:
            self._current.reset(token)
            node.finish()
            if parent is None:
                with self._lock:
                    self._roots.append(node)
            else:
                parent.add_child(node)

    def current(self) -> Optional[Span]:
        """The innermost open span in this context, if any."""
        return self._current.get()

    # -- export --------------------------------------------------------------

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def find_roots(self, name: str) -> List[Span]:
        return [root for root in self.roots() if root.name == name]

    def export(self) -> List[Dict[str, object]]:
        """JSON-safe list of every retained root span tree."""
        return [root.to_dict() for root in self.roots()]

    def format_roots(self) -> str:
        """Pretty text forest of every retained root span."""
        return "\n".join(format_tree(root) for root in self.roots())

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


#: the process-wide default tracer; ``repro.obs.span`` opens spans on it
TRACER = Tracer()


def span(name: str, **attrs: object):
    """Open a span on the process-wide default tracer."""
    return TRACER.span(name, **attrs)


def current_span() -> Optional[Span]:
    """The innermost open span on the default tracer, if any."""
    return TRACER.current()


__all__ = [
    "DEFAULT_MAX_ROOTS",
    "Span",
    "TRACER",
    "Tracer",
    "current_span",
    "format_tree",
    "span",
    "span_from_dict",
]
