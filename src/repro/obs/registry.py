"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric family the process
creates; :data:`REGISTRY` is the shared default that the instrumented
subsystems (``repro.core``, ``repro.lz``, ``repro.jit``, ``repro.serve``)
register into at import time, so an exposition always lists the full
schema even before traffic arrives.

Design constraints, in order:

* **Thread-safe.**  Decode worker threads, the asyncio event loop, and
  test hammers all update metrics concurrently; every mutation happens
  under a per-family lock and snapshots are taken under it too.
* **Deterministic.**  Histogram bucket boundaries are fixed at creation
  time (no wall-clock or randomized bucketing); expositions are sorted
  by family name and label value, so two snapshots of the same state
  are byte-identical.
* **Cheap.**  An increment is one lock acquisition and one integer add;
  hot paths (the JIT buffer, the LZ codecs) pay nanoseconds, not
  allocations.

The exposition format (:meth:`MetricsRegistry.expose_text`) follows the
Prometheus text format closely enough for standard scrapers::

    # HELP serve_requests_total Requests handled, by wire type.
    # TYPE serve_requests_total counter
    serve_requests_total{type="GET_FUNCTION"} 42
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: default histogram buckets for second-scale durations (powers-of-ten
#: with 2.5x subdivisions; fixed so expositions never depend on traffic)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: default histogram buckets for byte sizes (1 KiB .. 64 MiB)
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0, 67108864.0,
)

LabelValues = Tuple[Tuple[str, str], ...]


def _format_number(value: Number) -> str:
    """Render a sample value the way the Prometheus text format expects."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_suffix(labels: LabelValues) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _normalize_labels(labels: Mapping[str, object]) -> LabelValues:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing counter family, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, Number] = {}

    def inc(self, amount: Number = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        key = _normalize_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> Number:
        key = _normalize_labels(labels)
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> Number:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def collect(self) -> Dict[LabelValues, Number]:
        with self._lock:
            return dict(self._values)

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        samples = self.collect()
        if not samples:
            lines.append(f"{self.name} 0")
            return lines
        for labels in sorted(samples):
            lines.append(f"{self.name}{_label_suffix(labels)} "
                         f"{_format_number(samples[labels])}")
        return lines


class Gauge(Counter):
    """A settable value family (current cache bytes, active connections)."""

    kind = "gauge"

    def inc(self, amount: Number = 1, **labels: object) -> None:
        key = _normalize_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: Number = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set(self, value: Number, **labels: object) -> None:
        key = _normalize_labels(labels)
        with self._lock:
            self._values[key] = value


class _HistogramSeries:
    """One label combination's bucket counts, sum, and count."""

    __slots__ = ("bucket_counts", "total_sum", "count")

    def __init__(self, bucket_len: int) -> None:
        self.bucket_counts = [0] * bucket_len
        self.total_sum: float = 0.0
        self.count = 0


class Histogram:
    """A histogram family with fixed, sorted bucket upper bounds.

    ``observe(value)`` increments the first bucket whose upper bound is
    ``>= value`` (values beyond the last bound land in the implicit
    ``+Inf`` bucket).  The exposition reports *cumulative* bucket counts,
    matching Prometheus semantics.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        ordered = tuple(float(bound) for bound in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name} buckets must be strictly "
                             f"increasing, got {buckets!r}")
        self.name = name
        self.help_text = help_text
        self.buckets = ordered
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def observe(self, value: Number, **labels: object) -> None:
        key = _normalize_labels(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    break
            series.total_sum += value
            series.count += 1

    def count(self, **labels: object) -> int:
        key = _normalize_labels(labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series is not None else 0

    def total_count(self) -> int:
        with self._lock:
            return sum(series.count for series in self._series.values())

    def collect(self) -> Dict[LabelValues, Dict[str, object]]:
        """Per-series snapshot: cumulative buckets, sum, count."""
        with self._lock:
            out: Dict[LabelValues, Dict[str, object]] = {}
            for key, series in self._series.items():
                cumulative = []
                running = 0
                for bucket_count in series.bucket_counts:
                    running += bucket_count
                    cumulative.append(running)
                out[key] = {
                    "buckets": list(zip(self.buckets, cumulative)),
                    "sum": series.total_sum,
                    "count": series.count,
                }
            return out

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, series in sorted(self.collect().items()):
            base = dict(labels)
            for bound, cumulative in series["buckets"]:  # type: ignore[union-attr]
                bucket_labels = _normalize_labels({**base, "le": _format_number(bound)})
                lines.append(f"{self.name}_bucket{_label_suffix(bucket_labels)} "
                             f"{cumulative}")
            inf_labels = _normalize_labels({**base, "le": "+Inf"})
            lines.append(f"{self.name}_bucket{_label_suffix(inf_labels)} "
                         f"{series['count']}")
            suffix = _label_suffix(labels)
            lines.append(f"{self.name}_sum{suffix} "
                         f"{_format_number(series['sum'])}")  # type: ignore[arg-type]
            lines.append(f"{self.name}_count{suffix} {series['count']}")
        if not self._series:
            lines.append(f"{self.name}_count 0")
        return lines


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metric families with get-or-create semantics.

    Asking for an existing name returns the existing family (so modules
    can re-import safely); asking for it with a *different* kind raises,
    which catches naming collisions at import time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help_text), Counter)
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, help_text), Gauge)
        return metric  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram)
        return metric  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every family's current samples."""
        with self._lock:
            metrics = list(self._metrics.items())
        out: Dict[str, object] = {}
        for name, metric in sorted(metrics):
            if isinstance(metric, Histogram):
                series = {}
                for labels, data in sorted(metric.collect().items()):
                    key = _label_suffix(labels) or "_"
                    series[key] = {
                        "count": data["count"],
                        "sum": data["sum"],
                        "buckets": [[bound, cumulative] for bound, cumulative
                                    in data["buckets"]],  # type: ignore[union-attr]
                    }
                out[name] = {"kind": metric.kind, "series": series}
            else:
                out[name] = {
                    "kind": metric.kind,
                    "series": {(_label_suffix(labels) or "_"): value
                               for labels, value
                               in sorted(metric.collect().items())},
                }
        return out

    def expose_text(self) -> str:
        """Prometheus-style text exposition of every family, sorted."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n" if lines else ""


#: the process-wide default registry
REGISTRY = MetricsRegistry()


def expose_text() -> str:
    """Exposition of the process-wide default registry."""
    return REGISTRY.expose_text()


__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "expose_text",
]
