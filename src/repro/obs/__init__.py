"""Unified observability: one metrics registry + one tracing API.

Telemetry used to be fragmented — ``repro.perf`` had a phase-timing dict
for the compressor, ``repro.serve.metrics`` kept its own counters, and
the JIT/interpreter/fault paths emitted nothing.  This package is the
single substrate they all share now:

* :mod:`repro.obs.registry` — a process-wide, thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms, with a Prometheus-style text exposition
  (:func:`expose_text`).  Subsystems register their families at import
  time into the shared :data:`REGISTRY`.
* :mod:`repro.obs.trace` — ``span("compress.ngram")`` context managers
  producing a parent-linked span tree with monotonic durations,
  exportable as JSON and as a pretty text tree.  The shared
  :data:`TRACER` propagates parents across asyncio tasks and worker
  threads via :mod:`contextvars`.

Naming scheme (enforced by ``docs/OBSERVABILITY.md`` and its
consistency test): metric families are ``<subsystem>_<what>[_total]``
snake_case with Prometheus label sets; span names are dotted
``<subsystem>.<operation>`` lowercase paths.
"""

from .registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    expose_text,
)
from .trace import (
    TRACER,
    Span,
    Tracer,
    current_span,
    format_tree,
    span,
    span_from_dict,
)

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "current_span",
    "expose_text",
    "format_tree",
    "span",
    "span_from_dict",
]
