"""JIT translation buffer with the paper's replacement policy.

Section 3's RAM-constrained experiment uses "a buffer space replacement
policy that combines round-robin and LRU concepts": the buffer splits into
a *permanent* area and a *round-robin* area.

* A function moves to the permanent area when the product of its size and
  the number of times it has been translated exceeds the size of the
  round-robin area (the paper's footnote 2) — i.e. once re-translating it
  has provably cost more than the churn it avoids.
* Functions smaller than 512 bytes also live in the permanent area, to
  limit fragmentation.
* Everything else cycles through the round-robin area, evicted in
  arrival order as space is reclaimed.

Two ablation policies (pure round-robin, pure LRU) implement the same
interface so ``experiments/ablations.py`` can compare them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import BufferCapacityError
from ..obs import REGISTRY

#: functions below this size are always placed in the permanent area
PERMANENT_SIZE_THRESHOLD = 512

_BUFFER_TRANSLATIONS = REGISTRY.counter(
    "jit_buffer_translations_total",
    "Buffer-triggered translations (misses), across every buffer.")
_BUFFER_RETRANSLATIONS = REGISTRY.counter(
    "jit_buffer_retranslations_total",
    "Translations of a function already translated before (eviction churn).")
_BUFFER_EVICTIONS = REGISTRY.counter(
    "jit_buffer_evictions_total",
    "Functions evicted or demoted out of translation buffers.")
_BUFFER_EVICTED_BYTES = REGISTRY.counter(
    "jit_buffer_evicted_bytes_total",
    "Native bytes evicted or demoted out of translation buffers.")

@dataclass
class BufferStats:
    """Counters every policy maintains."""

    calls: int = 0
    hits: int = 0
    misses: int = 0
    translated_bytes: int = 0
    evicted_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 1.0


class TranslationBuffer:
    """The paper's permanent + round-robin policy."""

    def __init__(self, capacity: int,
                 permanent_fraction_limit: float = 0.85,
                 alloc_hook: Optional[Callable[[int, int], None]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: called as ``alloc_hook(findex, size)`` before every translation;
        #: may raise :class:`BufferCapacityError` to simulate allocation
        #: failure (the fault-injection harness uses this).
        self.alloc_hook = alloc_hook
        self.permanent_limit = int(capacity * permanent_fraction_limit)
        self.permanent: Dict[int, int] = {}          # findex -> size
        self.round_robin: "OrderedDict[int, int]" = OrderedDict()
        self.permanent_bytes = 0
        self.rr_bytes = 0
        self.translation_counts: Dict[int, int] = {}
        self.stats = BufferStats()

    # -- queries -----------------------------------------------------------

    @property
    def rr_capacity(self) -> int:
        """Current size of the round-robin area."""
        return self.capacity - self.permanent_bytes

    def resident(self, findex: int) -> bool:
        return findex in self.permanent or findex in self.round_robin

    # -- the call path -------------------------------------------------------

    def call(self, findex: int, size: int) -> bool:
        """Record a call to ``findex``; translate on miss.

        Returns True on a hit (already resident).
        """
        self.stats.calls += 1
        if self.resident(findex):
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._translate(findex, size)
        return False

    def _translate(self, findex: int, size: int) -> None:
        if self.alloc_hook is not None:
            self.alloc_hook(findex, size)
        if size > self.capacity:
            raise BufferCapacityError(
                f"function {findex} ({size} bytes) exceeds the whole buffer "
                f"({self.capacity} bytes)")
        self.stats.translated_bytes += size
        count = self.translation_counts.get(findex, 0) + 1
        self.translation_counts[findex] = count
        _BUFFER_TRANSLATIONS.inc()
        if count > 1:
            _BUFFER_RETRANSLATIONS.inc()
        if self._belongs_in_permanent(findex, size, count):
            self._place_permanent(findex, size)
        else:
            self._place_round_robin(findex, size)

    # -- placement ------------------------------------------------------------

    def _belongs_in_permanent(self, findex: int, size: int, count: int) -> bool:
        if self.permanent_bytes + size > self.permanent_limit:
            return False
        if size < PERMANENT_SIZE_THRESHOLD:
            return True
        return size * count > self.rr_capacity

    def _place_permanent(self, findex: int, size: int) -> None:
        while (self.permanent_bytes + self.rr_bytes + size > self.capacity
               and self.round_robin):
            self._evict_one()
        if self.permanent_bytes + self.rr_bytes + size > self.capacity:
            # Degenerate: permanent area alone fills the buffer.
            self._place_round_robin(findex, size)
            return
        self.permanent[findex] = size
        self.permanent_bytes += size

    def _place_round_robin(self, findex: int, size: int) -> None:
        while self.permanent_bytes + self.rr_bytes + size > self.capacity:
            if self.round_robin:
                self._evict_one()
            elif self.permanent:
                # Last resort: the permanent area has starved the
                # round-robin area; demote its oldest resident.
                demoted_findex, demoted_size = next(iter(self.permanent.items()))
                del self.permanent[demoted_findex]
                self.permanent_bytes -= demoted_size
                self.stats.evicted_bytes += demoted_size
                _BUFFER_EVICTIONS.inc()
                _BUFFER_EVICTED_BYTES.inc(demoted_size)
            else:  # pragma: no cover - size > capacity is caught earlier
                raise BufferCapacityError(
                    f"function {findex} ({size} bytes) cannot fit in an "
                    f"empty buffer of {self.capacity} bytes")
        self.round_robin[findex] = size
        self.rr_bytes += size

    def _evict_one(self) -> None:
        evicted, size = self.round_robin.popitem(last=False)
        self.rr_bytes -= size
        self.stats.evicted_bytes += size
        _BUFFER_EVICTIONS.inc()
        _BUFFER_EVICTED_BYTES.inc(size)


class PureRoundRobinBuffer(TranslationBuffer):
    """Ablation: no permanent area at all."""

    def _belongs_in_permanent(self, findex: int, size: int, count: int) -> bool:
        return False


class PureLRUBuffer(TranslationBuffer):
    """Ablation: classic LRU over the whole buffer."""

    def call(self, findex: int, size: int) -> bool:
        self.stats.calls += 1
        if findex in self.round_robin:
            self.round_robin.move_to_end(findex)  # refresh recency
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._translate(findex, size)
        return False

    def _belongs_in_permanent(self, findex: int, size: int, count: int) -> bool:
        return False
