"""JIT substrate: instruction tables, translation, buffers, cost model.

Phase-one dictionary decompression produces :class:`InstructionTables`;
:class:`Translator` runs Algorithm 3 per function; ``buffer`` implements
the paper's permanent + round-robin replacement policy; ``runtime``
replays call traces under RAM constraints (Tables 6, Figure 3); ``costs``
holds the single auditable cycle model.
"""

from ..errors import BufferCapacityError
from .buffer import (
    BufferStats,
    PERMANENT_SIZE_THRESHOLD,
    PureLRUBuffer,
    PureRoundRobinBuffer,
    TranslationBuffer,
)
from .costs import (
    BRISC_COSTS,
    BRISC_EXTERNAL_DICT_BYTES,
    CLOCK_HZ,
    EXEC_CYCLES_PER_BYTE,
    SSD_COSTS,
    TranslationCosts,
    mb_per_second,
    seconds,
)
from .block_translator import (
    BlockTranslator,
    ExternalBranch,
    TranslatedFragment,
    copy_translate_range,
)
from .fallback import FallbackTranslator
from .instruction_table import InstructionTables, build_table_for_layout, build_tables
from .resilience import QuarantineRecord, ResilientRuntime, run_lazy
from .runtime import (
    RuntimeConfig,
    RuntimeResult,
    SweepPoint,
    baseline_execution_cycles,
    simulate,
    sweep_buffer_sizes,
)
from .translator import TranslationResult, Translator

__all__ = [
    "BRISC_COSTS",
    "BRISC_EXTERNAL_DICT_BYTES",
    "BlockTranslator",
    "ExternalBranch",
    "TranslatedFragment",
    "copy_translate_range",
    "BufferCapacityError",
    "BufferStats",
    "CLOCK_HZ",
    "EXEC_CYCLES_PER_BYTE",
    "FallbackTranslator",
    "InstructionTables",
    "PERMANENT_SIZE_THRESHOLD",
    "PureLRUBuffer",
    "PureRoundRobinBuffer",
    "QuarantineRecord",
    "ResilientRuntime",
    "RuntimeConfig",
    "RuntimeResult",
    "SSD_COSTS",
    "SweepPoint",
    "TranslationBuffer",
    "TranslationCosts",
    "TranslationResult",
    "Translator",
    "baseline_execution_cycles",
    "build_table_for_layout",
    "build_tables",
    "mb_per_second",
    "run_lazy",
    "seconds",
    "simulate",
    "sweep_buffer_sizes",
]


def __getattr__(name: str):
    if name == "BufferError_":
        # Deprecated pre-taxonomy alias; kept importable so historical
        # ``from repro.jit import BufferError_`` keeps working, but loudly.
        import warnings

        warnings.warn(
            "repro.jit.BufferError_ is deprecated; catch "
            "repro.errors.BufferCapacityError instead",
            DeprecationWarning, stacklevel=2)
        return BufferCapacityError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
