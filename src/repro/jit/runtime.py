"""Trace-driven RAM-constrained runtime simulation.

Replays a function-call trace against a size-limited JIT translation
buffer and charges modelled cycles for execution, translation and the
regeneration infrastructure.  This is the machinery behind Table 6
(megabytes translated, hit rate vs buffer size) and Figure 3 (execution
overhead, SSD vs BRISC, vs buffer size).

Buffer accounting follows the paper: the reported "buffer size" includes
the resident dictionary — SSD's per-program instruction table, or BRISC's
external pattern dictionary — so a scheme with a bigger dictionary has
less room for code at the same ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Type

from ..errors import BufferCapacityError
from .buffer import TranslationBuffer
from .costs import (
    EXEC_CYCLES_PER_BYTE,
    INFRASTRUCTURE_FRACTION,
    TRANSLATION_EVENT_CYCLES,
    TranslationCosts,
)


@dataclass
class RuntimeConfig:
    """One constrained-run scenario."""

    #: total budget (JIT buffer + dictionary), bytes
    buffer_bytes: int
    #: resident dictionary size, bytes (subtracted from the code area)
    dictionary_bytes: int
    costs: TranslationCosts
    buffer_class: Type[TranslationBuffer] = TranslationBuffer
    #: items per function (for the per-item part of SSD's copy cost);
    #: optional — zero means per-byte cost only.
    items_per_function: Optional[Sequence[int]] = None


@dataclass
class RuntimeResult:
    """Outcome of one simulated run."""

    calls: int
    hits: int
    misses: int
    translated_bytes: int
    execution_cycles: float
    translation_cycles: float
    infrastructure_cycles: float
    dictionary_cycles: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 1.0

    @property
    def total_cycles(self) -> float:
        return (self.execution_cycles + self.translation_cycles
                + self.infrastructure_cycles + self.dictionary_cycles)

    @property
    def translated_megabytes(self) -> float:
        return self.translated_bytes / 1e6

    def overhead_pct(self, baseline_cycles: float) -> float:
        """Percent execution-time overhead relative to ``baseline_cycles``."""
        if baseline_cycles <= 0:
            raise ValueError("baseline cycles must be positive")
        return 100.0 * (self.total_cycles - baseline_cycles) / baseline_cycles


def baseline_execution_cycles(function_sizes: Sequence[int],
                              trace: Sequence[int]) -> float:
    """Modelled cycles to run the trace from pre-translated native code."""
    return sum(function_sizes[findex] * EXEC_CYCLES_PER_BYTE for findex in trace)


def simulate(function_sizes: Sequence[int],
             trace: Sequence[int],
             config: RuntimeConfig) -> RuntimeResult:
    """Replay ``trace`` under ``config``.

    ``function_sizes`` are *native* (JIT-produced) function sizes in bytes.
    """
    code_capacity = config.buffer_bytes - config.dictionary_bytes
    if code_capacity <= 0:
        raise BufferCapacityError(
            f"buffer of {config.buffer_bytes} bytes cannot even hold the "
            f"{config.dictionary_bytes}-byte dictionary")
    buffer = config.buffer_class(capacity=code_capacity)
    execution = 0.0
    translation = 0.0
    infrastructure = 0.0
    items = config.items_per_function
    for findex in trace:
        size = function_sizes[findex]
        hit = buffer.call(findex, size)
        if not hit:
            item_count = items[findex] if items is not None else 0
            translation += config.costs.translate_cycles(size, item_count)
            infrastructure += TRANSLATION_EVENT_CYCLES
        execution += size * EXEC_CYCLES_PER_BYTE
    # The regeneration machinery (call indirection, discardable code) taxes
    # every executed cycle — the paper's 14.1% floor.
    infrastructure += execution * INFRASTRUCTURE_FRACTION
    stats = buffer.stats
    return RuntimeResult(
        calls=stats.calls,
        hits=stats.hits,
        misses=stats.misses,
        translated_bytes=stats.translated_bytes,
        execution_cycles=execution,
        translation_cycles=translation,
        infrastructure_cycles=infrastructure,
        dictionary_cycles=config.costs.dictionary_cycles(config.dictionary_bytes),
    )


@dataclass
class SweepPoint:
    """One row of a buffer-size sweep (Table 6 / Figure 3)."""

    buffer_ratio: float
    buffer_bytes: int
    megabytes_translated: float
    hit_rate_pct: float
    overhead_pct: float


def sweep_buffer_sizes(function_sizes: Sequence[int],
                       trace: Sequence[int],
                       x86_size: int,
                       ratios: Sequence[float],
                       dictionary_bytes: int,
                       costs: TranslationCosts,
                       buffer_class: Type[TranslationBuffer] = TranslationBuffer,
                       items_per_function: Optional[Sequence[int]] = None,
                       ) -> List[SweepPoint]:
    """Run the constrained simulation at each buffer ratio.

    Ratios are fractions of the *optimized x86* program size, dictionary
    included — exactly Table 6's x-axis.
    """
    baseline = baseline_execution_cycles(function_sizes, trace)
    points: List[SweepPoint] = []
    for ratio in ratios:
        config = RuntimeConfig(
            buffer_bytes=int(ratio * x86_size),
            dictionary_bytes=dictionary_bytes,
            costs=costs,
            buffer_class=buffer_class,
            items_per_function=items_per_function,
        )
        result = simulate(function_sizes, trace, config)
        points.append(SweepPoint(
            buffer_ratio=ratio,
            buffer_bytes=config.buffer_bytes,
            megabytes_translated=result.translated_megabytes,
            hit_rate_pct=100.0 * result.hit_rate,
            overhead_pct=result.overhead_pct(baseline),
        ))
    return points
