"""Graceful JIT degradation: quarantine broken functions, keep running.

The hardened decoder guarantees that corruption and resource exhaustion
surface as typed errors; this module decides what the *runtime* does
next.  A function whose native translation fails — its dictionary
entries will not lower, its item stream will not copy-translate, or the
translation buffer refuses the allocation — is **quarantined**: marked
as permanently interpreter-executed, with the failure recorded.  The
rest of the program keeps its native translations, and execution
proceeds through the VM interpreter (this repo's execution substrate;
native execution is modelled, not performed), so a program with a
quarantined function still computes the right answer as long as its VM
instruction stream decodes.

Stages, from coarsest to finest:

* ``dictionary`` — phase one failed for the whole segment table; every
  function quarantines at construction time;
* ``translate``  — this function's items/copy phase failed;
* ``buffer``     — translation succeeded but the buffer allocation
  failed (:class:`~repro.errors.BufferCapacityError`), e.g. a function
  larger than the whole buffer or an injected allocation fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..core.decompressor import SSDReader
from ..core.lazy import LazyProgram
from ..errors import BufferCapacityError, ReproError
from ..obs import REGISTRY
from .buffer import TranslationBuffer
from .fallback import FallbackTranslator
from .translator import TranslationResult, Translator

_QUARANTINES = REGISTRY.counter(
    "jit_quarantine_total",
    "Functions quarantined to the interpreter, by failure stage "
    "(stage=dictionary|translate|buffer).")


@dataclass(frozen=True)
class QuarantineRecord:
    """Why one function fell back to interpretation."""

    findex: int
    stage: str   # 'dictionary' | 'translate' | 'buffer'
    error: str


class ResilientRuntime:
    """A JIT runtime that degrades per-function instead of dying.

    ``source`` is either container bytes (any codec; dispatched through
    ``repro.codecs``) or an already-open reader.  Readers advertising
    ``supports_block_decode`` (SSD) translate by block copy
    (:class:`Translator`); any other codec reader goes through the
    whole-function :class:`FallbackTranslator` — both degrade per
    function the same way.  ``buffer`` (optional) is the translation
    buffer native code must fit into; allocation failures quarantine
    rather than propagate.
    """

    def __init__(self, source: Union[bytes, bytearray, SSDReader],
                 buffer: Optional[TranslationBuffer] = None) -> None:
        if isinstance(source, (bytes, bytearray)):
            from ..codecs import open_any  # late: repro.codecs imports core
            self.reader = open_any(bytes(source))
        else:
            self.reader = source
        self.buffer = buffer
        self.quarantine: Dict[int, QuarantineRecord] = {}
        self._translations: Dict[int, TranslationResult] = {}
        self.translator: Optional[Union[Translator, FallbackTranslator]] = None
        try:
            if getattr(self.reader, "supports_block_decode", True):
                self.translator = Translator(self.reader)
            else:
                self.translator = FallbackTranslator(self.reader)
        except ReproError as exc:
            # Phase one is shared state: with no instruction tables, no
            # function can translate.  All of them interpret.
            for findex in range(self.reader.function_count):
                self.quarantine[findex] = QuarantineRecord(
                    findex=findex, stage="dictionary", error=str(exc))
                _QUARANTINES.inc(stage="dictionary")

    # -- translation --------------------------------------------------------

    def translate(self, findex: int) -> Optional[TranslationResult]:
        """Translate one function, or quarantine it and return None."""
        if findex in self.quarantine:
            return None
        cached = self._translations.get(findex)
        if cached is not None:
            if self.buffer is not None:
                self.buffer.call(findex, cached.size)
            return cached
        assert self.translator is not None  # else everything is quarantined
        try:
            result = self.translator.translate_function(findex)
        except ReproError as exc:
            self.quarantine[findex] = QuarantineRecord(
                findex=findex, stage="translate", error=str(exc))
            _QUARANTINES.inc(stage="translate")
            return None
        if self.buffer is not None:
            try:
                self.buffer.call(findex, result.size)
            except BufferCapacityError as exc:
                self.quarantine[findex] = QuarantineRecord(
                    findex=findex, stage="buffer", error=str(exc))
                _QUARANTINES.inc(stage="buffer")
                return None
        self._translations[findex] = result
        return result

    def prepare(self, findexes: Optional[Iterable[int]] = None) -> "ResilientRuntime":
        """Attempt translation for ``findexes`` (default: every function)."""
        if findexes is None:
            findexes = range(self.reader.function_count)
        for findex in findexes:
            self.translate(findex)
        return self

    # -- queries ------------------------------------------------------------

    def execution_mode(self, findex: int) -> str:
        """'native' for translated functions, 'interpreter' for quarantined."""
        return "interpreter" if findex in self.quarantine else "native"

    @property
    def degraded(self) -> bool:
        return bool(self.quarantine)

    @property
    def quarantined(self) -> List[QuarantineRecord]:
        return [self.quarantine[findex] for findex in sorted(self.quarantine)]

    def report(self) -> str:
        total = self.reader.function_count
        lines = [f"resilient runtime: {total - len(self.quarantine)}/{total} "
                 f"functions native, {len(self.quarantine)} quarantined"]
        for record in self.quarantined:
            lines.append(f"  function {record.findex} [{record.stage}]: "
                         f"{record.error}")
        return "\n".join(lines)

    # -- execution ----------------------------------------------------------

    def run(self, inputs: Optional[Iterable[int]] = None,
            fuel: int = 1_000_000):
        """Prepare all functions, then execute the program.

        Execution goes through the VM interpreter over a lazily
        decompressed program, which is exactly the quarantine fallback
        path — so the result is correct whether zero or all functions
        ended up quarantined, provided the VM item streams decode.
        """
        self.prepare()
        return run_lazy(self.reader, inputs=inputs, fuel=fuel)


def run_lazy(reader: SSDReader, inputs: Optional[Iterable[int]] = None,
             fuel: int = 1_000_000):
    """Interpret a compressed program directly (the degradation path)."""
    from ..vm import run_program  # late import: repro.vm imports repro.isa only

    return run_program(LazyProgram(reader), inputs=inputs, fuel=fuel)
