"""Per-function JIT translation: phase two, driven per function.

The Omniware VM "uses SSD decompression to perform JIT translation one
function at a time" (section 2.2.4); this module packages that unit of
work.  ``translate_function`` = decode the function's items + run the copy
phase against the instruction table; ``translate_program`` translates
everything (the JIT-once configuration of Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.copy_phase import TranslatedFunction, copy_translate_planes
from ..core.decompressor import SSDReader
from ..obs import REGISTRY, TRACER
from .instruction_table import InstructionTables, build_tables

_TRANSLATIONS = REGISTRY.counter(
    "jit_translate_total", "Per-function phase-two translations performed.")
_TRANSLATED_BYTES = REGISTRY.counter(
    "jit_translate_bytes_total", "Native bytes produced by translation.")


@dataclass
class TranslationResult:
    """Everything the runtime needs about one translated function."""

    findex: int
    translated: TranslatedFunction

    @property
    def size(self) -> int:
        return self.translated.size


class Translator:
    """Stateful translator bound to one compressed program."""

    def __init__(self, reader: SSDReader,
                 tables: InstructionTables = None) -> None:
        self.reader = reader
        self.tables = tables if tables is not None else build_tables(reader)

    def translate_function(self, findex: int) -> TranslationResult:
        with TRACER.span("jit.translate", findex=findex):
            planes = self.reader.item_planes(findex)
            table = self.tables.for_function(self.reader, findex)
            result = TranslationResult(
                findex=findex,
                translated=copy_translate_planes(planes, table))
        _TRANSLATIONS.inc()
        _TRANSLATED_BYTES.inc(result.size)
        return result

    def translate_program(self) -> List[TranslationResult]:
        return [self.translate_function(findex)
                for findex in range(self.reader.function_count)]

    def native_function_sizes(self) -> List[int]:
        """JIT-produced native size of every function (translates them all)."""
        return [self.translate_function(findex).size
                for findex in range(self.reader.function_count)]
