"""Phase one's product: the instruction table (section 2.2.4).

Dictionary decompression converts each dictionary entry from VM form to
*native* instructions, producing a table that maps every 16-bit index to a
tagged native byte sequence.  The tag carries the sequence length and, for
entries ending in a control transfer, where the target hole sits — exactly
what Algorithm 3 needs so that phase two is a block copy plus a patch.

Conversion is per-instruction (the paper: "translation of individual
instructions, rather than optimizing compilation"), i.e. the *unoptimized*
native lowering — which is why JIT-translated code is slower than the
peephole-optimized baseline (Table 5's code-quality overhead).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

from ..core.copy_phase import TableEntry
from ..core.decompressor import SSDReader
from ..core.layout import SegmentLayout
from ..errors import CorruptContainer, ReproError
from ..obs import REGISTRY, TRACER
from ..vm.native import lower_instruction

_BUILD_TABLES = REGISTRY.counter(
    "jit_build_tables_total",
    "Phase-one instruction-table builds, by memo outcome (cache=hit|miss).")


def build_table_for_layout(layout: SegmentLayout) -> Dict[int, TableEntry]:
    """Build one segment's instruction table from its layout.

    Dictionary entries come from untrusted container bytes, so lowering
    failures (a decoded entry whose fields no native encoding can hold)
    surface as :class:`~repro.errors.CorruptContainer`, not as internal
    exceptions.
    """
    base_chunks = []
    for addr, base in enumerate(layout.addr_bases):
        target_size = base.target_size if base.has_target else None
        try:
            base_chunks.append(lower_instruction(base.instruction, target_size))
        except ReproError:
            raise
        except (ValueError, OverflowError, KeyError) as exc:
            raise CorruptContainer(
                f"dictionary entry {addr} fails native lowering: {exc}") from exc

    table: Dict[int, TableEntry] = {}
    for index, path in layout.paths_of.items():
        chunks = [base_chunks[addr] for addr in path]
        data = b"".join(chunk.data for chunk in chunks)
        last_base = layout.addr_bases[path[-1]]
        last = chunks[-1]
        if last_base.has_target and not last_base.target_in_entry:
            hole_offset = len(data) - last.size + last.hole_offset
            table[index] = TableEntry(data=data,
                                      hole_offset=hole_offset,
                                      hole_size=last.hole_size,
                                      is_call=last.is_call)
        else:
            table[index] = TableEntry(data=data)
    return table


@dataclass
class InstructionTables:
    """Instruction tables for every segment of a compressed program."""

    tables: List[Dict[int, TableEntry]]

    def for_function(self, reader: SSDReader, findex: int) -> Dict[int, TableEntry]:
        return self.tables[reader.segment_of_function[findex]]

    @property
    def total_bytes(self) -> int:
        """Native bytes held by all tables (the dictionary's RAM cost)."""
        return sum(entry.size for table in self.tables for entry in table.values())


#: LRU memo of instruction tables keyed by container hash.  The paper notes
#: re-translation after buffer eviction must be cheap; memoizing phase one
#: makes a re-translation skip dictionary decompression entirely.  The
#: lock makes the memo safe for multi-threaded callers (repro.serve runs
#: decodes on worker threads); table *construction* happens outside it.
_TABLE_CACHE: "OrderedDict[str, InstructionTables]" = OrderedDict()
_TABLE_CACHE_LIMIT = 8
_TABLE_CACHE_LOCK = threading.Lock()


def build_tables(reader: SSDReader, use_cache: bool = True) -> InstructionTables:
    """Run dictionary decompression (phase one) for all segments.

    When ``use_cache`` is true and ``reader.container_hash`` is set, the
    result is memoized per container hash: translating the same container
    again (e.g. after the JIT runtime evicted its buffers) returns the
    cached tables without redoing phase one.  Pass ``use_cache=False`` to
    force a rebuild (benchmarks measuring phase one do this).
    """
    key = reader.container_hash if use_cache else None
    if key is not None:
        with _TABLE_CACHE_LOCK:
            cached = _TABLE_CACHE.get(key)
            if cached is not None:
                _TABLE_CACHE.move_to_end(key)
                _BUILD_TABLES.inc(cache="hit")
                return cached
    _BUILD_TABLES.inc(cache="miss")
    with TRACER.span("jit.build_tables", segments=len(reader.layouts)):
        tables = InstructionTables(tables=[build_table_for_layout(layout)
                                           for layout in reader.layouts])
    if key is not None:
        with _TABLE_CACHE_LOCK:
            _TABLE_CACHE[key] = tables
            while len(_TABLE_CACHE) > _TABLE_CACHE_LIMIT:
                _TABLE_CACHE.popitem(last=False)
    return tables
