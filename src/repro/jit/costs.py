"""The cycle cost model.

The paper reports wall-clock numbers from a 450 MHz Pentium II; this
reproduction runs on whatever machine pytest happens to use, so all timing
*claims* are expressed in modelled cycles instead (DESIGN.md records this
substitution).  The constants below are anchored to the paper's published
throughputs:

* SSD copy phase:       12.5 MB/s at 450 MHz -> 36 cycles/byte produced,
  split into a per-item overhead (the paper's "7+n instructions" fast
  path) and a per-byte copy cost;
* SSD dictionary phase:  7.8 MB/s            -> ~58 cycles/byte;
* BRISC translation:     5.0 MB/s            -> 90 cycles/byte, with no
  cheap re-translation path (BRISC must re-decode its whole stream);
* re-generation infrastructure: a per-call indirection tax, sized so a
  fully-warm constrained run lands near the paper's 14.1% floor versus
  the 3.2% JIT-once overhead for word97.

Everything downstream (Table 5's overhead split, Table 6, Figure 3) pulls
from this single module so the model is auditable in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's machine.
CLOCK_HZ = 450_000_000

#: -- SSD copy phase (Algorithm 3) -------------------------------------
#: fixed cost per SSD item (the "7+n instructions" fast path, plus branch
#: handling amortized)
SSD_ITEM_CYCLES = 12.0
#: per produced byte (the memcpy)
SSD_COPY_BYTE_CYCLES = 28.0

#: -- SSD dictionary decompression phase --------------------------------
#: per byte of instruction-table output (LZ + tree walk + conversion)
SSD_DICT_BYTE_CYCLES = 58.0

#: -- BRISC ---------------------------------------------------------------
#: per byte of produced native code; BRISC has no copy phase, so both the
#: first translation and every re-translation pay this.
BRISC_BYTE_CYCLES = 90.0
#: BRISC's corpus-derived external dictionary (paper: ~150 KB) must be
#: loaded and decoded once.
BRISC_EXTERNAL_DICT_BYTES = 150_000

#: -- RAM-constrained regeneration infrastructure -----------------------
#: The paper measures that the machinery needed to discard and regenerate
#: code (a level of indirection for function calls, plus bookkeeping)
#: "increases to 14.1% the minimum execution time achievable" versus the
#: 3.2% JIT-once overhead.  We charge it as a fraction of execution time.
INFRASTRUCTURE_FRACTION = 0.141
#: bookkeeping per translation event (allocation, eviction, relocation)
TRANSLATION_EVENT_CYCLES = 900.0

#: -- hybrid re-optimization (section 2.2.4) ------------------------------
#: The paper: "the VM can take a hybrid approach by further optimizing
#: each function once it has generated the native code for that function."
#: Optimizing compilation is an order of magnitude slower than copying;
#: this prices it per produced byte (optimizing compilers of the era ran
#: at a few hundred KB/s on a 450 MHz part).
HYBRID_OPT_CYCLES_PER_BYTE = 2000.0

#: -- execution ------------------------------------------------------------
#: modelled cycles per *invocation byte*: executing a function of native
#: size s costs about s * EXEC_CYCLES_PER_BYTE per call (loops inside
#: functions are what make this > 1 per instruction).
EXEC_CYCLES_PER_BYTE = 14.0


@dataclass(frozen=True)
class TranslationCosts:
    """Cost parameters for one compression scheme's translator."""

    per_item_cycles: float
    per_byte_cycles: float
    dict_byte_cycles: float
    name: str = "ssd"

    def translate_cycles(self, produced_bytes: int, items: int = 0) -> float:
        return self.per_item_cycles * items + self.per_byte_cycles * produced_bytes

    def dictionary_cycles(self, table_bytes: int) -> float:
        return self.dict_byte_cycles * table_bytes


SSD_COSTS = TranslationCosts(per_item_cycles=SSD_ITEM_CYCLES,
                             per_byte_cycles=SSD_COPY_BYTE_CYCLES,
                             dict_byte_cycles=SSD_DICT_BYTE_CYCLES,
                             name="ssd")

BRISC_COSTS = TranslationCosts(per_item_cycles=0.0,
                               per_byte_cycles=BRISC_BYTE_CYCLES,
                               dict_byte_cycles=SSD_DICT_BYTE_CYCLES,
                               name="brisc")


def seconds(cycles: float) -> float:
    """Convert modelled cycles to modelled seconds on the paper's machine."""
    return cycles / CLOCK_HZ


def mb_per_second(bytes_produced: float, cycles: float) -> float:
    """Throughput in MB/s implied by a (bytes, cycles) pair."""
    if cycles <= 0:
        return 0.0
    return (bytes_produced / 1e6) / seconds(cycles)
