"""Whole-function JIT translation for codecs without block decode.

SSD's phase two is a block copy because phase one already produced native
chunks per dictionary entry (``repro.jit.translator``).  Codecs that only
expose per-function decode (BRISC, raw LZ77 — ``supports_block_decode``
is False on their readers) cannot take that path; instead the runtime
decodes the whole function back to VM instructions and lowers each one
(``repro.vm.native.lower_instruction``), patching branch holes and
reporting call relocations exactly like the copy phase does.  Same
:class:`~repro.jit.translator.TranslationResult` out, so the buffer and
resilience machinery cannot tell which path produced a translation —
only the cost model can (BRISC pays decode-per-pattern, the paper's
point).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.copy_phase import CallRelocation, CopyPhaseError, TranslatedFunction
from ..obs import REGISTRY, TRACER
from ..vm.native import lower_function
from .translator import TranslationResult

_FALLBACK_TRANSLATIONS = REGISTRY.counter(
    "jit_fallback_translate_total",
    "Whole-function (non-block-copy) translations performed.")


class FallbackTranslator:
    """Translator over any codec reader: decode function, lower, patch.

    Drop-in for :class:`~repro.jit.translator.Translator` where the
    reader lacks the SSD item/instruction-table surface.
    """

    def __init__(self, reader) -> None:
        self.reader = reader

    def translate_function(self, findex: int) -> TranslationResult:
        with TRACER.span("jit.translate_fallback", findex=findex):
            function = self.reader.function(findex)
            lowered = lower_function(function, optimize=False)
            code = bytearray()
            offsets: List[int] = []
            relocations: List[CallRelocation] = []
            pending: List[Tuple[int, int, int]] = []
            for index, (insn, chunk) in enumerate(
                    zip(function.insns, lowered.chunks)):
                start = len(code)
                offsets.append(start)
                code += chunk.data
                if chunk.hole_size == 0:
                    continue
                hole_at = start + chunk.hole_offset
                if chunk.is_call:
                    if insn.target is None:
                        raise CopyPhaseError(
                            f"instruction {index}: call chunk without a callee")
                    relocations.append(CallRelocation(
                        hole_offset=hole_at, hole_size=chunk.hole_size,
                        callee=insn.target))
                    continue
                target = insn.target
                if target is None:
                    raise CopyPhaseError(
                        f"instruction {index}: branch chunk without a target")
                if not 0 <= target <= len(function.insns):
                    raise CopyPhaseError(
                        f"instruction {index}: branch target {target} "
                        f"out of range")
                if target <= index:
                    _patch(code, hole_at, chunk.hole_size,
                           offsets[target] - (hole_at + chunk.hole_size))
                else:
                    pending.append((hole_at, chunk.hole_size, target))
            end_offset = len(code)
            for hole_at, hole_size, target in pending:
                where = offsets[target] if target < len(offsets) else end_offset
                _patch(code, hole_at, hole_size,
                       where - (hole_at + hole_size))
        _FALLBACK_TRANSLATIONS.inc()
        return TranslationResult(
            findex=findex,
            translated=TranslatedFunction(code=code,
                                          call_relocations=relocations,
                                          item_offsets=offsets))

    def translate_program(self) -> List[TranslationResult]:
        return [self.translate_function(findex)
                for findex in range(self.reader.function_count)]


def _patch(code: bytearray, offset: int, size: int, value: int) -> None:
    lo = -(1 << (8 * size - 1))
    hi = (1 << (8 * size - 1)) - 1
    if not lo <= value <= hi:
        raise CopyPhaseError(
            f"native displacement {value} does not fit in {size} bytes")
    code[offset:offset + size] = (value & ((1 << (8 * size)) - 1)
                                  ).to_bytes(size, "little")
