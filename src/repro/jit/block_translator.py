"""Basic-block-granularity translation (Algorithm 3's Start/End form).

The paper *defines* interpretable compression by this capability: "it can
be decompressed at basic-block granularity with reasonable efficiency"
(abstract), and Algorithm 3 takes ``Start``/``End`` item pointers for
exactly that reason — the Omniware VM picked whole functions, but an
interpreter may materialize one block at a time.

:class:`BlockTranslator` translates any contiguous *item range* of a
function.  Ranges align naturally with basic blocks because dictionary
entries never span blocks: every block leader starts an item.  Branch
targets inside the range are patched as usual; branches that leave the
range are reported as :class:`ExternalBranch` fix-ups for the driver
(which knows where — or whether — the target block was materialized),
mirroring how a block-at-a-time interpreter chains translated fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.copy_phase import CallRelocation, CopyPhaseError, TableEntry, _patch
from ..core.decompressor import SSDReader
from ..core.items import DecodedItem
from .instruction_table import InstructionTables, build_tables


@dataclass(frozen=True)
class ExternalBranch:
    """A branch hole whose target item lies outside the translated range.

    ``hole_offset``/``hole_size`` locate the hole within the fragment;
    ``target_item`` is the function-relative item index the branch wants.
    The driver patches it once the target fragment has an address.
    """

    hole_offset: int
    hole_size: int
    target_item: int


@dataclass
class TranslatedFragment:
    """Copy-phase output for one item range."""

    start_item: int
    end_item: int
    code: bytearray
    item_offsets: List[int] = field(default_factory=list)
    call_relocations: List[CallRelocation] = field(default_factory=list)
    external_branches: List[ExternalBranch] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code)


def copy_translate_range(items: Sequence[DecodedItem],
                         table: Dict[int, TableEntry],
                         start_item: int, end_item: int) -> TranslatedFragment:
    """Algorithm 3 over ``items[start_item:end_item]``.

    In-range branches are fully patched (backward immediately, forward in
    the final fix-up step); out-of-range branches become
    :class:`ExternalBranch` records.
    """
    if not 0 <= start_item <= end_item <= len(items):
        raise CopyPhaseError(
            f"bad item range [{start_item}, {end_item}) of {len(items)} items")
    code = bytearray()
    item_offsets: List[int] = []
    relocations: List[CallRelocation] = []
    externals: List[ExternalBranch] = []
    pending: List[Tuple[int, int, int]] = []  # (hole, size, target item)

    for item_index in range(start_item, end_item):
        item = items[item_index]
        entry = table.get(item.dict_index)
        if entry is None:
            raise CopyPhaseError(f"no instruction-table entry for index {item.dict_index}")
        item_offsets.append(len(code))
        start = len(code)
        code += entry.data
        if item.branch_displacement is not None:
            if not entry.has_hole or entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a branch target but entry "
                    f"{item.dict_index} has no branch hole")
            target_item = item_index + 1 + item.branch_displacement
            if not 0 <= target_item < len(items):
                raise CopyPhaseError(
                    f"item {item_index}: branch target item {target_item} "
                    f"out of range")
            hole_at = start + entry.hole_offset
            if not start_item <= target_item < end_item:
                externals.append(ExternalBranch(hole_offset=hole_at,
                                                hole_size=entry.hole_size,
                                                target_item=target_item))
            elif target_item <= item_index:
                _patch(code, hole_at, entry.hole_size,
                       item_offsets[target_item - start_item]
                       - (hole_at + entry.hole_size))
            else:
                pending.append((hole_at, entry.hole_size, target_item))
        elif item.call_target is not None:
            if not entry.has_hole or not entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a call target but entry "
                    f"{item.dict_index} has no call hole")
            relocations.append(CallRelocation(
                hole_offset=start + entry.hole_offset,
                hole_size=entry.hole_size,
                callee=item.call_target))

    for hole_at, hole_size, target_item in pending:
        _patch(code, hole_at, hole_size,
               item_offsets[target_item - start_item] - (hole_at + hole_size))

    return TranslatedFragment(start_item=start_item, end_item=end_item,
                              code=code, item_offsets=item_offsets,
                              call_relocations=relocations,
                              external_branches=externals)


class BlockTranslator:
    """Block-at-a-time translation driver for one compressed program.

    Blocks are identified lazily: an item is a *block leader* when it is
    item 0, the target of any branch item, or the successor of an item
    ending in a control transfer.  ``translate_block`` materializes the
    block containing a given item and returns the fragment; fragments are
    cached per function.
    """

    def __init__(self, reader: SSDReader,
                 tables: Optional[InstructionTables] = None) -> None:
        self.reader = reader
        self.tables = tables if tables is not None else build_tables(reader)
        self._items: Dict[int, List[DecodedItem]] = {}
        self._leaders: Dict[int, List[int]] = {}
        self._fragments: Dict[Tuple[int, int], TranslatedFragment] = {}

    def items_of(self, findex: int) -> List[DecodedItem]:
        if findex not in self._items:
            self._items[findex] = self.reader.decoded_items(findex)
        return self._items[findex]

    def block_leaders(self, findex: int) -> List[int]:
        """Item indices that begin basic blocks, in order."""
        if findex not in self._leaders:
            items = self.items_of(findex)
            table = self.tables.for_function(self.reader, findex)
            leaders = {0} if items else set()
            for item_index, item in enumerate(items):
                if item.branch_displacement is not None:
                    leaders.add(item_index + 1 + item.branch_displacement)
                entry = table[item.dict_index]
                ends_block = entry.has_hole or item.call_target is not None
                if ends_block and item_index + 1 < len(items):
                    leaders.add(item_index + 1)
            self._leaders[findex] = sorted(leaders)
        return self._leaders[findex]

    def block_range(self, findex: int, item_index: int) -> Tuple[int, int]:
        """The [start, end) item range of the block containing ``item_index``."""
        items = self.items_of(findex)
        if not 0 <= item_index < len(items):
            raise CopyPhaseError(
                f"item {item_index} out of range ({len(items)} items)")
        leaders = self.block_leaders(findex)
        start = max(leader for leader in leaders if leader <= item_index)
        later = [leader for leader in leaders if leader > item_index]
        end = later[0] if later else len(items)
        return start, end

    def translate_block(self, findex: int, item_index: int) -> TranslatedFragment:
        """Materialize the basic block containing ``item_index``."""
        start, end = self.block_range(findex, item_index)
        key = (findex, start)
        fragment = self._fragments.get(key)
        if fragment is None:
            fragment = copy_translate_range(
                self.items_of(findex),
                self.tables.for_function(self.reader, findex),
                start, end)
            self._fragments[key] = fragment
        return fragment

    def translate_whole_function(self, findex: int) -> List[TranslatedFragment]:
        """Materialize every block of a function (in leader order)."""
        leaders = self.block_leaders(findex)
        return [self.translate_block(findex, leader) for leader in leaders]

    @property
    def blocks_translated(self) -> int:
        return len(self._fragments)
