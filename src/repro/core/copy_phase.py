"""Algorithm 3: the copy phase of SSD decompression.

Phase one (``repro.jit.instruction_table``) turns the dictionary into an
*instruction table*: for every 16-bit index, the native bytes of its
instruction sequence plus a tag giving the byte length and — for entries
ending in a control transfer — where the target hole sits.  The copy phase
then translates a function by looping over its SSD items and copying table
entries into the output buffer, patching branch holes as it goes:

* backward branches resolve immediately through a forwarding table
  (item index -> output byte offset);
* forward branches and calls deposit a relocation, applied at the end
  (step 3 of Algorithm 3).

Call relocations are returned to the caller (the JIT runtime binds callees
to buffer addresses or translation stubs); intra-function branch holes are
fully patched here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, List, Sequence, Tuple

from ..errors import CorruptContainer
from ..kernels import KIND_BRANCH, KIND_CALL, ItemPlanes
from .items import DecodedItem, planes_to_items


class CopyPhaseError(CorruptContainer):
    """Raised when an item stream cannot be translated."""


@dataclass(frozen=True)
class TableEntry:
    """One instruction-table row (the paper's tagged native sequence).

    ``hole_offset`` is the (paper's "negative offset from the end")
    position of the target hole, expressed here from the start of
    ``data``; ``hole_size`` is its width.  ``is_call`` marks entries whose
    hole takes a callee address rather than an intra-function offset.
    """

    data: bytes
    hole_offset: int = 0
    hole_size: int = 0
    is_call: bool = False

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def has_hole(self) -> bool:
        return self.hole_size > 0


@dataclass(frozen=True)
class CallRelocation:
    """A call hole the runtime must bind: patch ``hole_offset`` with the
    native address of ``callee`` (function index)."""

    hole_offset: int
    hole_size: int
    callee: int


@dataclass
class TranslatedFunction:
    """Copy-phase output for one function."""

    code: bytearray
    call_relocations: List[CallRelocation] = field(default_factory=list)
    #: output byte offset of each item (the forwarding table, kept for tests)
    item_offsets: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code)


def copy_translate(items: Sequence[DecodedItem],
                   table: Dict[int, TableEntry]) -> TranslatedFunction:
    """Run Algorithm 3 over one function's decoded items.

    Branch holes are patched with native pc-relative displacements
    (relative to the end of the branch's hole, as hardware does); call
    holes are zeroed and reported as relocations.
    """
    code = bytearray()
    item_offsets: List[int] = []
    relocations: List[CallRelocation] = []
    # (hole position, hole size, target item index) for forward branches.
    pending: List[Tuple[int, int, int]] = []

    # The item loop is the copy phase's hot path: hoist every per-iteration
    # attribute/bound-method lookup out of it.
    table_get = table.get
    offsets_append = item_offsets.append
    pending_append = pending.append
    relocations_append = relocations.append
    item_count = len(items)

    for item_index, item in enumerate(items):
        entry = table_get(item.dict_index)
        if entry is None:
            raise CopyPhaseError(f"no instruction-table entry for index {item.dict_index}")
        start = len(code)
        offsets_append(start)
        code += entry.data  # the block copy at the heart of phase two
        displacement = item.branch_displacement
        if displacement is not None:
            hole_size = entry.hole_size
            if hole_size == 0 or entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a branch target but entry "
                    f"{item.dict_index} has no branch hole")
            target_item = item_index + 1 + displacement
            if not 0 <= target_item < item_count:
                raise CopyPhaseError(
                    f"item {item_index}: branch target item {target_item} "
                    f"out of range")
            hole_at = start + entry.hole_offset
            if target_item <= item_index:
                _patch(code, hole_at, hole_size,
                       item_offsets[target_item] - (hole_at + hole_size))
            else:
                pending_append((hole_at, hole_size, target_item))
        elif item.call_target is not None:
            if entry.hole_size == 0 or not entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a call target but entry "
                    f"{item.dict_index} has no call hole")
            relocations_append(CallRelocation(
                hole_offset=start + entry.hole_offset,
                hole_size=entry.hole_size,
                callee=item.call_target,
            ))

    # Step 3: fix forward branches now that all offsets are known.
    for hole_at, hole_size, target_item in pending:
        _patch(code, hole_at, hole_size,
               item_offsets[target_item] - (hole_at + hole_size))

    return TranslatedFunction(code=code, call_relocations=relocations,
                              item_offsets=item_offsets)


def copy_translate_planes(planes: ItemPlanes,
                          table: Dict[int, TableEntry]) -> TranslatedFunction:
    """Algorithm 3 over split planes: whole-function copy, then patches.

    The control plane drives one bulk gather-and-join of table rows (the
    forwarding table falls out of a single prefix sum), and only items
    with targets are touched individually afterwards — no per-item
    branching during the copy itself.  Any inconsistency re-runs the
    item-at-a-time :func:`copy_translate`, which owns the error taxonomy,
    so corrupt streams fail identically on every path.
    """
    try:
        return _copy_translate_planes(planes, table)
    except CopyPhaseError:
        # Re-run the item-at-a-time reference so the raised error (its
        # first-failure order can differ on multi-fault streams) is
        # exactly the scalar one.
        return copy_translate(planes_to_items(planes), table)


def _copy_translate_planes(planes: ItemPlanes,
                           table: Dict[int, TableEntry]) -> TranslatedFunction:
    entries = []
    entries_append = entries.append
    table_get = table.get
    for index in planes.indices:
        entry = table_get(index)
        if entry is None:
            raise CopyPhaseError(f"no instruction-table entry for index {index}")
        entries_append(entry)

    # Bulk copy: one join for the code, one prefix sum for the forwarding
    # table (item index -> output byte offset).
    offsets = list(accumulate((entry.size for entry in entries), initial=0))
    total = offsets.pop()
    code = bytearray(b"".join([entry.data for entry in entries]))
    assert len(code) == total
    item_offsets = offsets

    relocations: List[CallRelocation] = []
    item_count = planes.count
    for item_index, kind in enumerate(planes.kinds):
        if kind == KIND_BRANCH:
            entry = entries[item_index]
            if entry.hole_size == 0 or entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a branch target but entry "
                    f"{planes.indices[item_index]} has no branch hole")
            target_item = item_index + 1 + planes.values[item_index]
            if not 0 <= target_item < item_count:
                raise CopyPhaseError(
                    f"item {item_index}: branch target item {target_item} "
                    f"out of range")
            hole_at = item_offsets[item_index] + entry.hole_offset
            _patch(code, hole_at, entry.hole_size,
                   item_offsets[target_item] - (hole_at + entry.hole_size))
        elif kind == KIND_CALL:
            entry = entries[item_index]
            if entry.hole_size == 0 or not entry.is_call:
                raise CopyPhaseError(
                    f"item {item_index} supplies a call target but entry "
                    f"{planes.indices[item_index]} has no call hole")
            relocations.append(CallRelocation(
                hole_offset=item_offsets[item_index] + entry.hole_offset,
                hole_size=entry.hole_size,
                callee=planes.values[item_index],
            ))
    return TranslatedFunction(code=code, call_relocations=relocations,
                              item_offsets=item_offsets)


def _patch(code: bytearray, offset: int, size: int, value: int) -> None:
    lo = -(1 << (8 * size - 1))
    hi = (1 << (8 * size - 1)) - 1
    if not lo <= value <= hi:
        raise CopyPhaseError(
            f"native displacement {value} does not fit the {size}-byte hole")
    code[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
        size, "little")


def read_patched_displacement(code: Sequence[int], offset: int, size: int) -> int:
    """Read back a patched hole (test helper; signed little-endian)."""
    value = int.from_bytes(bytes(code[offset:offset + size]), "little")
    sign = 1 << (8 * size - 1)
    return value - (1 << (8 * size)) if value & sign else value
