"""The compressed-program container format.

Version 2 (current, magic ``SSD2``) byte layout (varints unless stated)::

    magic  b"SSD2"
    version             u8 (= 2)
    program name        (uvarint length + utf-8)
    entry function index
    function count
    name blob           (uvarint length + LZ-compressed '\\n'-joined names + u32 CRC32)
    common base blob    (uvarint length + bytes + u32 CRC32; empty when unpartitioned)
    common tree blob    (uvarint length + bytes + u32 CRC32)
    segment count
    per segment:
        first function index, function count
        base blob       (uvarint length + bytes + u32 CRC32)
        tree blob       (uvarint length + bytes + u32 CRC32)
    per function (placement order):
        item stream     (uvarint length + bytes + u32 CRC32)
    [function order]    (uvarint length + permutation + u32 CRC32;
                        only in profile-guided containers)
    container CRC       u32 CRC32 over everything after the version byte
                        and before this field
    [profile hints]     (uvarint length + hints + u32 CRC32;
                        only in profile-guided containers)

Every *blob* carries its own CRC32 so corruption is attributed to a
section with a byte offset; the trailing container CRC covers the varint
metadata between blobs (counts, indices, lengths).  Version 1 (magic
``SSD1``) is the same layout minus the version byte and every CRC; it is
still read for compatibility with old archives.

A **profile-guided** container (built from a ``repro.profile``
:class:`~repro.profile.LayoutPlan`, see docs/LAYOUT.md) stores item
streams in plan placement order and appends two optional sections.  The
*function order* permutation (``order[slot] = logical function index``)
sits inside the CRC-covered body: corrupting it is fatal, because a bad
permutation would attach wrong bytes to a function.  The *profile
hints* blob (hot-set ranks + successor edges, ``repro.core.hints``)
trails the container CRC with only its own CRC32: hints are advisory,
so a corrupt hint section degrades to no-hint behaviour instead of
failing the container.  :func:`parse` restores item streams to logical
(program) order, so every consumer above this layer — readers, the JIT,
the serve stack — sees identical bytes whatever the placement.

Function names ride along (LZ-compressed) so decompression reproduces the
program exactly; they are charged to the compressed size, just as symbol
information is part of a shipped binary.

Decoding is treated as a hostile-input boundary: all failures raise
``repro.errors`` types (:class:`~repro.errors.CorruptContainer`,
:class:`~repro.errors.ChecksumMismatch`,
:class:`~repro.errors.TruncatedStream`,
:class:`~repro.errors.LimitExceeded`) and resource limits
(:class:`DecodeLimits`) bound what a malformed length field can allocate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ChecksumMismatch, CorruptContainer, LimitExceeded
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter
from ..obs import REGISTRY
from .hints import decode_order, encode_order

#: legacy (version 1) magic — still readable, no longer written by default
MAGIC = b"SSD1"
#: current magic
MAGIC_V2 = b"SSD2"
#: version-3 magic — the multi-codec envelope, decoded by ``repro.codecs``
MAGIC_V3 = b"SSD3"
#: the format version :func:`serialize` emits by default
FORMAT_VERSION = 2


class ContainerError(CorruptContainer):
    """Raised for malformed container bytes."""


@dataclass(frozen=True)
class DecodeLimits:
    """Resource ceilings enforced while parsing untrusted containers."""

    #: maximum functions a container may declare
    max_functions: int = 1 << 20
    #: maximum segments a container may declare
    max_segments: int = 1 << 14
    #: maximum decompressed size of any single LZ-compressed blob
    max_blob_output: int = lz77.MAX_OUTPUT_BYTES
    #: maximum dictionary entries (bases + tree nodes) per segment; the
    #: item encoding is 16-bit so anything above 0x10000 is unreferencable
    max_dict_entries: int = 1 << 16


DEFAULT_LIMITS = DecodeLimits()


@dataclass(frozen=True)
class SectionSpan:
    """Location of one section inside the container bytes (for reports
    and structure-aware fault injection)."""

    name: str
    length_offset: int        # offset of the uvarint length field
    data_offset: int          # offset of the section payload
    length: int               # payload length in bytes
    crc_offset: int = -1      # offset of the stored CRC32 (-1: none, v1)
    crc_ok: Optional[bool] = None  # None when the section carries no CRC


@dataclass
class SegmentSections:
    """Serialized pieces of one sub-dictionary."""

    first_function: int
    function_count: int
    base_blob: bytes
    tree_blob: bytes


@dataclass
class ContainerSections:
    """Everything stored in a compressed program, pre-byte-packing."""

    program_name: str
    entry: int
    function_names: List[str]
    common_base_blob: bytes
    common_tree_blob: bytes
    segments: List[SegmentSections]
    item_streams: List[bytes]
    #: physical placement permutation (``order[slot] = logical findex``);
    #: ``None`` for plain source-order containers.  ``item_streams`` is
    #: ALWAYS logical (program) order — the permutation only records how
    #: the bytes are (or will be) placed on disk.
    function_order: Optional[List[int]] = None
    #: encoded profile-hint payload (``repro.core.hints``); empty when absent
    profile_hints_blob: bytes = b""

    def section_sizes(self) -> dict:
        """Per-section byte accounting for reports."""
        return {
            "names": len(lz77.compress("\n".join(self.function_names).encode())),
            "common_bases": len(self.common_base_blob),
            "common_tree": len(self.common_tree_blob),
            "segment_bases": sum(len(s.base_blob) for s in self.segments),
            "segment_trees": sum(len(s.tree_blob) for s in self.segments),
            "items": sum(len(stream) for stream in self.item_streams),
            "profile_hints": len(self.profile_hints_blob),
        }


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


_SERIALIZE_BYTES = REGISTRY.counter(
    "container_serialize_bytes_total", "Container bytes written by serialize().")
_PARSE_BYTES = REGISTRY.counter(
    "container_parse_bytes_total", "Container bytes presented to parse().")


def serialize(sections: ContainerSections, version: int = FORMAT_VERSION) -> bytes:
    """Pack sections into container bytes.

    ``version=2`` (default) writes the checksummed ``SSD2`` layout;
    ``version=1`` writes the legacy ``SSD1`` layout (used by tests that
    pin backward compatibility).
    """
    if version not in (1, 2):
        raise ValueError(f"unsupported container version {version}")
    if len(sections.item_streams) != len(sections.function_names):
        raise ContainerError("one item stream per function required")
    order = sections.function_order
    if order is not None:
        if version != 2:
            raise ValueError(
                "profile-guided layout requires container version 2")
        if sorted(order) != list(range(len(sections.item_streams))):
            raise ContainerError(
                "function_order is not a permutation of the functions",
                section="function_order")
    elif sections.profile_hints_blob:
        raise ContainerError(
            "profile hints require a function_order (identity is fine)",
            section="profile_hints")
    with_crc = version == 2
    writer = ByteWriter()
    writer.write_bytes(MAGIC_V2 if with_crc else MAGIC)
    if with_crc:
        writer.write_u8(FORMAT_VERSION)
    body_start = len(writer)

    def write_blob(blob: bytes) -> None:
        writer.write_uvarint(len(blob))
        writer.write_bytes(blob)
        if with_crc:
            writer.write_u32(_crc(blob))

    name = sections.program_name.encode("utf-8")
    writer.write_uvarint(len(name))
    writer.write_bytes(name)
    writer.write_uvarint(sections.entry)
    writer.write_uvarint(len(sections.function_names))
    write_blob(lz77.compress("\n".join(sections.function_names).encode("utf-8")))
    write_blob(sections.common_base_blob)
    write_blob(sections.common_tree_blob)
    writer.write_uvarint(len(sections.segments))
    for segment in sections.segments:
        writer.write_uvarint(segment.first_function)
        writer.write_uvarint(segment.function_count)
        write_blob(segment.base_blob)
        write_blob(segment.tree_blob)
    if order is None:
        for stream in sections.item_streams:
            write_blob(stream)
    else:
        for findex in order:  # placement order: slot -> logical stream
            write_blob(sections.item_streams[findex])
        write_blob(encode_order(order))
    if with_crc:
        writer.write_u32(_crc(writer.getvalue()[body_start:]))
    if order is not None:
        write_blob(sections.profile_hints_blob)
    _SERIALIZE_BYTES.inc(len(writer.getvalue()))
    return writer.getvalue()


def _read_blob(reader: ByteReader, section: str, with_crc: bool,
               trace: Optional[List[SectionSpan]],
               strict: bool) -> "tuple[bytes, Optional[bool]]":
    length_offset = reader.position
    length = reader.read_uvarint()
    data_offset = reader.position
    payload = reader.read_bytes(length)
    crc_offset = -1
    crc_ok: Optional[bool] = None
    if with_crc:
        crc_offset = reader.position
        stored = reader.read_u32()
        crc_ok = _crc(payload) == stored
    if trace is not None:
        trace.append(SectionSpan(name=section, length_offset=length_offset,
                                 data_offset=data_offset, length=length,
                                 crc_offset=crc_offset, crc_ok=crc_ok))
    if strict and crc_ok is False:
        raise ChecksumMismatch(
            f"CRC32 mismatch: stored {stored:#010x}, "
            f"computed {_crc(payload):#010x}",
            section=section, offset=data_offset)
    return payload, crc_ok


def _probe_profiled(data: bytes, pos: int, function_count: int) -> bool:
    """Does the tail at ``pos`` parse as the profile-layout extension?

    Requires a CRC-valid function-order blob holding a real permutation,
    the 4-byte container CRC, and a structurally complete hint blob with
    nothing after it.  The hint blob's CRC is deliberately *not* checked
    here — a corrupt hint section still counts as the extension (and
    degrades to no hints); a corrupt order blob does not, so the plain
    path rejects the container via its CRC/trailing checks.
    """
    probe = ByteReader(data, pos)
    try:
        length = probe.read_uvarint()
        payload = probe.read_bytes(length)
        if _crc(payload) != probe.read_u32():
            return False
        decode_order(payload, function_count)
        probe.read_u32()  # container CRC; verified by the main path
        hint_length = probe.read_uvarint()
        probe.read_bytes(hint_length)
        probe.read_u32()  # hint CRC; mismatch degrades, not rejects
        return probe.at_end()
    except CorruptContainer:
        return False


def parse(data: bytes,
          limits: DecodeLimits = DEFAULT_LIMITS,
          trace: Optional[List[SectionSpan]] = None,
          strict: bool = True) -> ContainerSections:
    """Inverse of :func:`serialize` (both format versions).

    ``trace`` (optional) receives a :class:`SectionSpan` per section as it
    is walked — the machinery behind ``ssd verify`` and the fault
    injector.  ``strict=False`` records CRC mismatches in the trace
    instead of raising, so a report can keep walking past a corrupt
    section (structural errors still raise).
    """
    _PARSE_BYTES.inc(len(data))
    reader = ByteReader(data)
    magic = reader.read_bytes(4)
    if magic == MAGIC:
        with_crc = False
    elif magic == MAGIC_V2:
        with_crc = True
        version = reader.read_u8()
        if version != FORMAT_VERSION:
            raise ContainerError(f"unsupported container version {version}",
                                 section="header", offset=4)
    elif magic == MAGIC_V3:
        # v3 is a codec envelope, not an SSD section layout; this layer
        # cannot know which payload decoder applies.
        raise ContainerError(
            "version-3 container: open it through repro.codecs "
            "(open_any/decompress_any), which dispatches on the codec id",
            section="header", offset=0)
    else:
        raise ContainerError("bad magic; not an SSD container",
                             section="header", offset=0)
    body_start = reader.position

    name_length = reader.read_uvarint()
    if name_length > 1 << 16:
        raise LimitExceeded(f"program name of {name_length} bytes",
                            section="header", offset=reader.position)
    try:
        program_name = reader.read_bytes(name_length).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ContainerError(f"program name is not UTF-8: {exc}",
                             section="header") from exc
    entry = reader.read_uvarint()
    function_count = reader.read_uvarint()
    if function_count > limits.max_functions:
        raise LimitExceeded(
            f"container declares {function_count} functions "
            f"(limit {limits.max_functions})",
            section="header", offset=reader.position)
    if function_count and entry >= function_count:
        raise ContainerError(
            f"entry index {entry} out of range for {function_count} functions",
            section="header")
    name_blob, names_crc_ok = _read_blob(reader, "names", with_crc, trace, strict)
    function_names = []
    if names_crc_ok is not False:  # skip semantic decode of known-corrupt bytes
        try:
            joined = lz77.decompress(
                name_blob, max_output=limits.max_blob_output).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContainerError(f"function names are not UTF-8: {exc}",
                                 section="names") from exc
        except CorruptContainer as exc:
            raise exc.__class__(f"names: {exc}", section="names") from exc
        function_names = joined.split("\n") if joined else []
        if len(function_names) != function_count:
            raise ContainerError(
                f"expected {function_count} function names, "
                f"got {len(function_names)}", section="names")
    common_base_blob, _ = _read_blob(reader, "common_bases", with_crc, trace, strict)
    common_tree_blob, _ = _read_blob(reader, "common_tree", with_crc, trace, strict)
    segment_count = reader.read_uvarint()
    if segment_count > limits.max_segments:
        raise LimitExceeded(
            f"container declares {segment_count} segments "
            f"(limit {limits.max_segments})",
            section="header", offset=reader.position)
    segments = []
    for sindex in range(segment_count):
        first_function = reader.read_uvarint()
        seg_count = reader.read_uvarint()
        base_blob, _ = _read_blob(reader, f"segment[{sindex}].bases",
                                  with_crc, trace, strict)
        tree_blob, _ = _read_blob(reader, f"segment[{sindex}].tree",
                                  with_crc, trace, strict)
        segments.append(SegmentSections(first_function=first_function,
                                        function_count=seg_count,
                                        base_blob=base_blob,
                                        tree_blob=tree_blob))
    item_streams = [_read_blob(reader, f"items[{findex}]",
                               with_crc, trace, strict)[0]
                    for findex in range(function_count)]
    # A profile-guided container still has the function-order blob before
    # the 4-byte container CRC (and the hint blob after it); a plain one
    # has exactly the CRC left.  The tail only counts as the extension if
    # it fully parses as one — anything else falls through to the plain
    # path, where the CRC check / trailing-bytes check rejects it.
    profiled = (with_crc and reader.remaining > 4
                and _probe_profiled(data, reader.position, function_count))
    function_order: Optional[List[int]] = None
    if profiled:
        order_payload, order_crc_ok = _read_blob(
            reader, "function_order", with_crc, trace, strict)
        if order_crc_ok is not False:
            function_order = decode_order(order_payload, function_count)
            logical = list(item_streams)
            for slot, findex in enumerate(function_order):
                logical[findex] = item_streams[slot]
            item_streams = logical
    if with_crc:
        crc_offset = reader.position
        body = data[body_start:crc_offset]
        stored = reader.read_u32()
        crc_ok = _crc(body) == stored
        if trace is not None:
            trace.append(SectionSpan(name="container", length_offset=-1,
                                     data_offset=body_start, length=len(body),
                                     crc_offset=crc_offset, crc_ok=crc_ok))
        if strict and not crc_ok:
            raise ChecksumMismatch(
                f"container CRC32 mismatch: stored {stored:#010x}, "
                f"computed {_crc(body):#010x}",
                section="container", offset=crc_offset)
    profile_hints_blob = b""
    if profiled:
        # Advisory section: never strict — a corrupt hint blob degrades
        # to no hints, it must not fail an otherwise-good container.
        hint_payload, hint_crc_ok = _read_blob(
            reader, "profile_hints", with_crc, trace, strict=False)
        if hint_crc_ok is not False:
            profile_hints_blob = hint_payload
    if not reader.at_end():
        raise ContainerError(f"{reader.remaining} trailing bytes in container",
                             offset=reader.position)
    return ContainerSections(program_name=program_name, entry=entry,
                             function_names=function_names,
                             common_base_blob=common_base_blob,
                             common_tree_blob=common_tree_blob,
                             segments=segments, item_streams=item_streams,
                             function_order=function_order,
                             profile_hints_blob=profile_hints_blob)


def container_version(data: bytes) -> int:
    """The format version of ``data`` (1, 2 or 3); raises on bad magic.

    Version 3 is the multi-codec envelope; its payload is decoded by the
    registered codec (``repro.codecs``), not by :func:`parse`.
    """
    if data[:4] == MAGIC:
        return 1
    if data[:4] == MAGIC_V2:
        return 2
    if data[:4] == MAGIC_V3:
        return 3
    raise ContainerError("bad magic; not an SSD container",
                         section="header", offset=0)


@dataclass
class IntegrityReport:
    """Outcome of a structural + checksum walk over container bytes."""

    version: int
    spans: List[SectionSpan] = field(default_factory=list)
    #: structural error that stopped the walk, if any
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(
            span.crc_ok is not False for span in self.spans)

    @property
    def corrupt_sections(self) -> List[SectionSpan]:
        return [span for span in self.spans if span.crc_ok is False]


def integrity_report(data: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> IntegrityReport:
    """Check magic/version/CRCs without decoding dictionary contents.

    Walks every section, recording per-section CRC status; keeps going
    past checksum failures (structural failures necessarily stop the
    walk).  Never raises on corrupt input.
    """
    spans: List[SectionSpan] = []
    try:
        version = container_version(data)
    except CorruptContainer as exc:
        return IntegrityReport(version=0, spans=spans, error=str(exc))
    report = IntegrityReport(version=version, spans=spans)
    try:
        parse(data, limits=limits, trace=spans, strict=False)
    except CorruptContainer as exc:
        report.error = str(exc)
    return report
