"""The compressed-program container format.

Version 2 (current, magic ``SSD2``) byte layout (varints unless stated)::

    magic  b"SSD2"
    version             u8 (= 2)
    program name        (uvarint length + utf-8)
    entry function index
    function count
    name blob           (uvarint length + LZ-compressed '\\n'-joined names + u32 CRC32)
    common base blob    (uvarint length + bytes + u32 CRC32; empty when unpartitioned)
    common tree blob    (uvarint length + bytes + u32 CRC32)
    segment count
    per segment:
        first function index, function count
        base blob       (uvarint length + bytes + u32 CRC32)
        tree blob       (uvarint length + bytes + u32 CRC32)
    per function (program order):
        item stream     (uvarint length + bytes + u32 CRC32)
    container CRC       u32 CRC32 over everything after the version byte
                        and before this field

Every *blob* carries its own CRC32 so corruption is attributed to a
section with a byte offset; the trailing container CRC covers the varint
metadata between blobs (counts, indices, lengths).  Version 1 (magic
``SSD1``) is the same layout minus the version byte and every CRC; it is
still read for compatibility with old archives.

Function names ride along (LZ-compressed) so decompression reproduces the
program exactly; they are charged to the compressed size, just as symbol
information is part of a shipped binary.

Decoding is treated as a hostile-input boundary: all failures raise
``repro.errors`` types (:class:`~repro.errors.CorruptContainer`,
:class:`~repro.errors.ChecksumMismatch`,
:class:`~repro.errors.TruncatedStream`,
:class:`~repro.errors.LimitExceeded`) and resource limits
(:class:`DecodeLimits`) bound what a malformed length field can allocate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ChecksumMismatch, CorruptContainer, LimitExceeded
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter
from ..obs import REGISTRY

#: legacy (version 1) magic — still readable, no longer written by default
MAGIC = b"SSD1"
#: current magic
MAGIC_V2 = b"SSD2"
#: version-3 magic — the multi-codec envelope, decoded by ``repro.codecs``
MAGIC_V3 = b"SSD3"
#: the format version :func:`serialize` emits by default
FORMAT_VERSION = 2


class ContainerError(CorruptContainer):
    """Raised for malformed container bytes."""


@dataclass(frozen=True)
class DecodeLimits:
    """Resource ceilings enforced while parsing untrusted containers."""

    #: maximum functions a container may declare
    max_functions: int = 1 << 20
    #: maximum segments a container may declare
    max_segments: int = 1 << 14
    #: maximum decompressed size of any single LZ-compressed blob
    max_blob_output: int = lz77.MAX_OUTPUT_BYTES
    #: maximum dictionary entries (bases + tree nodes) per segment; the
    #: item encoding is 16-bit so anything above 0x10000 is unreferencable
    max_dict_entries: int = 1 << 16


DEFAULT_LIMITS = DecodeLimits()


@dataclass(frozen=True)
class SectionSpan:
    """Location of one section inside the container bytes (for reports
    and structure-aware fault injection)."""

    name: str
    length_offset: int        # offset of the uvarint length field
    data_offset: int          # offset of the section payload
    length: int               # payload length in bytes
    crc_offset: int = -1      # offset of the stored CRC32 (-1: none, v1)
    crc_ok: Optional[bool] = None  # None when the section carries no CRC


@dataclass
class SegmentSections:
    """Serialized pieces of one sub-dictionary."""

    first_function: int
    function_count: int
    base_blob: bytes
    tree_blob: bytes


@dataclass
class ContainerSections:
    """Everything stored in a compressed program, pre-byte-packing."""

    program_name: str
    entry: int
    function_names: List[str]
    common_base_blob: bytes
    common_tree_blob: bytes
    segments: List[SegmentSections]
    item_streams: List[bytes]

    def section_sizes(self) -> dict:
        """Per-section byte accounting for reports."""
        return {
            "names": len(lz77.compress("\n".join(self.function_names).encode())),
            "common_bases": len(self.common_base_blob),
            "common_tree": len(self.common_tree_blob),
            "segment_bases": sum(len(s.base_blob) for s in self.segments),
            "segment_trees": sum(len(s.tree_blob) for s in self.segments),
            "items": sum(len(stream) for stream in self.item_streams),
        }


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


_SERIALIZE_BYTES = REGISTRY.counter(
    "container_serialize_bytes_total", "Container bytes written by serialize().")
_PARSE_BYTES = REGISTRY.counter(
    "container_parse_bytes_total", "Container bytes presented to parse().")


def serialize(sections: ContainerSections, version: int = FORMAT_VERSION) -> bytes:
    """Pack sections into container bytes.

    ``version=2`` (default) writes the checksummed ``SSD2`` layout;
    ``version=1`` writes the legacy ``SSD1`` layout (used by tests that
    pin backward compatibility).
    """
    if version not in (1, 2):
        raise ValueError(f"unsupported container version {version}")
    if len(sections.item_streams) != len(sections.function_names):
        raise ContainerError("one item stream per function required")
    with_crc = version == 2
    writer = ByteWriter()
    writer.write_bytes(MAGIC_V2 if with_crc else MAGIC)
    if with_crc:
        writer.write_u8(FORMAT_VERSION)
    body_start = len(writer)

    def write_blob(blob: bytes) -> None:
        writer.write_uvarint(len(blob))
        writer.write_bytes(blob)
        if with_crc:
            writer.write_u32(_crc(blob))

    name = sections.program_name.encode("utf-8")
    writer.write_uvarint(len(name))
    writer.write_bytes(name)
    writer.write_uvarint(sections.entry)
    writer.write_uvarint(len(sections.function_names))
    write_blob(lz77.compress("\n".join(sections.function_names).encode("utf-8")))
    write_blob(sections.common_base_blob)
    write_blob(sections.common_tree_blob)
    writer.write_uvarint(len(sections.segments))
    for segment in sections.segments:
        writer.write_uvarint(segment.first_function)
        writer.write_uvarint(segment.function_count)
        write_blob(segment.base_blob)
        write_blob(segment.tree_blob)
    for stream in sections.item_streams:
        write_blob(stream)
    if with_crc:
        writer.write_u32(_crc(writer.getvalue()[body_start:]))
    _SERIALIZE_BYTES.inc(len(writer.getvalue()))
    return writer.getvalue()


def _read_blob(reader: ByteReader, section: str, with_crc: bool,
               trace: Optional[List[SectionSpan]],
               strict: bool) -> "tuple[bytes, Optional[bool]]":
    length_offset = reader.position
    length = reader.read_uvarint()
    data_offset = reader.position
    payload = reader.read_bytes(length)
    crc_offset = -1
    crc_ok: Optional[bool] = None
    if with_crc:
        crc_offset = reader.position
        stored = reader.read_u32()
        crc_ok = _crc(payload) == stored
    if trace is not None:
        trace.append(SectionSpan(name=section, length_offset=length_offset,
                                 data_offset=data_offset, length=length,
                                 crc_offset=crc_offset, crc_ok=crc_ok))
    if strict and crc_ok is False:
        raise ChecksumMismatch(
            f"CRC32 mismatch: stored {stored:#010x}, "
            f"computed {_crc(payload):#010x}",
            section=section, offset=data_offset)
    return payload, crc_ok


def parse(data: bytes,
          limits: DecodeLimits = DEFAULT_LIMITS,
          trace: Optional[List[SectionSpan]] = None,
          strict: bool = True) -> ContainerSections:
    """Inverse of :func:`serialize` (both format versions).

    ``trace`` (optional) receives a :class:`SectionSpan` per section as it
    is walked — the machinery behind ``ssd verify`` and the fault
    injector.  ``strict=False`` records CRC mismatches in the trace
    instead of raising, so a report can keep walking past a corrupt
    section (structural errors still raise).
    """
    _PARSE_BYTES.inc(len(data))
    reader = ByteReader(data)
    magic = reader.read_bytes(4)
    if magic == MAGIC:
        with_crc = False
    elif magic == MAGIC_V2:
        with_crc = True
        version = reader.read_u8()
        if version != FORMAT_VERSION:
            raise ContainerError(f"unsupported container version {version}",
                                 section="header", offset=4)
    elif magic == MAGIC_V3:
        # v3 is a codec envelope, not an SSD section layout; this layer
        # cannot know which payload decoder applies.
        raise ContainerError(
            "version-3 container: open it through repro.codecs "
            "(open_any/decompress_any), which dispatches on the codec id",
            section="header", offset=0)
    else:
        raise ContainerError("bad magic; not an SSD container",
                             section="header", offset=0)
    body_start = reader.position

    name_length = reader.read_uvarint()
    if name_length > 1 << 16:
        raise LimitExceeded(f"program name of {name_length} bytes",
                            section="header", offset=reader.position)
    try:
        program_name = reader.read_bytes(name_length).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ContainerError(f"program name is not UTF-8: {exc}",
                             section="header") from exc
    entry = reader.read_uvarint()
    function_count = reader.read_uvarint()
    if function_count > limits.max_functions:
        raise LimitExceeded(
            f"container declares {function_count} functions "
            f"(limit {limits.max_functions})",
            section="header", offset=reader.position)
    if function_count and entry >= function_count:
        raise ContainerError(
            f"entry index {entry} out of range for {function_count} functions",
            section="header")
    name_blob, names_crc_ok = _read_blob(reader, "names", with_crc, trace, strict)
    function_names = []
    if names_crc_ok is not False:  # skip semantic decode of known-corrupt bytes
        try:
            joined = lz77.decompress(
                name_blob, max_output=limits.max_blob_output).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContainerError(f"function names are not UTF-8: {exc}",
                                 section="names") from exc
        except CorruptContainer as exc:
            raise exc.__class__(f"names: {exc}", section="names") from exc
        function_names = joined.split("\n") if joined else []
        if len(function_names) != function_count:
            raise ContainerError(
                f"expected {function_count} function names, "
                f"got {len(function_names)}", section="names")
    common_base_blob, _ = _read_blob(reader, "common_bases", with_crc, trace, strict)
    common_tree_blob, _ = _read_blob(reader, "common_tree", with_crc, trace, strict)
    segment_count = reader.read_uvarint()
    if segment_count > limits.max_segments:
        raise LimitExceeded(
            f"container declares {segment_count} segments "
            f"(limit {limits.max_segments})",
            section="header", offset=reader.position)
    segments = []
    for sindex in range(segment_count):
        first_function = reader.read_uvarint()
        seg_count = reader.read_uvarint()
        base_blob, _ = _read_blob(reader, f"segment[{sindex}].bases",
                                  with_crc, trace, strict)
        tree_blob, _ = _read_blob(reader, f"segment[{sindex}].tree",
                                  with_crc, trace, strict)
        segments.append(SegmentSections(first_function=first_function,
                                        function_count=seg_count,
                                        base_blob=base_blob,
                                        tree_blob=tree_blob))
    item_streams = [_read_blob(reader, f"items[{findex}]",
                               with_crc, trace, strict)[0]
                    for findex in range(function_count)]
    if with_crc:
        crc_offset = reader.position
        body = data[body_start:crc_offset]
        stored = reader.read_u32()
        crc_ok = _crc(body) == stored
        if trace is not None:
            trace.append(SectionSpan(name="container", length_offset=-1,
                                     data_offset=body_start, length=len(body),
                                     crc_offset=crc_offset, crc_ok=crc_ok))
        if strict and not crc_ok:
            raise ChecksumMismatch(
                f"container CRC32 mismatch: stored {stored:#010x}, "
                f"computed {_crc(body):#010x}",
                section="container", offset=crc_offset)
    if not reader.at_end():
        raise ContainerError(f"{reader.remaining} trailing bytes in container",
                             offset=reader.position)
    return ContainerSections(program_name=program_name, entry=entry,
                             function_names=function_names,
                             common_base_blob=common_base_blob,
                             common_tree_blob=common_tree_blob,
                             segments=segments, item_streams=item_streams)


def container_version(data: bytes) -> int:
    """The format version of ``data`` (1, 2 or 3); raises on bad magic.

    Version 3 is the multi-codec envelope; its payload is decoded by the
    registered codec (``repro.codecs``), not by :func:`parse`.
    """
    if data[:4] == MAGIC:
        return 1
    if data[:4] == MAGIC_V2:
        return 2
    if data[:4] == MAGIC_V3:
        return 3
    raise ContainerError("bad magic; not an SSD container",
                         section="header", offset=0)


@dataclass
class IntegrityReport:
    """Outcome of a structural + checksum walk over container bytes."""

    version: int
    spans: List[SectionSpan] = field(default_factory=list)
    #: structural error that stopped the walk, if any
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(
            span.crc_ok is not False for span in self.spans)

    @property
    def corrupt_sections(self) -> List[SectionSpan]:
        return [span for span in self.spans if span.crc_ok is False]


def integrity_report(data: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> IntegrityReport:
    """Check magic/version/CRCs without decoding dictionary contents.

    Walks every section, recording per-section CRC status; keeps going
    past checksum failures (structural failures necessarily stop the
    walk).  Never raises on corrupt input.
    """
    spans: List[SectionSpan] = []
    try:
        version = container_version(data)
    except CorruptContainer as exc:
        return IntegrityReport(version=0, spans=spans, error=str(exc))
    report = IntegrityReport(version=version, spans=spans)
    try:
        parse(data, limits=limits, trace=spans, strict=False)
    except CorruptContainer as exc:
        report.error = str(exc)
    return report
