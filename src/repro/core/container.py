"""The compressed-program container format.

Byte layout (varints unless stated)::

    magic  b"SSD1"
    program name        (uvarint length + utf-8)
    entry function index
    function count
    name blob           (uvarint length + LZ-compressed '\\n'-joined names)
    common base blob    (uvarint length + bytes; empty when unpartitioned)
    common tree blob    (uvarint length + bytes)
    segment count
    per segment:
        first function index, function count
        base blob       (uvarint length + bytes)
        tree blob       (uvarint length + bytes)
    per function (program order):
        item stream     (uvarint length + bytes)

Function names ride along (LZ-compressed) so decompression reproduces the
program exactly; they are charged to the compressed size, just as symbol
information is part of a shipped binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter

MAGIC = b"SSD1"


class ContainerError(ValueError):
    """Raised for malformed container bytes."""


@dataclass
class SegmentSections:
    """Serialized pieces of one sub-dictionary."""

    first_function: int
    function_count: int
    base_blob: bytes
    tree_blob: bytes


@dataclass
class ContainerSections:
    """Everything stored in a compressed program, pre-byte-packing."""

    program_name: str
    entry: int
    function_names: List[str]
    common_base_blob: bytes
    common_tree_blob: bytes
    segments: List[SegmentSections]
    item_streams: List[bytes]

    def section_sizes(self) -> dict:
        """Per-section byte accounting for reports."""
        return {
            "names": len(lz77.compress("\n".join(self.function_names).encode())),
            "common_bases": len(self.common_base_blob),
            "common_tree": len(self.common_tree_blob),
            "segment_bases": sum(len(s.base_blob) for s in self.segments),
            "segment_trees": sum(len(s.tree_blob) for s in self.segments),
            "items": sum(len(stream) for stream in self.item_streams),
        }


def serialize(sections: ContainerSections) -> bytes:
    """Pack sections into container bytes."""
    writer = ByteWriter()
    writer.write_bytes(MAGIC)
    name = sections.program_name.encode("utf-8")
    writer.write_uvarint(len(name))
    writer.write_bytes(name)
    writer.write_uvarint(sections.entry)
    writer.write_uvarint(len(sections.function_names))
    name_blob = lz77.compress("\n".join(sections.function_names).encode("utf-8"))
    writer.write_uvarint(len(name_blob))
    writer.write_bytes(name_blob)
    for blob in (sections.common_base_blob, sections.common_tree_blob):
        writer.write_uvarint(len(blob))
        writer.write_bytes(blob)
    writer.write_uvarint(len(sections.segments))
    for segment in sections.segments:
        writer.write_uvarint(segment.first_function)
        writer.write_uvarint(segment.function_count)
        writer.write_uvarint(len(segment.base_blob))
        writer.write_bytes(segment.base_blob)
        writer.write_uvarint(len(segment.tree_blob))
        writer.write_bytes(segment.tree_blob)
    if len(sections.item_streams) != len(sections.function_names):
        raise ContainerError("one item stream per function required")
    for stream in sections.item_streams:
        writer.write_uvarint(len(stream))
        writer.write_bytes(stream)
    return writer.getvalue()


def parse(data: bytes) -> ContainerSections:
    """Inverse of :func:`serialize`."""
    reader = ByteReader(data)
    if reader.read_bytes(4) != MAGIC:
        raise ContainerError("bad magic; not an SSD container")
    program_name = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    entry = reader.read_uvarint()
    function_count = reader.read_uvarint()
    name_blob = reader.read_bytes(reader.read_uvarint())
    joined = lz77.decompress(name_blob).decode("utf-8")
    function_names = joined.split("\n") if joined else []
    if len(function_names) != function_count:
        raise ContainerError(
            f"expected {function_count} function names, got {len(function_names)}")
    common_base_blob = reader.read_bytes(reader.read_uvarint())
    common_tree_blob = reader.read_bytes(reader.read_uvarint())
    segments = []
    for _ in range(reader.read_uvarint()):
        first_function = reader.read_uvarint()
        seg_count = reader.read_uvarint()
        base_blob = reader.read_bytes(reader.read_uvarint())
        tree_blob = reader.read_bytes(reader.read_uvarint())
        segments.append(SegmentSections(first_function=first_function,
                                        function_count=seg_count,
                                        base_blob=base_blob,
                                        tree_blob=tree_blob))
    item_streams = [reader.read_bytes(reader.read_uvarint())
                    for _ in range(function_count)]
    if not reader.at_end():
        raise ContainerError(f"{reader.remaining} trailing bytes in container")
    return ContainerSections(program_name=program_name, entry=entry,
                             function_names=function_names,
                             common_base_blob=common_base_blob,
                             common_tree_blob=common_tree_blob,
                             segments=segments, item_streams=item_streams)
