"""Phase-one decompression: container -> dictionaries -> program.

Section 2.2.4 splits decompression into a *dictionary decompression* phase
(reverse the base-entry and tree codecs, build the instruction table) and
a *copy phase* (Algorithm 3, in ``repro.core.copy_phase``).  This module
implements phase one plus full program reconstruction, which serves as the
compression-correctness oracle: ``decompress(compress(p))`` must equal
``p`` instruction-for-instruction.

Decompression is **incremental by design**: :meth:`SSDReader.function_instructions`
decodes a single function's item stream without touching the rest of the
program — the property ("basic-block granularity") that makes SSD
interpretable in the paper's sense.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CorruptContainer, ReproError, as_corrupt
from ..isa import Function, Instruction, Program
from ..obs import REGISTRY, TRACER
from ..perf.profile import PhaseProfile, ensure
from . import container
from . import hints as hints_codec
from .container import DEFAULT_LIMITS, DecodeLimits
from ..kernels import KIND_CALL, ItemPlanes
from .items import (
    DecodedItem,
    decode_item_planes,
    planes_to_items,
    resolve_plane_targets,
)
from .layout import SegmentLayout, layouts_from_sections


class DecompressionError(CorruptContainer):
    """Raised when a container cannot be decoded consistently."""


_OPEN_RUNS = REGISTRY.counter(
    "container_open_total", "Containers parsed + phase-one decompressed.")
_DECOMPRESS_RUNS = REGISTRY.counter(
    "decompress_programs_total", "Full program reconstructions.")


@dataclass
class SSDReader:
    """A parsed container with its dictionaries decompressed (phase one).

    ``container_hash`` fingerprints the container bytes; the JIT layer uses
    it to memoize instruction tables (``repro.jit.build_tables``) so that
    re-translation after buffer eviction skips the dictionary phase.
    """

    sections: container.ContainerSections
    layouts: List[SegmentLayout]
    segment_of_function: List[int]
    container_hash: Optional[str] = None
    # Memo behind :meth:`function`.  Guarded by ``_fn_lock`` so one reader
    # can serve many threads/connections (repro.serve) without racing on
    # the dict; decode itself only reads the immutable layouts.
    _fn_cache: Dict[int, Function] = field(default_factory=dict, repr=False,
                                           compare=False)
    _fn_lock: threading.Lock = field(default_factory=threading.Lock,
                                     repr=False, compare=False)

    #: uniform reader surface (see ``repro.codecs.CodecReader``)
    codec_id: str = "ssd"
    #: SSD decodes at basic-block granularity, so the JIT can translate
    #: straight from decoded items without materializing whole functions
    supports_block_decode: bool = True

    @property
    def function_count(self) -> int:
        return len(self.sections.function_names)

    @property
    def entry(self) -> int:
        return self.sections.entry

    @property
    def program_name(self) -> str:
        return self.sections.program_name

    @property
    def function_names(self) -> List[str]:
        return self.sections.function_names

    @property
    def profile_hints(self) -> Optional["hints_codec.ProfileHints"]:
        """Decoded profile hints, or ``None`` when the container carries
        none (or carries an undecodable blob — hints are advisory, so a
        bad one degrades rather than failing the reader)."""
        blob = self.sections.profile_hints_blob
        if not blob:
            return None
        try:
            decoded = hints_codec.decode_hints(blob)
        except CorruptContainer:
            return None
        return decoded if decoded else None

    def layout_for_function(self, findex: int) -> SegmentLayout:
        return self.layouts[self.segment_of_function[findex]]

    def item_planes(self, findex: int) -> ItemPlanes:
        """Decode one function's item stream into split planes."""
        layout = self.layout_for_function(findex)
        return decode_item_planes(self.sections.item_streams[findex],
                                  layout.info_of, cache=layout)

    def decoded_items(self, findex: int) -> List[DecodedItem]:
        return planes_to_items(self.item_planes(findex))

    def function_instructions(self, findex: int) -> List[Instruction]:
        """Incrementally decompress one function back to VM instructions.

        Runs over split planes: each dictionary index expands from a
        cached instruction list (constant for every item of that index),
        and only the trailing target-carrying instruction — if any — is
        materialized per item.
        """
        layout = self.layout_for_function(findex)
        planes = self.item_planes(findex)
        targets = resolve_plane_targets(planes)
        local = layout.expansions
        shared = layout.shared_expansions
        common_limit = layout.common_limit if shared is not None else 0
        common_bases = layout.common_base_count
        instructions: List[Instruction] = []
        extend = instructions.extend
        append = instructions.append
        for index, kind, value, target in zip(planes.indices, planes.kinds,
                                              planes.values, targets):
            if index < common_limit:
                expansion = shared.get(index)
                if expansion is None:
                    expansion = _build_expansion(layout, index)
                    # A (corrupt) common path may reach into this
                    # segment's local bases; only container-wide
                    # expansions go in the shared cache.
                    path = layout.paths_of[index]
                    if all(addr < common_bases for addr in path):
                        shared[index] = expansion
                    else:
                        local[index] = expansion
            else:
                expansion = local.get(index)
                if expansion is None:
                    expansion = _build_expansion(layout, index)
                    local[index] = expansion
            prefix, last_insn, last_is_branch = expansion
            extend(prefix)
            if last_insn is None:
                continue
            if last_is_branch:
                if target is None:
                    raise DecompressionError(
                        "branch item without a resolved target")
                append(last_insn.replace_target(target))
            else:
                if kind != KIND_CALL:
                    raise DecompressionError(
                        "call item without a callee index")
                append(last_insn.replace_target(value))
        return instructions

    def function(self, findex: int) -> Function:
        """Decode function ``findex``, memoized and thread-safe.

        Concurrent callers for the same index all receive the *same*
        :class:`Function` object; the double-checked lock guarantees the
        memo dict is never mutated concurrently and each function is
        decoded at most once per reader.
        """
        if not 0 <= findex < self.function_count:
            raise IndexError(f"function index {findex} out of range "
                             f"(container has {self.function_count})")
        cached = self._fn_cache.get(findex)
        if cached is not None:
            return cached
        with self._fn_lock:
            cached = self._fn_cache.get(findex)
            if cached is None:
                cached = Function(
                    name=self.sections.function_names[findex],
                    insns=self.function_instructions(findex))
                self._fn_cache[findex] = cached
        return cached

    @property
    def cached_function_indices(self) -> List[int]:
        """Indices decoded (and memoized) so far, in sorted order."""
        return sorted(self._fn_cache)

    def program(self) -> Program:
        """Reconstruct the entire program.

        Goes through :meth:`function` so the ``_fn_cache`` memo is both
        consulted and populated: a full reconstruction after lazy paging
        (or vice versa) never decodes a function twice.
        """
        functions = [self.function(findex)
                     for findex in range(self.function_count)]
        return Program(name=self.sections.program_name, functions=functions,
                       entry=self.sections.entry)


def _build_expansion(layout: SegmentLayout, index: int):
    """Expansion cache entry for one dictionary index.

    Returns ``(prefix, last_insn, last_is_branch)``: the instructions the
    index always expands to, plus — when the path ends in an entry that
    carries its target in the item — the trailing instruction awaiting a
    target and whether it takes a branch target (else a callee index).
    Target-in-entry bases (absolute-targets ablation) resolve here, so
    their items cost nothing per occurrence either.
    """
    path = layout.paths_of[index]
    last_offset = len(path) - 1
    base_flags = layout.base_flags
    if len(base_flags) != len(layout.addr_bases):
        # Hand-built layouts (tests) skip _populate; derive flags once.
        base_flags[:] = [(b.has_target, b.target_in_entry)
                         for b in layout.addr_bases]
    if last_offset == 0:
        # Base-entry reference (the common case): no prefix to assemble.
        addr = path[0]
        has_target, target_in_entry = base_flags[addr]
        base = layout.addr_bases[addr]
        if not has_target:
            return [base.instruction], None, False
        if target_in_entry:
            return ([base.instruction.replace_target(base.stored_target)],
                    None, False)
        return [], base.instruction, base.instruction.is_branch
    prefix: List[Instruction] = []
    for offset, addr in enumerate(path):
        base = layout.addr_bases[addr]
        has_target, target_in_entry = base_flags[addr]
        if has_target:
            if offset != last_offset:
                raise DecompressionError(
                    "control transfer inside a sequence entry")
            if target_in_entry:
                # Absolute-targets ablation: the target is stored in the
                # entry.
                prefix.append(base.instruction.replace_target(
                    base.stored_target))
            else:
                return prefix, base.instruction, base.instruction.is_branch
        else:
            prefix.append(base.instruction)
    return prefix, None, False


def open_container(data: bytes,
                   profile: Optional[PhaseProfile] = None,
                   limits: DecodeLimits = DEFAULT_LIMITS) -> SSDReader:
    """Parse and phase-one-decompress a container.

    ``profile`` receives ``parse`` and ``dictionary_phase`` timings — the
    latter is the paper's phase one (base-entry and tree codecs reversed,
    index spaces rebuilt).

    This is a hostile-input boundary: any failure — structural, checksum,
    or resource — surfaces as a ``repro.errors`` type (all of which are
    ``ValueError``/``EOFError`` compatible); ``limits`` bounds what a
    malformed container can make the decoder allocate.
    """
    prof = ensure(profile)
    try:
        with TRACER.span("container.open", container_bytes=len(data)):
            with prof.phase("parse"):
                sections = container.parse(data, limits=limits)
            with prof.phase("dictionary_phase"):
                layouts = layouts_from_sections(sections.common_base_blob,
                                                sections.common_tree_blob,
                                                sections.segments,
                                                limits=limits)
    except ReproError:
        raise
    except (ValueError, EOFError) as exc:
        # Legacy decoders below this boundary may still raise bare
        # builtins; normalize so callers see exactly one taxonomy.
        raise as_corrupt(exc) from exc
    _OPEN_RUNS.inc()
    if sections.function_names and not layouts:
        raise DecompressionError(
            f"container has {len(sections.function_names)} functions "
            "but no segment dictionaries")
    segment_of_function: List[int] = [0] * len(sections.function_names)
    for sindex, segment in enumerate(sections.segments):
        for findex in range(segment.first_function,
                            segment.first_function + segment.function_count):
            if findex >= len(segment_of_function):
                raise DecompressionError(
                    f"segment {sindex} covers function {findex}, but the "
                    f"program has {len(segment_of_function)}")
            segment_of_function[findex] = sindex
    return SSDReader(sections=sections, layouts=layouts,
                     segment_of_function=segment_of_function,
                     container_hash=hashlib.sha256(data).hexdigest())


def decompress(data: bytes,
               profile: Optional[PhaseProfile] = None,
               limits: DecodeLimits = DEFAULT_LIMITS) -> Program:
    """One-call convenience: container bytes -> program.

    ``profile`` receives the phase-one timings of :func:`open_container`
    plus ``copy_phase`` — the per-function item expansion (the paper's
    Algorithm 3 analogue on the VM-instruction side).
    """
    with TRACER.span("decompress", container_bytes=len(data)):
        reader = open_container(data, profile=profile, limits=limits)
        with ensure(profile).phase("copy_phase"):
            try:
                program = reader.program()
            except ReproError:
                raise
            except (ValueError, EOFError) as exc:
                raise as_corrupt(exc) from exc
    _DECOMPRESS_RUNS.inc()
    return program
