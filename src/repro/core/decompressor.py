"""Phase-one decompression: container -> dictionaries -> program.

Section 2.2.4 splits decompression into a *dictionary decompression* phase
(reverse the base-entry and tree codecs, build the instruction table) and
a *copy phase* (Algorithm 3, in ``repro.core.copy_phase``).  This module
implements phase one plus full program reconstruction, which serves as the
compression-correctness oracle: ``decompress(compress(p))`` must equal
``p`` instruction-for-instruction.

Decompression is **incremental by design**: :meth:`SSDReader.function_instructions`
decodes a single function's item stream without touching the rest of the
program — the property ("basic-block granularity") that makes SSD
interpretable in the paper's sense.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CorruptContainer, ReproError, as_corrupt
from ..isa import Function, Instruction, Program
from ..obs import REGISTRY, TRACER
from ..perf.profile import PhaseProfile, ensure
from . import container
from .container import DEFAULT_LIMITS, DecodeLimits
from .dictionary import BaseEntry
from .items import DecodedItem, decode_items, resolve_branch_targets
from .layout import SegmentLayout, layouts_from_sections


class DecompressionError(CorruptContainer):
    """Raised when a container cannot be decoded consistently."""


_OPEN_RUNS = REGISTRY.counter(
    "container_open_total", "Containers parsed + phase-one decompressed.")
_DECOMPRESS_RUNS = REGISTRY.counter(
    "decompress_programs_total", "Full program reconstructions.")


@dataclass
class SSDReader:
    """A parsed container with its dictionaries decompressed (phase one).

    ``container_hash`` fingerprints the container bytes; the JIT layer uses
    it to memoize instruction tables (``repro.jit.build_tables``) so that
    re-translation after buffer eviction skips the dictionary phase.
    """

    sections: container.ContainerSections
    layouts: List[SegmentLayout]
    segment_of_function: List[int]
    container_hash: Optional[str] = None
    # Memo behind :meth:`function`.  Guarded by ``_fn_lock`` so one reader
    # can serve many threads/connections (repro.serve) without racing on
    # the dict; decode itself only reads the immutable layouts.
    _fn_cache: Dict[int, Function] = field(default_factory=dict, repr=False,
                                           compare=False)
    _fn_lock: threading.Lock = field(default_factory=threading.Lock,
                                     repr=False, compare=False)

    #: uniform reader surface (see ``repro.codecs.CodecReader``)
    codec_id: str = "ssd"
    #: SSD decodes at basic-block granularity, so the JIT can translate
    #: straight from decoded items without materializing whole functions
    supports_block_decode: bool = True

    @property
    def function_count(self) -> int:
        return len(self.sections.function_names)

    @property
    def entry(self) -> int:
        return self.sections.entry

    @property
    def program_name(self) -> str:
        return self.sections.program_name

    @property
    def function_names(self) -> List[str]:
        return self.sections.function_names

    def layout_for_function(self, findex: int) -> SegmentLayout:
        return self.layouts[self.segment_of_function[findex]]

    def decoded_items(self, findex: int) -> List[DecodedItem]:
        layout = self.layout_for_function(findex)
        return decode_items(self.sections.item_streams[findex], layout.info_of)

    def function_instructions(self, findex: int) -> List[Instruction]:
        """Incrementally decompress one function back to VM instructions."""
        layout = self.layout_for_function(findex)
        items = self.decoded_items(findex)
        targets = resolve_branch_targets(items)
        instructions: List[Instruction] = []
        for item, target in zip(items, targets):
            path = layout.paths_of[item.dict_index]
            start = len(instructions)
            for offset, addr in enumerate(path):
                base = layout.addr_bases[addr]
                insn = base.instruction
                if base.has_target:
                    if offset != len(path) - 1:
                        raise DecompressionError(
                            "control transfer inside a sequence entry")
                    insn = self._resolve_target(base, item, target,
                                                position=start + offset)
                instructions.append(insn)
        return instructions

    @staticmethod
    def _resolve_target(base: BaseEntry, item: DecodedItem,
                        target: Optional[int], position: int) -> Instruction:
        insn = base.instruction
        if base.target_in_entry:
            # Absolute-targets ablation: the target is stored in the entry.
            return insn.replace_target(base.stored_target)
        if insn.is_branch:
            if target is None:
                raise DecompressionError("branch item without a resolved target")
            return insn.replace_target(target)
        if item.call_target is None:
            raise DecompressionError("call item without a callee index")
        return insn.replace_target(item.call_target)

    def function(self, findex: int) -> Function:
        """Decode function ``findex``, memoized and thread-safe.

        Concurrent callers for the same index all receive the *same*
        :class:`Function` object; the double-checked lock guarantees the
        memo dict is never mutated concurrently and each function is
        decoded at most once per reader.
        """
        if not 0 <= findex < self.function_count:
            raise IndexError(f"function index {findex} out of range "
                             f"(container has {self.function_count})")
        cached = self._fn_cache.get(findex)
        if cached is not None:
            return cached
        with self._fn_lock:
            cached = self._fn_cache.get(findex)
            if cached is None:
                cached = Function(
                    name=self.sections.function_names[findex],
                    insns=self.function_instructions(findex))
                self._fn_cache[findex] = cached
        return cached

    @property
    def cached_function_indices(self) -> List[int]:
        """Indices decoded (and memoized) so far, in sorted order."""
        return sorted(self._fn_cache)

    def program(self) -> Program:
        """Reconstruct the entire program."""
        functions = [
            Function(name=self.sections.function_names[findex],
                     insns=self.function_instructions(findex))
            for findex in range(self.function_count)
        ]
        return Program(name=self.sections.program_name, functions=functions,
                       entry=self.sections.entry)


def open_container(data: bytes,
                   profile: Optional[PhaseProfile] = None,
                   limits: DecodeLimits = DEFAULT_LIMITS) -> SSDReader:
    """Parse and phase-one-decompress a container.

    ``profile`` receives ``parse`` and ``dictionary_phase`` timings — the
    latter is the paper's phase one (base-entry and tree codecs reversed,
    index spaces rebuilt).

    This is a hostile-input boundary: any failure — structural, checksum,
    or resource — surfaces as a ``repro.errors`` type (all of which are
    ``ValueError``/``EOFError`` compatible); ``limits`` bounds what a
    malformed container can make the decoder allocate.
    """
    prof = ensure(profile)
    try:
        with TRACER.span("container.open", container_bytes=len(data)):
            with prof.phase("parse"):
                sections = container.parse(data, limits=limits)
            with prof.phase("dictionary_phase"):
                layouts = layouts_from_sections(sections.common_base_blob,
                                                sections.common_tree_blob,
                                                sections.segments,
                                                limits=limits)
    except ReproError:
        raise
    except (ValueError, EOFError) as exc:
        # Legacy decoders below this boundary may still raise bare
        # builtins; normalize so callers see exactly one taxonomy.
        raise as_corrupt(exc) from exc
    _OPEN_RUNS.inc()
    if sections.function_names and not layouts:
        raise DecompressionError(
            f"container has {len(sections.function_names)} functions "
            "but no segment dictionaries")
    segment_of_function: List[int] = [0] * len(sections.function_names)
    for sindex, segment in enumerate(sections.segments):
        for findex in range(segment.first_function,
                            segment.first_function + segment.function_count):
            if findex >= len(segment_of_function):
                raise DecompressionError(
                    f"segment {sindex} covers function {findex}, but the "
                    f"program has {len(segment_of_function)}")
            segment_of_function[findex] = sindex
    return SSDReader(sections=sections, layouts=layouts,
                     segment_of_function=segment_of_function,
                     container_hash=hashlib.sha256(data).hexdigest())


def decompress(data: bytes,
               profile: Optional[PhaseProfile] = None,
               limits: DecodeLimits = DEFAULT_LIMITS) -> Program:
    """One-call convenience: container bytes -> program.

    ``profile`` receives the phase-one timings of :func:`open_container`
    plus ``copy_phase`` — the per-function item expansion (the paper's
    Algorithm 3 analogue on the VM-instruction side).
    """
    with TRACER.span("decompress", container_bytes=len(data)):
        reader = open_container(data, profile=profile, limits=limits)
        with ensure(profile).phase("copy_phase"):
            try:
                program = reader.program()
            except ReproError:
                raise
            except (ValueError, EOFError) as exc:
                raise as_corrupt(exc) from exc
    _DECOMPRESS_RUNS.inc()
    return program
