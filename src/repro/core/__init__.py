"""SSD compression — the paper's primary contribution.

Pipeline: :func:`compress` runs Algorithm 1 (``dictionary``), partitioning
(``partition``), base-entry split-stream compression (``base_entries``),
sequence-forest serialization (``sequence_tree``) and Algorithm 2
(``items``) into a single container (``container``).  :func:`decompress`
reverses phase one (``decompressor``); Algorithm 3 lives in
``copy_phase`` and is driven by the JIT runtime in ``repro.jit``.
"""

from .base_entries import decode_base_entries, encode_base_entries, order_base_entries
from .compressor import CompressedProgram, compress
from .container import (
    DEFAULT_LIMITS,
    ContainerError,
    ContainerSections,
    DecodeLimits,
    IntegrityReport,
    SectionSpan,
    container_version,
    integrity_report,
    parse,
    serialize,
)
from .copy_phase import (
    CallRelocation,
    CopyPhaseError,
    TableEntry,
    TranslatedFunction,
    copy_translate,
    read_patched_displacement,
)
from .decompressor import DecompressionError, SSDReader, decompress, open_container
from .hints import ProfileHints, decode_hints, encode_hints
from .dictionary import (
    MAX_SEQUENCE_LENGTH,
    BaseEntry,
    EntryRef,
    SSDDictionary,
    build_dictionary,
    dictionary_statistics,
)
from .lazy import LazyProgram, lazy_program
from .items import (
    DecodedItem,
    EntryInfo,
    ItemStreamError,
    decode_items,
    encode_items,
    resolve_branch_targets,
)
from .layout import SegmentLayout, build_layouts, layouts_from_sections
from .partition import (
    DEFAULT_COMMON_BUDGET,
    PartitionError,
    PartitionPlan,
    SEGMENT_CAPACITY,
    Segment,
    partition_statistics,
    plan_partition,
)
from .sequence_tree import (
    assign_sequence_indices,
    decode_sequence_tree,
    encode_sequence_tree,
    sequence_index_map,
)

__all__ = [
    "BaseEntry",
    "CallRelocation",
    "CompressedProgram",
    "ContainerError",
    "ContainerSections",
    "CopyPhaseError",
    "DEFAULT_COMMON_BUDGET",
    "DEFAULT_LIMITS",
    "DecodeLimits",
    "DecodedItem",
    "DecompressionError",
    "ProfileHints",
    "EntryInfo",
    "IntegrityReport",
    "SectionSpan",
    "EntryRef",
    "ItemStreamError",
    "LazyProgram",
    "MAX_SEQUENCE_LENGTH",
    "PartitionError",
    "PartitionPlan",
    "SEGMENT_CAPACITY",
    "SSDDictionary",
    "SSDReader",
    "Segment",
    "SegmentLayout",
    "TableEntry",
    "TranslatedFunction",
    "assign_sequence_indices",
    "build_dictionary",
    "build_layouts",
    "compress",
    "container_version",
    "copy_translate",
    "decode_base_entries",
    "decode_items",
    "decode_sequence_tree",
    "decompress",
    "dictionary_statistics",
    "encode_base_entries",
    "encode_items",
    "encode_sequence_tree",
    "integrity_report",
    "layouts_from_sections",
    "lazy_program",
    "open_container",
    "order_base_entries",
    "decode_hints",
    "encode_hints",
    "parse",
    "partition_statistics",
    "plan_partition",
    "read_patched_displacement",
    "resolve_branch_targets",
    "sequence_index_map",
    "serialize",
]
