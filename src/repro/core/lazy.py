"""Lazy, incrementally-decompressed program execution.

The paper defines a compressed program as *interpretable* when it "can be
decompressed at basic-block granularity with reasonable efficiency",
enabling interpreters to decompress incrementally during execution
(section 1).  This module makes that property executable: a
:class:`LazyProgram` looks like a normal :class:`~repro.isa.Program` but
materializes each function from the container only when control first
reaches it.  Run it directly in the interpreter:

    reader = open_container(compressed)
    lazy = LazyProgram(reader)
    result = run_program(lazy)
    lazy.decompressed_count   # how much of the program was ever touched

Code never executed is never decompressed — the measurable form of the
paper's incremental-decompression claim (and the start of its
application-startup story).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Set

from ..isa import Function

if TYPE_CHECKING:  # circular at runtime: repro.codecs builds on repro.core
    from ..codecs.base import CodecReader


class _LazyFunctionList:
    """Sequence facade over the container's functions.

    ``__getitem__`` decompresses on first access and caches; ``len`` and
    iteration behave like a list of Functions.  Decode and memoization
    live in the reader's ``function()`` (thread-safe), so several lazy
    programs — or several threads — can share one reader; this list only
    tracks which indices *it* has touched.
    """

    def __init__(self, reader: "CodecReader") -> None:
        self._reader = reader
        self._touched: Set[int] = set()

    def __len__(self) -> int:
        return self._reader.function_count

    def __getitem__(self, findex: int) -> Function:
        if isinstance(findex, slice):
            raise TypeError("lazy function lists do not support slicing")
        if findex < 0:
            findex += len(self)
        if not 0 <= findex < len(self):
            raise IndexError(f"function index {findex} out of range")
        function = self._reader.function(findex)
        self._touched.add(findex)
        return function

    def __iter__(self) -> Iterator[Function]:
        for findex in range(len(self)):
            yield self[findex]

    @property
    def materialized(self) -> Set[int]:
        return set(self._touched)


class LazyProgram:
    """A Program-shaped view of a compressed container.

    Duck-types the pieces the interpreter (and most analyses) use:
    ``name``, ``entry``, ``functions`` (indexable, measurable).  Functions
    decompress on first access.  Works over any codec's reader — anything
    with the ``repro.codecs.CodecReader`` surface (``program_name``,
    ``entry``, ``function_count``, ``function(findex)``).
    """

    def __init__(self, reader: "CodecReader") -> None:
        self._reader = reader
        self.name = reader.program_name
        self.entry = reader.entry
        self.functions = _LazyFunctionList(reader)

    @property
    def reader(self) -> "CodecReader":
        return self._reader

    @property
    def decompressed_count(self) -> int:
        """Functions materialized so far."""
        return len(self.functions.materialized)

    @property
    def decompressed_functions(self) -> Set[int]:
        return self.functions.materialized

    @property
    def decompressed_fraction(self) -> float:
        total = len(self.functions)
        return self.decompressed_count / total if total else 0.0

    def prefetch(self, indices) -> None:
        """Eagerly materialize selected functions (startup sets, tests)."""
        for findex in indices:
            self.functions[findex]  # noqa: B018 - materializing side effect


def lazy_program(container_bytes: bytes) -> LazyProgram:
    """One call: container bytes (any codec) -> lazily-decompressed program."""
    from ..codecs import open_any  # late: repro.codecs builds on repro.core

    return LazyProgram(open_any(container_bytes))
