"""Lazy, incrementally-decompressed program execution.

The paper defines a compressed program as *interpretable* when it "can be
decompressed at basic-block granularity with reasonable efficiency",
enabling interpreters to decompress incrementally during execution
(section 1).  This module makes that property executable: a
:class:`LazyProgram` looks like a normal :class:`~repro.isa.Program` but
materializes each function from the container only when control first
reaches it.  Run it directly in the interpreter:

    reader = open_container(compressed)
    lazy = LazyProgram(reader)
    result = run_program(lazy)
    lazy.decompressed_count   # how much of the program was ever touched

Code never executed is never decompressed — the measurable form of the
paper's incremental-decompression claim (and the start of its
application-startup story).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Set

from ..isa import Function

if TYPE_CHECKING:  # circular at runtime: repro.codecs builds on repro.core
    from ..codecs.base import CodecReader
    from ..profile.markov import MarkovPredictor


class _LazyFunctionList:
    """Sequence facade over the container's functions.

    ``__getitem__`` decompresses on first access and caches; ``len`` and
    iteration behave like a list of Functions.  Decode and memoization
    live in the reader's ``function()`` (thread-safe), so several lazy
    programs — or several threads — can share one reader; this list only
    tracks which indices *it* has touched.
    """

    def __init__(self, reader: "CodecReader", on_access=None) -> None:
        self._reader = reader
        self._touched: Set[int] = set()
        self._on_access = on_access

    def __len__(self) -> int:
        return self._reader.function_count

    def __getitem__(self, findex: int) -> Function:
        if isinstance(findex, slice):
            raise TypeError("lazy function lists do not support slicing")
        if findex < 0:
            findex += len(self)
        if not 0 <= findex < len(self):
            raise IndexError(f"function index {findex} out of range")
        function = self._reader.function(findex)
        self._touched.add(findex)
        if self._on_access is not None:
            self._on_access(findex)
        return function

    def __iter__(self) -> Iterator[Function]:
        for findex in range(len(self)):
            yield self[findex]

    @property
    def materialized(self) -> Set[int]:
        return set(self._touched)


class LazyProgram:
    """A Program-shaped view of a compressed container.

    Duck-types the pieces the interpreter (and most analyses) use:
    ``name``, ``entry``, ``functions`` (indexable, measurable).  Functions
    decompress on first access.  Works over any codec's reader — anything
    with the ``repro.codecs.CodecReader`` surface (``program_name``,
    ``entry``, ``function_count``, ``function(findex)``).
    """

    def __init__(self, reader: "CodecReader",
                 predictor: Optional["MarkovPredictor"] = None) -> None:
        self._reader = reader
        self.name = reader.program_name
        self.entry = reader.entry
        self.functions = _LazyFunctionList(
            reader,
            on_access=self._note_access if predictor is not None else None)
        #: optional next-function predictor; when present it is seeded
        #: from the container's profile hints and learns every
        #: first-touch transition, so ``prefetch_predicted`` can warm
        #: the next functions ahead of control flow
        self.predictor = predictor
        self._last_access: Optional[int] = None
        if predictor is not None:
            hints = getattr(reader, "profile_hints", None)
            if hints is not None:
                predictor.seed(hints.edges)

    @property
    def reader(self) -> "CodecReader":
        return self._reader

    @property
    def decompressed_count(self) -> int:
        """Functions materialized so far."""
        return len(self.functions.materialized)

    @property
    def decompressed_functions(self) -> Set[int]:
        return self.functions.materialized

    @property
    def decompressed_fraction(self) -> float:
        total = len(self.functions)
        return self.decompressed_count / total if total else 0.0

    def prefetch(self, indices) -> None:
        """Eagerly materialize selected functions (startup sets, tests)."""
        for findex in indices:
            self.functions[findex]  # noqa: B018 - materializing side effect

    def _note_access(self, findex: int) -> None:
        if self.predictor is not None and self._last_access is not None:
            self.predictor.observe(self._last_access, findex)
        self._last_access = findex

    def prefetch_hot(self, limit: Optional[int] = None) -> int:
        """Materialize the container's hinted hot set (hottest first);
        returns how many functions were fetched.  A container without
        profile hints is a no-op."""
        from ..profile.markov import record_client_fetches  # late: no cycle

        hints = getattr(self._reader, "profile_hints", None)
        if hints is None:
            return 0
        hot = [f for f in hints.hot if 0 <= f < len(self.functions)]
        if limit is not None:
            hot = hot[:limit]
        fresh = [f for f in hot if f not in self.functions.materialized]
        self.prefetch(fresh)
        record_client_fetches(len(fresh))
        return len(fresh)

    def prefetch_predicted(self, findex: Optional[int] = None,
                           depth: int = 2) -> int:
        """Materialize the predicted successors of ``findex`` (default:
        the most recent access); returns how many were fetched."""
        from ..profile.markov import record_client_fetches  # late: no cycle

        if self.predictor is None:
            return 0
        src = self._last_access if findex is None else findex
        if src is None:
            return 0
        fresh = [f for f in self.predictor.predict(src, depth)
                 if isinstance(f, int) and 0 <= f < len(self.functions)
                 and f not in self.functions.materialized]
        self.prefetch(fresh)
        record_client_fetches(len(fresh))
        return len(fresh)


def lazy_program(container_bytes: bytes) -> LazyProgram:
    """One call: container bytes (any codec) -> lazily-decompressed program."""
    from ..codecs import open_any  # late: repro.codecs builds on repro.core

    return LazyProgram(open_any(container_bytes))
