"""Profile-hint wire codec: the container's view of an access profile.

A profile-guided container (see docs/LAYOUT.md) carries two extra
sections past the per-function item streams:

* a **function-order blob** — the physical placement permutation
  (``order[slot] = logical function index``).  It lives *inside* the
  CRC-covered body: if the permutation is corrupt the container is
  unreadable and must fail loudly, never remap bodies silently.
* a **profile-hint blob** — hot-set ranks plus weighted successor
  edges.  It trails the container CRC and carries only its own CRC32:
  hints are advisory, so corruption degrades to no-hint behaviour.

This module is pure serialization — :class:`ProfileHints` plus the
varint encode/decode pairs for both blobs — so ``repro.core.container``
can import it without dragging in the planner (``repro.profile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple

from ..errors import CorruptContainer
from ..lz.varint import ByteReader, ByteWriter

HINTS_VERSION = 1

# Caps on the advisory payload: hints bigger than this are nonsense (or
# an attack) — reject during decode so a lying length can't balloon.
MAX_HINT_HOT = 1 << 20
MAX_HINT_EDGES = 1 << 20


class LayoutPlanLike(Protocol):
    """What the compressor needs from a plan (structural, so
    ``repro.core`` never has to import the planner package)."""

    @property
    def order(self) -> Sequence[int]: ...

    def hints(self) -> "ProfileHints": ...


@dataclass(frozen=True)
class ProfileHints:
    """Decoded contents of a container's profile-hint section.

    ``hot`` ranks logical function indices hottest-first; ``edges`` are
    ``(src, dst, weight)`` successor transitions observed in the
    profiling trace, heaviest-first.  Both are advisory: a reader that
    ignores them decodes identical bytes.
    """

    hot: Tuple[int, ...] = ()
    edges: Tuple[Tuple[int, int, int], ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.hot or self.edges)


def encode_order(order: Sequence[int]) -> bytes:
    """Serialize the physical->logical placement permutation."""
    writer = ByteWriter()
    writer.write_uvarint(len(order))
    for findex in order:
        writer.write_uvarint(findex)
    return writer.getvalue()


def decode_order(payload: bytes, function_count: int) -> List[int]:
    """Parse and validate a placement permutation.

    Raises :class:`CorruptContainer` unless the payload is exactly a
    permutation of ``range(function_count)`` — a corrupt order would
    silently attach the wrong body to a function name, which is the one
    failure mode the format must never allow.
    """
    reader = ByteReader(payload)
    count = reader.read_uvarint()
    if count != function_count:
        raise CorruptContainer(
            f"function order lists {count} slots for "
            f"{function_count} functions", section="function_order")
    order = [reader.read_uvarint() for _ in range(count)]
    if not reader.at_end():
        raise CorruptContainer(
            f"{reader.remaining} trailing bytes after function order",
            section="function_order")
    if sorted(order) != list(range(function_count)):
        raise CorruptContainer(
            "function order is not a permutation", section="function_order")
    return order


def encode_hints(hints: ProfileHints) -> bytes:
    """Serialize hot-set ranks and successor edges."""
    writer = ByteWriter()
    writer.write_uvarint(HINTS_VERSION)
    writer.write_uvarint(len(hints.hot))
    for findex in hints.hot:
        writer.write_uvarint(findex)
    writer.write_uvarint(len(hints.edges))
    for src, dst, weight in hints.edges:
        writer.write_uvarint(src)
        writer.write_uvarint(dst)
        writer.write_uvarint(weight)
    return writer.getvalue()


def decode_hints(payload: bytes) -> ProfileHints:
    """Parse a profile-hint payload.

    Raises :class:`CorruptContainer` on any structural problem; callers
    on the serve/read path catch that and degrade to no hints.
    """
    if not payload:
        return ProfileHints()
    reader = ByteReader(payload)
    version = reader.read_uvarint()
    if version != HINTS_VERSION:
        raise CorruptContainer(
            f"unknown profile-hint version {version}", section="profile_hints")
    hot_count = reader.read_uvarint()
    if hot_count > MAX_HINT_HOT:
        raise CorruptContainer(
            f"hint hot set of {hot_count} exceeds cap {MAX_HINT_HOT}",
            section="profile_hints")
    hot = tuple(reader.read_uvarint() for _ in range(hot_count))
    edge_count = reader.read_uvarint()
    if edge_count > MAX_HINT_EDGES:
        raise CorruptContainer(
            f"{edge_count} hint edges exceed cap {MAX_HINT_EDGES}",
            section="profile_hints")
    edges = tuple(
        (reader.read_uvarint(), reader.read_uvarint(), reader.read_uvarint())
        for _ in range(edge_count))
    if not reader.at_end():
        raise CorruptContainer(
            f"{reader.remaining} trailing bytes after profile hints",
            section="profile_hints")
    return ProfileHints(hot=hot, edges=edges)
