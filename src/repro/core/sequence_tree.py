"""Sequence-entry compression: the forest of prefix trees (section 2.2.2).

All sequence entries starting with the same instruction share one tree;
shared prefixes share nodes.  The forest serializes as a stream of 16-bit
tokens in prefix (DFS) order:

* when the dictionary's base-index space fits in 15 bits, a token with the
  high bit clear *descends* to a child whose base index is the low 15
  bits, and ``0x8000`` pops one level (the paper's "high-order bit of each
  index" variant);
* otherwise tokens are full 16-bit base indices and the reserved value
  ``0xFFFF`` marks upward traversal (the paper's "special index value"
  variant).  Index ``0xFFFF`` is kept out of the base space by the
  partitioning layer.

Sequence-entry 16-bit indices are *not transmitted*: both sides number the
depth >= 1 nodes in DFS visit order.  Nodes that exist only as shared
prefixes of longer entries receive (unused) indices too — that is the
price of the paper's "few pages of code" simplicity, and it is small
because shared prefixes are common.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import CorruptContainer
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter

_POP_HIGH_BIT = 0x8000
_POP_RESERVED = 0xFFFF
_HIGH_BIT_LIMIT = 1 << 15


@dataclass
class _Node:
    children: Dict[int, "_Node"] = field(default_factory=dict)


def _build_forest(sequences: Iterable[Tuple[int, ...]]) -> Dict[int, _Node]:
    roots: Dict[int, _Node] = {}
    for sequence in sequences:
        if len(sequence) < 2:
            raise ValueError(f"sequence entries have length >= 2, got {sequence}")
        node = roots.setdefault(sequence[0], _Node())
        for base_id in sequence[1:]:
            node = node.children.setdefault(base_id, _Node())
    return roots


def assign_sequence_indices(
        sequences: Iterable[Tuple[int, ...]]) -> Dict[Tuple[int, ...], int]:
    """DFS-order rank of every depth >= 1 node, keyed by its path.

    The returned map contains *all* nodes (shared prefixes included); a
    sequence entry's 16-bit index is ``base_count + rank``.
    """
    roots = _build_forest(sequences)
    ranks: Dict[Tuple[int, ...], int] = {}
    counter = 0

    def visit(node: _Node, path: Tuple[int, ...]) -> None:
        nonlocal counter
        for base_id in sorted(node.children):
            child_path = path + (base_id,)
            ranks[child_path] = counter
            counter += 1
            visit(node.children[base_id], child_path)

    for root_id in sorted(roots):
        visit(roots[root_id], (root_id,))
    return ranks


def encode_sequence_tree(sequences: Iterable[Tuple[int, ...]],
                         base_space: int) -> bytes:
    """Serialize the forest; ``base_space`` picks the token encoding.

    The token stream is LZ-compressed on the way out: the forest is part
    of the *split-stream compressed dictionary* (section 2.2), and its
    token stream is highly repetitive (popular base indices recur, and
    every node carries a constant pop token).
    """
    if base_space > _POP_RESERVED:
        raise ValueError(
            f"base space {base_space} cannot be addressed with 16-bit tokens")
    use_high_bit = base_space <= _HIGH_BIT_LIMIT
    pop_token = _POP_HIGH_BIT if use_high_bit else _POP_RESERVED
    roots = _build_forest(sequences)
    writer = ByteWriter()
    writer.write_u8(1 if use_high_bit else 0)
    writer.write_uvarint(len(roots))

    def emit(value: int) -> None:
        writer.write_u16(value)

    def check(base_id: int) -> int:
        if base_id >= base_space:
            raise ValueError(f"base id {base_id} outside base space {base_space}")
        if use_high_bit and base_id >= _HIGH_BIT_LIMIT:
            raise ValueError(f"base id {base_id} needs the reserved-pop encoding")
        if not use_high_bit and base_id == _POP_RESERVED:
            raise ValueError("base id collides with the reserved pop token")
        return base_id

    def visit(node: _Node) -> None:
        for base_id in sorted(node.children):
            emit(check(base_id))
            visit(node.children[base_id])
            emit(pop_token)

    for root_id in sorted(roots):
        emit(check(root_id))
        visit(roots[root_id])
        emit(pop_token)
    payload = writer.getvalue()
    out = ByteWriter()
    out.write_bytes(lz77.compress(payload))
    return out.getvalue()


def decode_sequence_tree(blob: bytes) -> Dict[Tuple[int, ...], int]:
    """Parse the forest; returns path -> DFS rank (as in assignment)."""
    reader = ByteReader(lz77.decompress(blob))
    use_high_bit = bool(reader.read_u8())
    root_count = reader.read_uvarint()
    pop_token = _POP_HIGH_BIT if use_high_bit else _POP_RESERVED
    ranks: Dict[Tuple[int, ...], int] = {}
    counter = 0
    path: List[int] = []
    roots_seen = 0
    while roots_seen < root_count:
        token = reader.read_u16()
        if token == pop_token:
            if not path:
                raise CorruptContainer("corrupt sequence tree: pop past a root")
            path.pop()
            if not path:
                roots_seen += 1
            continue
        if use_high_bit and token & _POP_HIGH_BIT:
            raise CorruptContainer(f"corrupt sequence tree: unexpected token {token:#x}")
        path.append(token)
        if len(path) >= 2:
            ranks[tuple(path)] = counter
            counter += 1
    return ranks


def sequence_index_map(sequences: Iterable[Tuple[int, ...]],
                       base_count: int) -> Dict[Tuple[int, ...], int]:
    """16-bit dictionary index of every sequence entry (and prefix node)."""
    return {path: base_count + rank
            for path, rank in assign_sequence_indices(sequences).items()}
