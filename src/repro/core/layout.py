"""Index-space layout shared by the compressor and the decompressor.

Both sides must assign identical 16-bit indices to every dictionary entry
without transmitting them.  The agreement comes from two canonical orders:

* base entries are numbered by their position in the section-2.2.1
  serialization order (:func:`order_base_entries`);
* sequence-tree nodes are numbered in DFS visit order of the serialized
  forest.

This module builds, for each segment, a :class:`SegmentLayout` holding the
maps both directions need.  ``build_layouts`` works from the compressor's
in-memory dictionary; ``layouts_from_sections`` rebuilds the same layouts
from decoded container sections — property tests assert they agree.

See ``repro.core.partition`` for the index-space diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CorruptContainer, LimitExceeded
from ..isa import info as _op_info
from .base_entries import decode_base_entries, encode_base_entries, order_base_entries
from .container import DEFAULT_LIMITS, DecodeLimits, SegmentSections
from .dictionary import BaseEntry, SSDDictionary
from .items import EntryInfo
from .partition import PartitionPlan
from .sequence_tree import (
    assign_sequence_indices,
    decode_sequence_tree,
    encode_sequence_tree,
)


@dataclass
class SegmentLayout:
    """Everything needed to encode or decode one segment's item streams.

    * ``addr_bases[a]`` — the base entry with *addressing id* ``a``
      (common bases first, then this segment's local bases);
    * ``info_of`` — 16-bit dictionary index -> :class:`EntryInfo`;
    * ``paths_of`` — 16-bit dictionary index -> tuple of addressing ids
      (length 1 for base entries) — the decode side's expansion table;
    * ``index_of`` — compressor side only: a reference's provisional
      base-id tuple -> 16-bit dictionary index.
    """

    addr_bases: List[BaseEntry]
    info_of: Dict[int, EntryInfo] = field(default_factory=dict)
    paths_of: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    index_of: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: lazily built numpy :class:`~repro.kernels.items.ItemDecodeTable`
    #: (decode-side cache; excluded from equality so rebuilt layouts still
    #: compare equal to freshly built ones)
    kernel_table: object = field(default=None, compare=False, repr=False)
    #: lazily built per-index instruction expansions (see
    #: ``SSDReader.function_instructions``)
    expansions: Dict[int, tuple] = field(default_factory=dict, compare=False,
                                         repr=False)
    #: per-base ``(has_target, target_in_entry)`` computed once during
    #: :func:`_populate` — the decode hot path reads these instead of the
    #: ``BaseEntry`` property chain
    base_flags: List[Tuple[bool, bool]] = field(default_factory=list,
                                                compare=False, repr=False)
    #: expansions for indices below ``common_limit``, shared by every
    #: layout of the container (the common dictionary is identical across
    #: segments, so each entry expands once per container, not per segment)
    shared_expansions: Optional[Dict[int, tuple]] = field(
        default=None, compare=False, repr=False)
    #: first dictionary index that is segment-local (``cb + cs``)
    common_limit: int = field(default=0, compare=False, repr=False)
    #: number of common bases (addressing ids below this are shared)
    common_base_count: int = field(default=0, compare=False, repr=False)


#: Interned EntryInfo values — the (length, flags) space is tiny, and one
#: container decodes tens of thousands of dictionary paths to it.
_INFO_INTERN: Dict[Tuple[int, bool, bool, int], EntryInfo] = {}


def _interned_info(length: int, is_branch: bool, is_call: bool,
                   target_size: int) -> EntryInfo:
    key = (length, is_branch, is_call, target_size)
    cached = _INFO_INTERN.get(key)
    if cached is None:
        cached = EntryInfo(length=length, is_branch=is_branch,
                           is_call=is_call, target_size=target_size)
        _INFO_INTERN[key] = cached
    return cached


def _entry_flags(layout: SegmentLayout) -> List[Tuple[bool, bool, int]]:
    """Per-base ``(is_branch, is_call, target_size)`` after the
    target-in-entry rule, computed once so :func:`_populate` does not walk
    the ``BaseEntry`` property chain for every dictionary path.  Fills
    ``layout.base_flags`` as a side effect for the decode hot path."""
    flags: List[Tuple[bool, bool, int]] = []
    base_flags = layout.base_flags
    for base in layout.addr_bases:
        meta = _op_info(base.instruction.op)
        is_branch = meta.is_branch
        is_call = meta.is_call
        has_target = is_branch or is_call
        target_in_entry = base.stored_target is not None
        base_flags.append((has_target, target_in_entry))
        carries = has_target and not target_in_entry
        flags.append((
            is_branch and carries,
            is_call and carries,
            (base.target_size or 0) if carries else 0,
        ))
    return flags


def _populate(layout: SegmentLayout,
              common_base_count: int,
              common_ranks: Dict[Tuple[int, ...], int],
              local_base_count: int,
              local_ranks: Dict[Tuple[int, ...], int]) -> Tuple[int, int]:
    """Fill ``info_of``/``paths_of``; returns (common node count, local base offset)."""
    cb = common_base_count
    cs = len(common_ranks)
    lb = local_base_count
    flags = _entry_flags(layout)
    info_of = layout.info_of
    paths_of = layout.paths_of

    def entry_info(path: Tuple[int, ...]) -> EntryInfo:
        is_branch, is_call, target_size = flags[path[-1]]
        return _interned_info(len(path), is_branch, is_call, target_size)

    # Common bases: [0, cb)
    for addr in range(cb):
        info_of[addr] = entry_info((addr,))
        paths_of[addr] = (addr,)
    # Common tree nodes: [cb, cb+cs)
    for path, rank in common_ranks.items():
        index = cb + rank
        info_of[index] = entry_info(path)
        paths_of[index] = path
    # Local bases: [cb+cs, cb+cs+lb), addressing ids [cb, cb+lb)
    for position in range(lb):
        addr = cb + position
        index = cb + cs + position
        info_of[index] = entry_info((addr,))
        paths_of[index] = (addr,)
    # Local tree nodes: [cb+cs+lb, ...)
    for path, rank in local_ranks.items():
        index = cb + cs + lb + rank
        info_of[index] = entry_info(path)
        paths_of[index] = path
    layout.common_limit = cb + cs
    layout.common_base_count = cb
    return cs, cb + cs


def build_layouts(dictionary: SSDDictionary, plan: PartitionPlan,
                  codec: str = "lz") -> Tuple[List[SegmentLayout], bytes, bytes,
                                              List[SegmentSections]]:
    """Compressor side: layouts plus the serialized dictionary blobs."""
    # -- common dictionary -------------------------------------------------
    common_entries = [dictionary.base_entries[p] for p in plan.common_base_ids]
    ordered_common = order_base_entries(common_entries)
    addr_of_provisional: Dict[int, int] = {}
    base_by_key = {entry.key: provisional
                   for provisional, entry in enumerate(dictionary.base_entries)}
    for addr, entry in enumerate(ordered_common):
        addr_of_provisional[base_by_key[entry.key]] = addr
    cb = len(ordered_common)

    def map_path(sequence: Tuple[int, ...], local_map: Dict[int, int]) -> Tuple[int, ...]:
        return tuple(
            addr_of_provisional[p] if p in addr_of_provisional else local_map[p]
            for p in sequence)

    common_mapped = [tuple(addr_of_provisional[p] for p in sequence)
                     for sequence in plan.common_sequences]
    common_ranks = assign_sequence_indices(common_mapped)
    common_base_blob = encode_base_entries(ordered_common, codec=codec) if ordered_common else b""
    common_tree_blob = encode_sequence_tree(common_mapped, base_space=max(cb, 1)) \
        if common_mapped else b""
    common_seq_index = {path: cb + rank for path, rank in common_ranks.items()}

    layouts: List[SegmentLayout] = []
    segment_sections: List[SegmentSections] = []
    for segment in plan.segments:
        local_ids = sorted(segment.local_base_ids)
        ordered_local = order_base_entries(
            [dictionary.base_entries[p] for p in local_ids])
        local_map: Dict[int, int] = {}
        for position, entry in enumerate(ordered_local):
            local_map[base_by_key[entry.key]] = cb + position
        lb = len(ordered_local)

        local_mapped = sorted(map_path(s, local_map) for s in segment.local_sequences)
        local_ranks = assign_sequence_indices(local_mapped)
        base_blob = encode_base_entries(ordered_local, codec=codec) if ordered_local else b""
        tree_blob = encode_sequence_tree(local_mapped, base_space=cb + lb) \
            if local_mapped else b""

        layout = SegmentLayout(addr_bases=ordered_common + ordered_local)
        cs, local_base_index_start = _populate(
            layout, cb, common_ranks, lb, local_ranks)

        # Compressor-side reference map (provisional ids -> final index).
        for provisional in plan.common_base_ids:
            layout.index_of[(provisional,)] = addr_of_provisional[provisional]
        for provisional in local_ids:
            layout.index_of[(provisional,)] = cs + local_map[provisional]
        for sequence in segment.local_sequences:
            mapped = map_path(sequence, local_map)
            layout.index_of[tuple(sequence)] = cb + cs + lb + local_ranks[mapped]
        for sequence, mapped in zip(plan.common_sequences, common_mapped):
            layout.index_of[tuple(sequence)] = common_seq_index[mapped]

        layouts.append(layout)
        segment_sections.append(SegmentSections(
            first_function=segment.function_indices[0] if segment.function_indices else 0,
            function_count=len(segment.function_indices),
            base_blob=base_blob,
            tree_blob=tree_blob,
        ))
    return layouts, common_base_blob, common_tree_blob, segment_sections


def _check_decoded_segment(sindex: int, addr_base_count: int,
                           common_ranks: Dict[Tuple[int, ...], int],
                           local_ranks: Dict[Tuple[int, ...], int],
                           limits: DecodeLimits) -> None:
    """Reject decoded dictionaries whose paths index outside the base
    space or whose entry total exceeds the decode limit — a corrupt tree
    blob must surface as a typed error, never an ``IndexError`` later."""
    total = addr_base_count + len(common_ranks) + len(local_ranks)
    if total > limits.max_dict_entries:
        raise LimitExceeded(
            f"segment {sindex} declares {total} dictionary entries "
            f"(limit {limits.max_dict_entries})",
            section=f"segment[{sindex}]")
    for ranks in (common_ranks, local_ranks):
        for path in ranks:
            for addr in path:
                if addr >= addr_base_count:
                    raise CorruptContainer(
                        f"segment {sindex}: sequence path references base "
                        f"{addr}, but only {addr_base_count} bases exist",
                        section=f"segment[{sindex}].tree")


def layouts_from_sections(common_base_blob: bytes, common_tree_blob: bytes,
                          segments: List[SegmentSections],
                          limits: DecodeLimits = DEFAULT_LIMITS,
                          ) -> List[SegmentLayout]:
    """Decompressor side: rebuild layouts from container sections."""
    common_bases = decode_base_entries(common_base_blob) if common_base_blob else []
    common_ranks = decode_sequence_tree(common_tree_blob) if common_tree_blob else {}
    cb = len(common_bases)
    layouts: List[SegmentLayout] = []
    # Every layout shares the container's common dictionary, so share one
    # expansion cache (and one kernel table slot would not work: local
    # indices differ per segment, but common indices are identical).
    common_expansions: Dict[int, tuple] = {}
    for sindex, segment in enumerate(segments):
        local_bases = decode_base_entries(segment.base_blob) if segment.base_blob else []
        local_ranks = decode_sequence_tree(segment.tree_blob) if segment.tree_blob else {}
        _check_decoded_segment(sindex, cb + len(local_bases),
                               common_ranks, local_ranks, limits)
        layout = SegmentLayout(addr_bases=common_bases + local_bases,
                               shared_expansions=common_expansions)
        _populate(layout, cb, common_ranks, len(local_bases), local_ranks)
        layouts.append(layout)
    return layouts
