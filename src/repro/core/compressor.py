"""The SSD compressor: program -> container bytes.

Orchestrates the pipeline::

    build_dictionary (Algorithm 1)
      -> plan_partition (section 2.1, for > 2^16 entries)
      -> order + encode base entries per dictionary (section 2.2.1)
      -> encode sequence forests (section 2.2.2)
      -> encode SSD items per function (Algorithm 2)
      -> serialize the container

The compressor also exposes the ``branch_targets="absolute"`` variant the
paper measured against (targets stored inside dictionary entries instead
of pc-relative in the item stream); SSD proper uses ``"relative"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import Program
from ..obs import REGISTRY, TRACER
from ..perf.parallel import fanout, get_shared, resolve_jobs
from ..perf.profile import PhaseProfile, ensure
from . import container, hints
from .dictionary import (
    MAX_SEQUENCE_LENGTH,
    EntryRef,
    SSDDictionary,
    build_dictionary,
    dictionary_statistics,
)
from .items import encode_items
from .layout import build_layouts
from .partition import DEFAULT_COMMON_BUDGET, plan_partition, partition_statistics


_COMPRESS_RUNS = REGISTRY.counter(
    "compress_programs_total", "Programs compressed end to end.")
_COMPRESS_OUTPUT = REGISTRY.counter(
    "compress_output_bytes_total", "Container bytes produced by compress().")
_COMPRESS_INPUT = REGISTRY.counter(
    "compress_input_instructions_total",
    "VM instructions fed into compress().")


@dataclass
class CompressedProgram:
    """Compressor output: the container bytes plus measurement hooks.

    Satisfies the :class:`repro.codecs.CompressedProgram` interface
    (``codec_id``/``data``/``size``/``size_report``) so SSD output flows
    through the same seams as every other registered codec.
    """

    data: bytes
    dictionary_stats: Dict[str, float]
    partition_stats: Dict[str, float]
    section_sizes: Dict[str, int]
    codec_id: str = "ssd"

    @property
    def size(self) -> int:
        return len(self.data)

    def size_report(self) -> Dict[str, int]:
        """Per-section byte accounting (the codec-interface spelling)."""
        return dict(self.section_sizes)


def _encode_items_chunk(tasks: List[Tuple[int, List[EntryRef]]]) -> List[bytes]:
    """Fan-out worker: encode item streams for a chunk of functions."""
    layouts, segment_of_function = get_shared()
    streams: List[bytes] = []
    for findex, refs in tasks:
        layout = layouts[segment_of_function[findex]]
        streams.append(encode_items(refs, layout.index_of, layout.info_of))
    return streams


def _encode_item_streams(dictionary: SSDDictionary, plan, layouts,
                         jobs: int) -> List[bytes]:
    """Per-function item encoding, serially or over worker processes."""
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(dictionary.function_refs) < 2:
        streams: List[bytes] = []
        segment_of_function = plan.segment_of_function
        for findex, refs in enumerate(dictionary.function_refs):
            layout = layouts[segment_of_function[findex]]
            streams.append(encode_items(refs, layout.index_of, layout.info_of))
        return streams
    tasks = list(enumerate(dictionary.function_refs))
    chunk_size = max(1, len(tasks) // (workers * 4))
    chunks = [tasks[start:start + chunk_size]
              for start in range(0, len(tasks), chunk_size)]
    results = fanout(_encode_items_chunk, chunks, workers,
                     shared=(layouts, plan.segment_of_function), chunksize=1)
    streams = []
    for chunk_result in results:
        streams.extend(chunk_result)
    return streams


def compress(program: Program,
             codec: str = "lz",
             max_len: int = MAX_SEQUENCE_LENGTH,
             common_budget: int = DEFAULT_COMMON_BUDGET,
             branch_targets: str = "relative",
             match_mode: str = "greedy",
             jobs: int = 1,
             profile: Optional[PhaseProfile] = None,
             layout_plan: Optional[hints.LayoutPlanLike] = None) -> CompressedProgram:
    """Compress ``program`` into an SSD container.

    Parameters
    ----------
    codec:
        Base-entry codec, ``"lz"`` (paper default) or ``"delta"``.
    max_len:
        Maximum sequence-entry length (paper: 4).
    common_budget:
        Index slots granted to the common dictionary when partitioning.
    branch_targets:
        ``"relative"`` (SSD proper) or ``"absolute"`` — the ablation where
        branch targets live in dictionary entries, making entries with
        different targets distinct.  Implemented by disabling the
        size-not-value matching rule's benefit: each distinct target value
        becomes a distinct base entry.
    match_mode:
        ``"greedy"`` (the paper's Algorithm 1) or ``"optimal"`` (an
        item-byte-minimizing dynamic program; see ``build_dictionary``).
    jobs:
        Worker processes for the parallelizable stages (n-gram counting,
        segmentation, item encoding).  ``1`` (default) is fully serial,
        ``0`` means one worker per core.  The container bytes are
        **byte-identical** whatever ``jobs`` is — parallelism only changes
        wall-clock time, never output.
    profile:
        Optional :class:`repro.perf.PhaseProfile`; receives wall-clock
        timings for every pipeline phase (``dictionary.*``, ``partition``,
        ``layout``, ``items``, ``serialize``).
    layout_plan:
        Optional :class:`repro.profile.LayoutPlan` (anything with
        ``order`` and ``hints()``).  Item streams are *placed* in plan
        order and the container carries the plan's profile-hint section;
        decode output is byte-identical to the unplanned container
        (``parse`` restores logical order — see docs/LAYOUT.md).
    """
    if branch_targets not in ("relative", "absolute"):
        raise ValueError(f"branch_targets must be relative/absolute, got {branch_targets!r}")
    prof = ensure(profile)
    with TRACER.span("compress", program=program.name):
        dictionary = build_dictionary(program, max_len=max_len,
                                      absolute_targets=branch_targets == "absolute",
                                      match_mode=match_mode, jobs=jobs,
                                      profile=profile)
        with prof.phase("partition"):
            plan = plan_partition(dictionary, common_budget=common_budget)
        with prof.phase("layout"):
            layouts, common_base_blob, common_tree_blob, segment_sections = build_layouts(
                dictionary, plan, codec=codec)

        with prof.phase("items"):
            item_streams = _encode_item_streams(dictionary, plan, layouts, jobs)

        with prof.phase("serialize"):
            sections = container.ContainerSections(
                program_name=program.name,
                entry=program.entry,
                function_names=[fn.name for fn in program.functions],
                common_base_blob=common_base_blob,
                common_tree_blob=common_tree_blob,
                segments=segment_sections,
                item_streams=item_streams,
            )
            if layout_plan is not None:
                sections.function_order = list(layout_plan.order)
                sections.profile_hints_blob = hints.encode_hints(
                    layout_plan.hints())
            data = container.serialize(sections)
    _COMPRESS_RUNS.inc()
    _COMPRESS_OUTPUT.inc(len(data))
    _COMPRESS_INPUT.inc(program.instruction_count)
    return CompressedProgram(
        data=data,
        dictionary_stats=dictionary_statistics(dictionary),
        partition_stats=partition_statistics(plan),
        section_sizes=sections.section_sizes(),
    )
