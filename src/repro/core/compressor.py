"""The SSD compressor: program -> container bytes.

Orchestrates the pipeline::

    build_dictionary (Algorithm 1)
      -> plan_partition (section 2.1, for > 2^16 entries)
      -> order + encode base entries per dictionary (section 2.2.1)
      -> encode sequence forests (section 2.2.2)
      -> encode SSD items per function (Algorithm 2)
      -> serialize the container

The compressor also exposes the ``branch_targets="absolute"`` variant the
paper measured against (targets stored inside dictionary entries instead
of pc-relative in the item stream); SSD proper uses ``"relative"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..isa import Program
from . import container
from .base_entries import order_base_entries
from .dictionary import (
    MAX_SEQUENCE_LENGTH,
    SSDDictionary,
    build_dictionary,
    dictionary_statistics,
)
from .items import encode_items
from .layout import build_layouts
from .partition import DEFAULT_COMMON_BUDGET, plan_partition, partition_statistics


@dataclass
class CompressedProgram:
    """Compressor output: the container bytes plus measurement hooks."""

    data: bytes
    dictionary_stats: Dict[str, float]
    partition_stats: Dict[str, float]
    section_sizes: Dict[str, int]

    @property
    def size(self) -> int:
        return len(self.data)


def compress(program: Program,
             codec: str = "lz",
             max_len: int = MAX_SEQUENCE_LENGTH,
             common_budget: int = DEFAULT_COMMON_BUDGET,
             branch_targets: str = "relative",
             match_mode: str = "greedy") -> CompressedProgram:
    """Compress ``program`` into an SSD container.

    Parameters
    ----------
    codec:
        Base-entry codec, ``"lz"`` (paper default) or ``"delta"``.
    max_len:
        Maximum sequence-entry length (paper: 4).
    common_budget:
        Index slots granted to the common dictionary when partitioning.
    branch_targets:
        ``"relative"`` (SSD proper) or ``"absolute"`` — the ablation where
        branch targets live in dictionary entries, making entries with
        different targets distinct.  Implemented by disabling the
        size-not-value matching rule's benefit: each distinct target value
        becomes a distinct base entry.
    match_mode:
        ``"greedy"`` (the paper's Algorithm 1) or ``"optimal"`` (an
        item-byte-minimizing dynamic program; see ``build_dictionary``).
    """
    if branch_targets not in ("relative", "absolute"):
        raise ValueError(f"branch_targets must be relative/absolute, got {branch_targets!r}")
    dictionary = build_dictionary(program, max_len=max_len,
                                  absolute_targets=branch_targets == "absolute",
                                  match_mode=match_mode)
    plan = plan_partition(dictionary, common_budget=common_budget)
    layouts, common_base_blob, common_tree_blob, segment_sections = build_layouts(
        dictionary, plan, codec=codec)

    item_streams: List[bytes] = []
    for findex, refs in enumerate(dictionary.function_refs):
        layout = layouts[plan.segment_of_function[findex]]
        item_streams.append(encode_items(refs, layout.index_of, layout.info_of))

    sections = container.ContainerSections(
        program_name=program.name,
        entry=program.entry,
        function_names=[fn.name for fn in program.functions],
        common_base_blob=common_base_blob,
        common_tree_blob=common_tree_blob,
        segments=segment_sections,
        item_streams=item_streams,
    )
    data = container.serialize(sections)
    return CompressedProgram(
        data=data,
        dictionary_stats=dictionary_statistics(dictionary),
        partition_stats=partition_statistics(plan),
        section_sizes=sections.section_sizes(),
    )
