"""Algorithm 2: SSD item generation (and its inverse).

An SSD item is a 16-bit dictionary index, optionally followed by a branch
target.  Intra-function branch targets are *pc-relative in item units*
(displacement from the following item), sized by the dictionary entry's
target-size class — the design the paper credits with a 6.2% size win over
absolute targets stored in the dictionary.  Call items carry the callee's
function index the same way (fixed up via relocation at copy time, like
forward branches).

Because dictionary entries never span basic blocks, every branch target
(a block leader) is also the first instruction of some item, so targets
are always expressible at item granularity; a displacement in items never
exceeds the same displacement in instructions, so the instruction-derived
size class always fits.  Encoding performs the paper's two-pass relocation
(forwarding table for backward branches, relocation items for forward
ones) in one materialized pass over the per-function reference stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import kernels as _kernels
from ..errors import CorruptContainer
from ..kernels import KIND_BRANCH, KIND_CALL, KIND_PLAIN, ItemPlanes
from ..kernels import items as _kernel_items
from ..lz.varint import ByteReader, ByteWriter
from .dictionary import EntryRef


@dataclass(frozen=True)
class EntryInfo:
    """What the item codec needs to know about one dictionary index."""

    length: int              # instructions covered
    is_branch: bool = False  # ends with an intra-function branch/jump
    is_call: bool = False    # ends with a call
    target_size: int = 0     # encoded target width (1/2/4) when branch/call


class ItemStreamError(CorruptContainer):
    """Raised for malformed item streams or unresolvable targets."""


#: below this stream size the vectorized item kernel's fixed setup cost
#: (a dozen array ops) exceeds the scalar loop (measured break-even ~230B)
_ITEM_KERNEL_MIN_BYTES = 224


def _write_signed(writer: ByteWriter, value: int, size: int) -> None:
    lo = -(1 << (8 * size - 1))
    hi = (1 << (8 * size - 1)) - 1
    if not lo <= value <= hi:
        raise ItemStreamError(f"displacement {value} does not fit in {size} bytes")
    unsigned = value & ((1 << (8 * size)) - 1)
    writer.write_bytes(unsigned.to_bytes(size, "little"))


def _read_signed(reader: ByteReader, size: int) -> int:
    value = int.from_bytes(reader.read_bytes(size), "little")
    sign = 1 << (8 * size - 1)
    return value - (1 << (8 * size)) if value & sign else value


def _write_unsigned(writer: ByteWriter, value: int, size: int) -> None:
    if not 0 <= value < (1 << (8 * size)):
        raise ItemStreamError(f"call target {value} does not fit in {size} bytes")
    writer.write_bytes(value.to_bytes(size, "little"))


def encode_items(refs: Sequence[EntryRef],
                 index_of: Dict[Tuple[int, ...], int],
                 info_of: Dict[int, EntryInfo]) -> bytes:
    """Encode one function's reference stream as SSD items.

    ``index_of`` maps a ref's ``base_ids`` tuple to its 16-bit dictionary
    index; ``info_of`` maps dictionary indices to :class:`EntryInfo`.
    """
    # Instruction index -> item index (the forwarding table, materialized).
    item_of_insn: Dict[int, int] = {}
    position = 0
    for item_index, ref in enumerate(refs):
        item_of_insn[position] = item_index
        position += ref.length

    writer = ByteWriter()
    for item_index, ref in enumerate(refs):
        dict_index = index_of.get(tuple(ref.base_ids))
        if dict_index is None:
            raise ItemStreamError(f"no dictionary index for entry {ref.base_ids}")
        entry = info_of[dict_index]
        writer.write_u16(dict_index)
        if entry.is_branch:
            if ref.branch_target is None:
                raise ItemStreamError("branch entry without a branch target")
            target_item = item_of_insn.get(ref.branch_target)
            if target_item is None:
                raise ItemStreamError(
                    f"branch target {ref.branch_target} is not item-aligned")
            _write_signed(writer, target_item - (item_index + 1), entry.target_size)
        elif entry.is_call:
            if ref.call_target is None:
                raise ItemStreamError("call entry without a call target")
            _write_unsigned(writer, ref.call_target, entry.target_size)
    return writer.getvalue()


@dataclass(frozen=True)
class DecodedItem:
    """One parsed SSD item."""

    dict_index: int
    length: int
    #: displacement in items (branches) or callee function index (calls)
    branch_displacement: Optional[int] = None
    call_target: Optional[int] = None


def _decode_planes_scalar(blob: bytes,
                          info_of: Dict[int, EntryInfo]) -> ItemPlanes:
    """Reference plane decoder — owns the error semantics.

    Walks the stream exactly like the historical per-item decoder (via
    :class:`ByteReader`), so truncation and unknown-index errors keep
    their documented types, messages, and offsets on every backend.
    """
    reader = ByteReader(blob)
    indices: List[int] = []
    kinds: List[int] = []
    values: List[int] = []
    lengths: List[int] = []
    starts: List[int] = []
    position = 0
    get = info_of.get
    while not reader.at_end():
        dict_index = reader.read_u16()
        entry = get(dict_index)
        if entry is None:
            raise ItemStreamError(f"item references unknown index {dict_index}")
        if entry.is_branch:
            kind = KIND_BRANCH
            value = _read_signed(reader, entry.target_size)
        elif entry.is_call:
            kind = KIND_CALL
            value = int.from_bytes(reader.read_bytes(entry.target_size),
                                   "little")
        else:
            kind = KIND_PLAIN
            value = 0
        indices.append(dict_index)
        kinds.append(kind)
        values.append(value)
        lengths.append(entry.length)
        starts.append(position)
        position += entry.length
    return ItemPlanes(indices=indices, kinds=kinds, values=values,
                      lengths=lengths, starts=starts)


def decode_item_planes(blob: bytes, info_of: Dict[int, EntryInfo],
                       cache: Optional[object] = None) -> ItemPlanes:
    """Decode one item stream into split planes (Stream VByte style).

    The numpy backend decodes the whole stream at once and bails to the
    scalar reference decoder on any anomaly, so corrupt streams raise
    identical errors regardless of backend.  ``cache`` is any object with
    a ``kernel_table`` slot (a :class:`SegmentLayout`) used to memoize the
    per-layout :class:`~repro.kernels.items.ItemDecodeTable`.
    """
    if _kernels.backend() == "numpy" and len(blob) >= _ITEM_KERNEL_MIN_BYTES:
        table = getattr(cache, "kernel_table", None)
        if table is None:
            table = _kernel_items.ItemDecodeTable(info_of)
            if cache is not None:
                cache.kernel_table = table
        planes = _kernel_items.try_decode_planes(blob, table)
        if planes is not None:
            _kernels.record_batch("items", planes.count)
            return planes
        _kernels.record_fallback("items")
        planes = _decode_planes_scalar(blob, info_of)
        _kernels.record_batch("items", planes.count, backend_name="python")
        return planes
    planes = _decode_planes_scalar(blob, info_of)
    _kernels.record_batch("items", planes.count)
    return planes


def planes_to_items(planes: ItemPlanes) -> List[DecodedItem]:
    """Materialize :class:`DecodedItem` values from split planes."""
    return [
        DecodedItem(
            dict_index=index, length=length,
            branch_displacement=value if kind == KIND_BRANCH else None,
            call_target=value if kind == KIND_CALL else None)
        for index, kind, value, length in zip(
            planes.indices, planes.kinds, planes.values, planes.lengths)
    ]


def decode_items(blob: bytes, info_of: Dict[int, EntryInfo]) -> List[DecodedItem]:
    """Parse an item stream into :class:`DecodedItem` values."""
    return planes_to_items(decode_item_planes(blob, info_of))


def resolve_branch_targets(items: Sequence[DecodedItem]) -> List[Optional[int]]:
    """Instruction-index branch target of each item (None for non-branches).

    This is the decode-side forwarding pass: item displacements convert
    back to instruction indices via each item's starting position.
    """
    starts: List[int] = []
    position = 0
    for item in items:
        starts.append(position)
        position += item.length
    targets: List[Optional[int]] = []
    for item_index, item in enumerate(items):
        if item.branch_displacement is None:
            targets.append(None)
            continue
        target_item = item_index + 1 + item.branch_displacement
        if not 0 <= target_item < len(items):
            raise ItemStreamError(
                f"item {item_index}: branch displacement {item.branch_displacement} "
                f"leaves the function ({len(items)} items)")
        targets.append(starts[target_item])
    return targets


def resolve_plane_targets(planes: ItemPlanes) -> List[Optional[int]]:
    """Plane-based forwarding pass: branch targets in instruction units.

    Equivalent to :func:`resolve_branch_targets` over the materialized
    items — same error type and message when a displacement leaves the
    function — but runs vectorized on the numpy backend.
    """
    if _kernels.backend() == "numpy":
        resolved = _kernel_items.try_resolve_targets(planes)
        if resolved is not None:
            return resolved
        _kernels.record_fallback("resolve")
    count = planes.count
    starts = planes.starts
    targets: List[Optional[int]] = []
    for item_index, (kind, value) in enumerate(zip(planes.kinds,
                                                   planes.values)):
        if kind != KIND_BRANCH:
            targets.append(None)
            continue
        target_item = item_index + 1 + value
        if not 0 <= target_item < count:
            raise ItemStreamError(
                f"item {item_index}: branch displacement {value} "
                f"leaves the function ({count} items)")
        targets.append(starts[target_item])
    return targets
