"""Base-entry compression (paper section 2.2.1).

SSD sorts base entries by opcode into *instruction groups*, sorts each
group by its largest instruction field, and emits each field as a separate
stream — the split-stream step.  The paper tried two final codecs:

* ``delta`` — delta-code the sorted field (with escapes), others literal;
* ``lz``    — emit everything literally and LZ-compress the concatenated
  groups.  This was "simpler and yielded better compression" and is the
  default, as in the paper.

Crucially, the *serialization order defines the base-entry index space*:
the decompressor rebuilds entries in exactly this canonical order, so both
sides agree on every 16-bit index without transmitting them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CorruptContainer
from ..isa import Instruction, info
from ..isa.opcodes import OP_BY_CODE
from ..lz import delta as delta_codec
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter
from .dictionary import BaseEntry

#: codecs accepted by encode/decode: "lz" and "delta" are the paper's two
#: variants; "delta+lz" is this reproduction's extension combining them
#: (delta-code the sorted field, then LZ the concatenated groups).
CODECS = ("lz", "delta", "delta+lz")


def _sort_key(entry: BaseEntry) -> Tuple:
    """Within-group order: largest field first (imm, then the rest)."""
    insn = entry.instruction
    return (
        insn.imm if insn.imm is not None else 0,
        entry.target_size or 0,
        insn.rd if insn.rd is not None else -1,
        insn.rs1 if insn.rs1 is not None else -1,
        insn.rs2 if insn.rs2 is not None else -1,
        entry.stored_target if entry.stored_target is not None else 0,
    )


def order_base_entries(entries: List[BaseEntry]) -> List[BaseEntry]:
    """Canonical (group, sorted-field) order — the index-space order."""
    return sorted(entries, key=lambda e: (info(e.instruction.op).code, _sort_key(e)))


def _encode_groups(ordered: List[BaseEntry], use_delta: bool) -> bytes:
    writer = ByteWriter()
    groups: List[List[BaseEntry]] = []
    for entry in ordered:
        if groups and groups[-1][0].instruction.op is entry.instruction.op:
            groups[-1].append(entry)
        else:
            groups.append([entry])
    writer.write_uvarint(len(groups))
    for group in groups:
        meta = info(group[0].instruction.op)
        writer.write_u8(meta.code)
        writer.write_uvarint(len(group))
        if meta.uses_imm:
            imms = [e.instruction.imm for e in group]
            if use_delta:
                blob = delta_codec.encode_deltas(imms)
                writer.write_uvarint(len(blob))
                writer.write_bytes(blob)
            else:
                for imm in imms:
                    writer.write_svarint(imm)
        if meta.uses_target:
            for entry in group:
                writer.write_u8(entry.target_size or 0)
            # Absolute-targets ablation: targets live in the entry.
            has_targets = any(e.stored_target is not None for e in group)
            writer.write_u8(1 if has_targets else 0)
            if has_targets:
                for entry in group:
                    writer.write_svarint(entry.stored_target or 0)
        for field in ("rd", "rs1", "rs2"):
            if getattr(meta, f"uses_{field}"):
                for entry in group:
                    writer.write_u8(getattr(entry.instruction, field))
    return writer.getvalue()


def _decode_groups(data: bytes, use_delta: bool) -> List[BaseEntry]:
    reader = ByteReader(data)
    group_count = reader.read_uvarint()
    if group_count > len(OP_BY_CODE):
        raise CorruptContainer(f"corrupt base-entry blob: {group_count} groups")
    entries: List[BaseEntry] = []
    for _ in range(group_count):
        code = reader.read_u8()
        meta = OP_BY_CODE.get(code)
        if meta is None:
            raise CorruptContainer(f"corrupt base-entry blob: unknown opcode {code}")
        count = reader.read_uvarint()
        if count > len(data):
            raise CorruptContainer(f"corrupt base-entry blob: group of {count} entries")
        imms: List[Optional[int]] = [None] * count
        target_sizes: List[Optional[int]] = [None] * count
        regs = {"rd": [None] * count, "rs1": [None] * count, "rs2": [None] * count}
        if meta.uses_imm:
            if use_delta:
                blob = reader.read_bytes(reader.read_uvarint())
                imms = list(delta_codec.decode_deltas(blob))
            else:
                imms = reader.read_svarint_run(count)
        stored_targets: List[Optional[int]] = [None] * count
        if meta.uses_target:
            target_sizes = [size or None for size in reader.read_u8_run(count)]
            if reader.read_u8():
                stored_targets = reader.read_svarint_run(count)
        for field in ("rd", "rs1", "rs2"):
            if getattr(meta, f"uses_{field}"):
                regs[field] = reader.read_u8_run(count)
        for position in range(count):
            insn = Instruction(
                op=meta.op,
                rd=regs["rd"][position],
                rs1=regs["rs1"][position],
                rs2=regs["rs2"][position],
                imm=imms[position],
                target=0 if meta.uses_target else None,
            )
            size = target_sizes[position]
            key = insn.match_key(size) if meta.uses_target else insn.match_key()
            stored = stored_targets[position]
            if stored is not None:
                key = key + (stored,)
            entries.append(BaseEntry(key=key, instruction=insn, target_size=size,
                                     stored_target=stored))
    return entries


def encode_base_entries(ordered: List[BaseEntry], codec: str = "lz") -> bytes:
    """Compress canonically ordered base entries.

    ``ordered`` must come from :func:`order_base_entries`; the blob layout
    is ``u8 codec | payload``.
    """
    if codec not in CODECS:
        raise ValueError(f"unknown codec {codec!r}; expected one of {CODECS}")
    writer = ByteWriter()
    writer.write_u8(CODECS.index(codec))
    if codec == "lz":
        writer.write_bytes(lz77.compress(_encode_groups(ordered, use_delta=False)))
    elif codec == "delta":
        writer.write_bytes(_encode_groups(ordered, use_delta=True))
    else:  # delta+lz
        writer.write_bytes(lz77.compress(_encode_groups(ordered, use_delta=True)))
    return writer.getvalue()


def decode_base_entries(blob: bytes) -> List[BaseEntry]:
    """Inverse of :func:`encode_base_entries`; order defines indices."""
    if not blob:
        raise CorruptContainer("empty base-entry blob")
    codec_tag = blob[0]
    if codec_tag >= len(CODECS):
        raise CorruptContainer(f"unknown codec tag {codec_tag}")
    payload = blob[1:]
    codec = CODECS[codec_tag]
    if codec == "lz":
        return _decode_groups(lz77.decompress(payload), use_delta=False)
    if codec == "delta":
        return _decode_groups(payload, use_delta=True)
    return _decode_groups(lz77.decompress(payload), use_delta=True)
