"""Algorithm 1: SSD dictionary construction.

Given a program, build a dictionary with two kinds of entries and rewrite
the program as a stream of references to them:

* **base entries** — one per unique instruction in the program (step 1 of
  Algorithm 1), where "unique" is judged by the paper's matching rule:
  branch/call targets compare by encoded *size*, everything else exactly;
* **sequence entries** — one per 2–4 instruction sequence the greedy
  matcher selects; a candidate must occur at least twice in the program
  and lie within a single basic block (step 3.a), and may contain at most
  one control transfer, necessarily last (implied by the basic-block rule
  because branches and calls terminate blocks).

The paper implements step 3.a with a digram hash table holding occurrence
*positions* and rescans up to four instructions at each position.  We get
the same answer in guaranteed O(n) by counting 2-, 3- and 4-gram
occurrences up front: "sequence s occurs at least twice in P" is exactly
``ngram_count[s] >= 2`` (the current occurrence contributes one).

The matcher is greedy exactly as in the paper: after matching a prefix of
length L it skips to the next unmatched instruction, forgoing potentially
longer matches inside the prefix.

Implementation note: match keys are interned to dense integer *base ids*
in the first pass; every later stage (n-gram counting, sequence entries,
item generation, tree serialization) works on small integer tuples.  At
word97 scale (1.4M instructions) this keeps the n-gram tables hundreds of
megabytes smaller than tuples-of-keys would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import Instruction, Program, basic_blocks

#: Maximum sequence-entry length (the paper's L <= 4).
MAX_SEQUENCE_LENGTH = 4


@dataclass(frozen=True)
class BaseEntry:
    """A dictionary entry for a single unique instruction.

    ``instruction`` is a canonical representative: for branches/calls the
    target value is meaningless (targets travel in the item stream) and is
    normalized to 0; ``target_size`` records the encoded target width that
    is part of the match key.

    In the paper's *absolute-targets* ablation (section 2.1: "a compressor
    configured to represent branch targets as absolute values within
    dictionary entries") the target instead lives here: ``stored_target``
    holds the absolute target (instruction index for branches, callee
    index for calls), entries with different targets stay distinct, and
    items carry no target bytes.
    """

    key: Tuple
    instruction: Instruction
    target_size: Optional[int] = None
    stored_target: Optional[int] = None

    @property
    def target_in_entry(self) -> bool:
        return self.stored_target is not None

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_call(self) -> bool:
        return self.instruction.is_call

    @property
    def has_target(self) -> bool:
        return self.is_branch or self.is_call


@dataclass(frozen=True)
class EntryRef:
    """One element of the rewritten program: a dictionary reference.

    ``base_ids`` holds one id for a base-entry reference, two to four for
    a sequence-entry reference.  If the referenced entry ends in an
    intra-function branch, ``branch_target`` is the target *instruction
    index* within the function; if it ends in a call, ``call_target`` is
    the callee function index.
    """

    base_ids: Tuple[int, ...]
    branch_target: Optional[int] = None
    call_target: Optional[int] = None

    @property
    def is_sequence(self) -> bool:
        return len(self.base_ids) > 1

    @property
    def length(self) -> int:
        return len(self.base_ids)


@dataclass
class SSDDictionary:
    """The constructed dictionary plus the rewritten program.

    ``base_entries[i]`` is the base entry with (provisional) id ``i``;
    ``sequence_entries`` maps id-tuples to their use counts.  Provisional
    ids are insertion-order; the container layer re-maps them to the
    canonical order defined by base-entry compression.
    """

    base_entries: List[BaseEntry] = field(default_factory=list)
    base_id_of_key: Dict[Tuple, int] = field(default_factory=dict)
    sequence_entries: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    base_use_counts: Dict[int, int] = field(default_factory=dict)
    #: per function: the stream E of dictionary references
    function_refs: List[List[EntryRef]] = field(default_factory=list)

    @property
    def entry_count(self) -> int:
        return len(self.base_entries) + len(self.sequence_entries)

    def coverage(self) -> Tuple[int, int]:
        """(instructions covered by sequence refs, total instructions)."""
        covered = 0
        total = 0
        for refs in self.function_refs:
            for ref in refs:
                total += ref.length
                if ref.is_sequence:
                    covered += ref.length
        return covered, total


def _normalized_instruction(insn: Instruction) -> Instruction:
    """Canonical representative: branch/call targets zeroed."""
    if insn.is_branch or insn.is_call:
        return insn.replace_target(0)
    return insn


def build_dictionary(program: Program,
                     max_len: int = MAX_SEQUENCE_LENGTH,
                     absolute_targets: bool = False,
                     match_mode: str = "greedy") -> SSDDictionary:
    """Run Algorithm 1 over ``program``.

    ``max_len`` parameterizes the paper's fixed 4 for the sequence-length
    ablation experiment.  ``absolute_targets`` switches to the ablation
    variant where targets live inside dictionary entries (branches with
    different targets no longer share an entry).

    ``match_mode`` selects the rewrite strategy:

    * ``"greedy"`` — the paper's Algorithm 1: take the longest match at
      the current position and skip past it ("by skipping over
      instructions once it has found a match, Algorithm 1 ignores the
      possibility of finding a longer match beginning at one of the
      other instructions in the matched prefix").
    * ``"optimal"`` — a dynamic program that picks, per function, the
      segmentation minimizing total item-stream bytes (2 per item plus
      target bytes).  Dictionary-side cost is not modelled, so this is a
      lower bound on what non-greedy matching could buy; the ablation
      experiment measures the actual end-to-end difference.
    """
    if max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")
    if match_mode not in ("greedy", "optimal"):
        raise ValueError(f"match_mode must be greedy/optimal, got {match_mode!r}")
    result = SSDDictionary()

    # Pass 0 (step 1): base entries + per-function id lists + block limits.
    id_lists: List[List[int]] = []
    block_ends: List[List[int]] = []
    for fn in program.functions:
        keys = fn.match_keys()
        sizes = fn.target_sizes()
        ids: List[int] = []
        for index, (insn, key, size) in enumerate(zip(fn.insns, keys, sizes)):
            stored_target = None
            if absolute_targets and (insn.is_branch or insn.is_call):
                stored_target = insn.target
                key = key + (stored_target,)
            base_id = result.base_id_of_key.get(key)
            if base_id is None:
                base_id = len(result.base_entries)
                result.base_id_of_key[key] = base_id
                result.base_entries.append(BaseEntry(
                    key=key,
                    instruction=_normalized_instruction(insn),
                    target_size=size,
                    stored_target=stored_target,
                ))
            ids.append(base_id)
        id_lists.append(ids)
        ends = [0] * len(fn.insns)
        for block in basic_blocks(fn):
            for index in range(block.start, block.end):
                ends[index] = block.end
        block_ends.append(ends)

    # Pass 1: n-gram occurrence counts (the "occurs at least twice" oracle).
    ngram_counts: Dict[Tuple[int, ...], int] = {}
    if max_len >= 2:
        get = ngram_counts.get
        for ids in id_lists:
            n = len(ids)
            for length in range(2, max_len + 1):
                for start in range(n - length + 1):
                    window = tuple(ids[start:start + length])
                    ngram_counts[window] = get(window, 0) + 1

    # Pass 2 (steps 2-3): rewrite each function as dictionary references.
    for fn, ids, ends in zip(program.functions, id_lists, block_ends):
        if match_mode == "greedy":
            lengths = _greedy_segmentation(ids, ends, ngram_counts, max_len)
        else:
            lengths = _optimal_segmentation(ids, ends, ngram_counts, max_len,
                                            result.base_entries)
        refs: List[EntryRef] = []
        index = 0
        for match_len in lengths:
            last = fn.insns[index + match_len - 1]
            branch_target = last.target if last.is_branch else None
            call_target = last.target if last.is_call else None
            window = tuple(ids[index:index + match_len])
            if match_len >= 2:
                result.sequence_entries[window] = (
                    result.sequence_entries.get(window, 0) + 1)
            else:
                result.base_use_counts[window[0]] = (
                    result.base_use_counts.get(window[0], 0) + 1)
            refs.append(EntryRef(base_ids=window,
                                 branch_target=branch_target,
                                 call_target=call_target))
            index += match_len
        result.function_refs.append(refs)
    return result


def _greedy_segmentation(ids: List[int], ends: List[int],
                         ngram_counts: Dict[Tuple[int, ...], int],
                         max_len: int) -> List[int]:
    """The paper's greedy longest-match walk; returns segment lengths."""
    lengths: List[int] = []
    n = len(ids)
    index = 0
    while index < n:
        limit = min(max_len, ends[index] - index)
        match_len = 1
        for length in range(limit, 1, -1):
            window = tuple(ids[index:index + length])
            if ngram_counts.get(window, 0) >= 2:
                match_len = length
                break
        lengths.append(match_len)
        index += match_len
    return lengths


def _optimal_segmentation(ids: List[int], ends: List[int],
                          ngram_counts: Dict[Tuple[int, ...], int],
                          max_len: int,
                          base_entries: List[BaseEntry]) -> List[int]:
    """Item-byte-minimizing segmentation (dynamic program).

    ``cost[i]`` = minimal item bytes to encode instructions ``i..n``;
    each candidate segment costs 2 (the 16-bit index) plus the target
    bytes its final instruction forces into the item stream.
    """
    n = len(ids)
    cost = [0.0] * (n + 1)
    choice = [1] * (n + 1)

    def item_bytes(last_id: int) -> float:
        entry = base_entries[last_id]
        if entry.has_target and not entry.target_in_entry:
            return 2.0 + (entry.target_size or 0)
        return 2.0

    for index in range(n - 1, -1, -1):
        limit = min(max_len, ends[index] - index)
        best = item_bytes(ids[index]) + cost[index + 1]
        best_len = 1
        for length in range(2, limit + 1):
            window = tuple(ids[index:index + length])
            if ngram_counts.get(window, 0) < 2:
                continue
            candidate = item_bytes(ids[index + length - 1]) + cost[index + length]
            # Strict improvement or tie -> prefer the longer match (fewer
            # items stress the dictionary less).
            if candidate <= best:
                best = candidate
                best_len = length
        cost[index] = best
        choice[index] = best_len

    lengths: List[int] = []
    index = 0
    while index < n:
        lengths.append(choice[index])
        index += choice[index]
    return lengths


def dictionary_statistics(dictionary: SSDDictionary) -> Dict[str, float]:
    """Summary numbers used by reports and tests."""
    covered, total = dictionary.coverage()
    items = sum(len(refs) for refs in dictionary.function_refs)
    lengths = [len(ids) for ids in dictionary.sequence_entries]
    return {
        "base_entries": len(dictionary.base_entries),
        "sequence_entries": len(dictionary.sequence_entries),
        "total_entries": dictionary.entry_count,
        "items": items,
        "instructions": total,
        "sequence_coverage": covered / total if total else 0.0,
        "mean_sequence_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
        "compression_leverage": total / items if items else 0.0,
    }
